"""Dense reference Fock construction from the full ERI tensor.

This is the ground truth for every parallel Fock algorithm in
:mod:`repro.core`: small enough systems afford the full
``(nbf, nbf, nbf, nbf)`` tensor, and the Coulomb/exchange contractions
become two einsums.
"""

from __future__ import annotations

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.eri import ShellPair, eri_shell_quartet, make_shell_pairs


def eri_tensor(basis: BasisSet) -> np.ndarray:
    """Full two-electron integral tensor ``(mu nu | lam sig)``.

    Exploits the 8-fold permutational symmetry at shell level: unique
    quartets ``(i >= j, k >= l, ij >= kl)`` are computed once and
    scattered to all equivalent index positions.

    Warning: ``O(nbf^4)`` memory — intended for the small validation
    systems only.
    """
    shells = basis.shells
    n = basis.nbf
    pairs = make_shell_pairs(shells)
    out = np.zeros((n, n, n, n))

    nsh = len(shells)
    for i in range(nsh):
        for j in range(i + 1):
            bra = pairs[(i, j)]
            for k in range(i + 1):
                lmax = k if k < i else j
                for l in range(lmax + 1):
                    ket = pairs[(k, l)]
                    block = eri_shell_quartet(bra, ket)
                    _scatter_quartet(out, shells, i, j, k, l, block)
    return out


def _scatter_quartet(out, shells, i, j, k, l, block) -> None:
    """Write one unique quartet block to all 8 symmetry positions."""
    oi, ni = shells[i].bf_offset, shells[i].nfunc
    oj, nj = shells[j].bf_offset, shells[j].nfunc
    ok, nk = shells[k].bf_offset, shells[k].nfunc
    ol, nl = shells[l].bf_offset, shells[l].nfunc
    si = slice(oi, oi + ni)
    sj = slice(oj, oj + nj)
    sk = slice(ok, ok + nk)
    sl = slice(ol, ol + nl)

    out[si, sj, sk, sl] = block
    out[sj, si, sk, sl] = block.transpose(1, 0, 2, 3)
    out[si, sj, sl, sk] = block.transpose(0, 1, 3, 2)
    out[sj, si, sl, sk] = block.transpose(1, 0, 3, 2)
    out[sk, sl, si, sj] = block.transpose(2, 3, 0, 1)
    out[sl, sk, si, sj] = block.transpose(3, 2, 0, 1)
    out[sk, sl, sj, si] = block.transpose(2, 3, 1, 0)
    out[sl, sk, sj, si] = block.transpose(3, 2, 1, 0)


def fock_from_eri(hcore: np.ndarray, eri: np.ndarray, density: np.ndarray) -> np.ndarray:
    """Reference closed-shell Fock matrix.

    Parameters
    ----------
    hcore:
        Core Hamiltonian ``T + V``.
    eri:
        Full ERI tensor from :func:`eri_tensor`.
    density:
        Closed-shell density ``D = 2 C_occ C_occ^T`` (factor of two
        included, GAMESS convention).

    Returns
    -------
    numpy.ndarray
        ``F = H + J - K/2`` with ``J = (mn|ls) D_ls`` and
        ``K = (ml|ns) D_ls``.
    """
    J = np.einsum("mnls,ls->mn", eri, density, optimize=True)
    K = np.einsum("mlns,ls->mn", eri, density, optimize=True)
    return hcore + J - 0.5 * K


def two_electron_fock_dense(eri: np.ndarray, density: np.ndarray) -> np.ndarray:
    """Two-electron part only: ``G(D) = J - K/2`` (no core Hamiltonian)."""
    J = np.einsum("mnls,ls->mn", eri, density, optimize=True)
    K = np.einsum("mlns,ls->mn", eri, density, optimize=True)
    return J - 0.5 * K


class DenseFockBuilder:
    """Callable Fock builder backed by a precomputed dense ERI tensor.

    Satisfies the ``fock_builder(density) -> (fock, stats)`` protocol of
    the :class:`~repro.scf.rhf.RHF` driver.
    """

    def __init__(self, basis: BasisSet, hcore: np.ndarray) -> None:
        self.hcore = hcore
        self.eri = eri_tensor(basis)

    def __call__(self, density: np.ndarray):
        return fock_from_eri(self.hcore, self.eri, density), {}
