"""Self-consistent-field substrate: serial reference RHF.

This package provides the ground truth everything else is validated
against: a dense, einsum-based Fock construction and a straightforward
restricted Hartree-Fock driver with DIIS acceleration.  The parallel
algorithms of :mod:`repro.core` plug into the same
:class:`~repro.scf.rhf.RHF` driver through the ``fock_builder`` hook
and must produce identical Fock matrices.
"""

from repro.scf.fock_dense import DenseFockBuilder, eri_tensor, fock_from_eri
from repro.scf.rhf import RHF, SCFResult
from repro.scf.uhf import UHF, UHFResult
from repro.scf.diis import DIIS
from repro.scf.guess import core_guess_density
from repro.scf.convergence import ConvergenceCriteria, density_rms_change
from repro.scf.incremental import IncrementalFockBuilder
from repro.scf.mp2 import MP2Result, mp2_energy
from repro.scf.properties import (
    dipole_moment,
    homo_lumo_gap,
    koopmans_ionization_potential,
    mulliken_populations,
)

__all__ = [
    "RHF",
    "SCFResult",
    "UHF",
    "UHFResult",
    "DIIS",
    "DenseFockBuilder",
    "eri_tensor",
    "fock_from_eri",
    "core_guess_density",
    "ConvergenceCriteria",
    "density_rms_change",
    "IncrementalFockBuilder",
    "mp2_energy",
    "MP2Result",
    "dipole_moment",
    "mulliken_populations",
    "homo_lumo_gap",
    "koopmans_ionization_potential",
]
