"""Incremental (delta-density) direct-SCF Fock construction.

A standard direct-SCF refinement GAMESS also implements: after the
first cycle, build only the *change* of the two-electron part,

.. math:: F_{n} = F_{n-1} + G(D_{n} - D_{n-1}),

which is exact by linearity of ``G``.  Its payoff is density-aware
screening: with the Cauchy-Schwarz bound
``|contribution| <= Q_ij Q_kl max|dD|``, a shrinking density change
raises the effective screening threshold ``tau / max|dD|``, so late SCF
cycles evaluate far fewer shell quartets.  Periodic full rebuilds bound
the accumulated numerical noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.fock_base import ParallelFockBuilderBase


class IncrementalFockBuilder:
    """Wrap a parallel Fock builder with delta-density construction.

    Parameters
    ----------
    inner:
        Any of the three algorithm builders (it must expose ``hcore``
        and ``screening`` as :class:`ParallelFockBuilderBase` does).
    rebuild_every:
        Force a full (non-incremental) rebuild every N cycles.
    density_screening:
        Scale the screening threshold by ``1 / max|dD|`` on incremental
        cycles (the point of the exercise); disable for A/B testing.
    """

    def __init__(
        self,
        inner: ParallelFockBuilderBase,
        *,
        rebuild_every: int = 10,
        density_screening: bool = True,
    ) -> None:
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        self.inner = inner
        self.rebuild_every = rebuild_every
        self.density_screening = density_screening
        self._last_density: np.ndarray | None = None
        self._last_fock: np.ndarray | None = None
        self._cycle = 0
        self.incremental_cycles = 0
        self.full_cycles = 0

    def __getattr__(self, name: str):
        # Geometry/metadata reads (nranks, nthreads, screening, ...)
        # delegate to the wrapped builder.
        return getattr(self.inner, name)

    def reset(self) -> None:
        """Drop state; the next call performs a full build."""
        self._last_density = None
        self._last_fock = None
        self._cycle = 0
        self.incremental_cycles = 0
        self.full_cycles = 0

    def __call__(self, density: np.ndarray):
        self._cycle += 1
        full = (
            self._last_density is None
            or (self._cycle - 1) % self.rebuild_every == 0
        )
        if full:
            fock, stats = self.inner(density)
            self.full_cycles += 1
        else:
            delta = density - self._last_density
            dmax = float(np.max(np.abs(delta)))
            saved_screening = self.inner.screening
            try:
                if self.density_screening and dmax > 0:
                    # Clamp at the base threshold: with max|dD| > 1
                    # (e.g. the first cycles after a restart) the
                    # unclamped ratio would *lower* tau and make the
                    # incremental build screen less than a full one.
                    self.inner.screening = saved_screening.with_tau(
                        max(saved_screening.tau, saved_screening.tau / dmax)
                    )
                f_delta, stats = self.inner(delta)
            finally:
                self.inner.screening = saved_screening
            # The inner builder returns h + G(delta); strip the core term.
            fock = self._last_fock + (f_delta - self.inner.hcore)
            self.incremental_cycles += 1

        self._last_density = density.copy()
        self._last_fock = fock.copy()
        return fock, stats
