"""Restricted Hartree-Fock driver with a pluggable Fock builder.

The driver implements exactly the SCF structure the paper describes
(section 3): core-Hamiltonian guess, Fock construction from the current
density, diagonalization via a symmetric-orthogonalization transform,
density update, and RMS-density convergence — accelerated by DIIS.

Any Fock builder satisfying ``builder(density) -> (fock, stats)`` can be
plugged in: the dense reference (:class:`~repro.scf.fock_dense.DenseFockBuilder`)
or any of the three parallel algorithms from :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Protocol

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.obs.events import get_event_log
from repro.obs.telemetry import get_telemetry
from repro.obs.tracer import get_tracer
from repro.resilience.checkpoint import (
    CheckpointManager,
    SCFCheckpoint,
    load_checkpoint,
)
from repro.resilience.errors import NonFiniteDensityError, SCFConvergenceError
from repro.resilience.recovery import ConvergenceGuard, level_shifted
from repro.scf.convergence import ConvergenceCriteria, density_rms_change
from repro.scf.diis import DIIS
from repro.scf.guess import (
    core_guess_density,
    density_from_coefficients,
    diagonalize_fock,
    orthogonalizer,
)


class FockBuilder(Protocol):
    """Protocol for pluggable Fock constructions."""

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, dict]:
        """Return ``(fock, stats)`` for a given closed-shell density."""
        ...


@dataclass
class SCFIteration:
    """Record of one SCF cycle."""

    iteration: int
    energy: float
    density_rms: float
    energy_change: float
    fock_stats: dict = field(default_factory=dict)


@dataclass
class SCFResult:
    """Outcome of an SCF run.

    Attributes
    ----------
    energy:
        Total RHF energy (electronic + nuclear repulsion), Hartree.
    electronic_energy:
        Electronic part only.
    nuclear_repulsion:
        Nuclear repulsion energy.
    converged:
        Whether the convergence criteria were met.
    iterations:
        Per-cycle records.
    orbital_energies / coefficients / density / fock:
        Final wavefunction quantities.
    """

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    iterations: list[SCFIteration]
    orbital_energies: np.ndarray
    coefficients: np.ndarray
    density: np.ndarray
    fock: np.ndarray

    @property
    def niterations(self) -> int:
        """Number of SCF cycles performed."""
        return len(self.iterations)


class RHF:
    """Restricted (closed-shell) Hartree-Fock.

    Parameters
    ----------
    basis:
        The AO basis (carries the molecule).
    fock_builder:
        Optional two-electron Fock construction; defaults to the dense
        reference builder.  The builder receives the density and must
        return the *full* Fock matrix (core Hamiltonian included) plus a
        stats dict.
    criteria:
        SCF convergence thresholds.
    use_diis:
        Enable Pulay DIIS (on by default).
    damping:
        Optional static density damping factor in (0, 1): the next
        density is ``(1 - damping) * D_new + damping * D_old``.  A
        robustness aid for hard cases; applied only while DIIS has not
        yet accumulated two iterates (or throughout, without DIIS).
    """

    def __init__(
        self,
        basis: BasisSet,
        fock_builder: FockBuilder | None = None,
        *,
        criteria: ConvergenceCriteria | None = None,
        use_diis: bool = True,
        damping: float | None = None,
    ) -> None:
        nelec = basis.molecule.nelectrons
        if nelec % 2 != 0:
            raise ValueError(
                f"RHF needs an even electron count; got {nelec} "
                f"(use charge to close the shell)"
            )
        if damping is not None and not (0.0 < damping < 1.0):
            raise ValueError("damping must be in (0, 1)")
        self.basis = basis
        self.nocc = nelec // 2
        self.criteria = criteria or ConvergenceCriteria()
        self.use_diis = use_diis
        self.damping = damping

        self.S = overlap_matrix(basis)
        self.T = kinetic_matrix(basis)
        self.V = nuclear_matrix(basis)
        self.hcore = self.T + self.V
        self.X = orthogonalizer(self.S)
        self.enuc = basis.molecule.nuclear_repulsion()

        if fock_builder is None:
            from repro.scf.fock_dense import DenseFockBuilder

            fock_builder = DenseFockBuilder(basis, self.hcore)
        self.fock_builder = fock_builder

    def electronic_energy(self, density: np.ndarray, fock: np.ndarray) -> float:
        """Closed-shell electronic energy ``1/2 Tr[D (H + F)]``."""
        return 0.5 * float(np.sum(density * (self.hcore + fock)))

    def _checkpoint_state(
        self,
        cycle: int,
        e_old: float,
        D: np.ndarray,
        diis: DIIS | None,
        history: list[SCFIteration],
    ) -> SCFCheckpoint:
        """Snapshot the loop state at the end of ``cycle``."""
        return SCFCheckpoint(
            kind="rhf",
            cycle=cycle,
            energy=e_old,
            densities=(D,),
            diis_focks=diis.focks if diis is not None else [],
            diis_errors=diis.errors if diis is not None else [],
            history=np.array(
                [
                    [h.iteration, h.energy, h.density_rms, h.energy_change]
                    for h in history
                ],
                dtype=np.float64,
            ),
            nbf=self.basis.nbf,
            nelectrons=self.basis.molecule.nelectrons,
            label=self.basis.molecule.name,
        )

    def run(
        self,
        *,
        initial_density: np.ndarray | None = None,
        restart: SCFCheckpoint | str | Path | None = None,
        checkpoint: CheckpointManager | str | Path | None = None,
        recovery: ConvergenceGuard | bool | None = None,
        strict: bool = True,
    ) -> SCFResult:
        """Iterate the SCF to convergence.

        Parameters
        ----------
        initial_density:
            Optional starting density; defaults to the core guess.
        restart:
            An :class:`~repro.resilience.checkpoint.SCFCheckpoint` (or
            a path to one) to resume from: the run restores the saved
            density, energy, DIIS subspace, and convergence trace, and
            continues at the saved cycle + 1 — bitwise identical to the
            uninterrupted run.
        checkpoint:
            A :class:`~repro.resilience.checkpoint.CheckpointManager`
            (or a path, giving the default write interval) that
            persists the loop state every N completed cycles.
        recovery:
            ``True`` (default guard) or a configured
            :class:`~repro.resilience.recovery.ConvergenceGuard`:
            detects divergence/oscillation and applies the staged
            fallback (damping → level shift → DIIS reset).  A healthy
            run never triggers it, so enabling it is bitwise-neutral.
        strict:
            Raise :class:`~repro.resilience.errors.SCFConvergenceError`
            (carrying the partial result) when the cycle cap is reached
            without convergence, instead of returning a result with
            ``converged=False``.
        """
        if restart is not None and initial_density is not None:
            raise ValueError("pass either restart or initial_density, not both")
        diis = DIIS() if self.use_diis else None
        history: list[SCFIteration] = []
        e_old = 0.0
        start_cycle = 1
        if restart is not None:
            ck = load_checkpoint(restart)
            ck.check_compatible(
                kind="rhf",
                nbf=self.basis.nbf,
                nelectrons=self.basis.molecule.nelectrons,
            )
            D = ck.densities[0].copy()
            e_old = ck.energy
            if diis is not None:
                for f, err in zip(ck.diis_focks, ck.diis_errors):
                    diis.push(f, err)
            history = [
                SCFIteration(c, en, dr, de) for c, en, dr, de in ck.history_rows()
            ]
            start_cycle = ck.cycle + 1
            log = get_event_log()
            if log is not None:
                log.emit("scf.restart", cycle=start_cycle, energy=ck.energy)
        else:
            D = (
                initial_density.copy()
                if initial_density is not None
                else core_guess_density(self.hcore, self.S, self.nocc)
            )
        if isinstance(checkpoint, (str, Path)):
            checkpoint = CheckpointManager(checkpoint)
        guard: ConvergenceGuard | None
        guard = ConvergenceGuard() if recovery is True else (recovery or None)
        recovery_damping: float | None = None
        level_shift: float | None = None

        eps = np.zeros(self.basis.nbf)
        C = np.zeros((self.basis.nbf, self.basis.nbf))
        F = self.hcore.copy()
        converged = False
        d_rms = de = float("inf")

        def make_result() -> SCFResult:
            return SCFResult(
                energy=e_old + self.enuc,
                electronic_energy=e_old,
                nuclear_repulsion=self.enuc,
                converged=converged,
                iterations=history,
                orbital_energies=eps,
                coefficients=C,
                density=D,
                fock=F,
            )

        tracer = get_tracer()
        for it in range(start_cycle, self.criteria.max_iterations + 1):
            with tracer.span("scf/iteration", iteration=it):
                F, stats = self.fock_builder(D)
                if not np.all(np.isfinite(F)):
                    raise NonFiniteDensityError(
                        f"SCF cycle {it}: Fock matrix contains "
                        f"{int(np.sum(~np.isfinite(F)))} non-finite value(s) "
                        f"(first bad cycle: {it}); a reduction contribution "
                        "was likely corrupted"
                    )
                e_elec = self.electronic_energy(D, F)

                F_eff = F
                if diis is not None:
                    with tracer.span("scf/diis", iteration=it):
                        err = DIIS.error_vector(F, D, self.S, self.X)
                        diis.push(F, err)
                        F_eff = diis.extrapolate()
                if level_shift is not None:
                    # Closed-shell density carries occupation 2; the
                    # occupied projector is D / 2.
                    F_eff = level_shifted(F_eff, self.S, 0.5 * D, level_shift)

                with tracer.span("scf/diagonalize", iteration=it):
                    eps, C = diagonalize_fock(F_eff, self.X)
                D_new = density_from_coefficients(C, self.nocc)
                damp = recovery_damping
                if damp is None and self.damping is not None and (
                    diis is None or diis.nvectors < 2
                ):
                    damp = self.damping
                if damp is not None:
                    D_new = (1.0 - damp) * D_new + damp * D

                if not np.all(np.isfinite(D_new)):
                    raise NonFiniteDensityError(
                        f"SCF cycle {it} produced a density with "
                        f"{int(np.sum(~np.isfinite(D_new)))} non-finite "
                        "value(s); aborting instead of iterating on garbage "
                        f"(first bad cycle: {it})"
                    )
                d_rms = density_rms_change(D_new, D)
                de = e_elec - e_old
                history.append(
                    SCFIteration(it, e_elec + self.enuc, d_rms, de, stats)
                )
                log = get_event_log()
                if log is not None:
                    log.emit(
                        "scf.cycle", cycle=it, energy=e_elec + self.enuc,
                        d_rms=d_rms, de=de,
                    )
                channel = get_telemetry()
                if channel is not None:
                    # The monitor's convergence sparkline is drawn from
                    # these per-cycle samples.
                    channel.publish(
                        "scf.cycle", cycle=it, energy=e_elec + self.enuc,
                        delta_e=de, d_rms=d_rms,
                    )

                D = D_new
                e_old = e_elec

                if checkpoint is not None:
                    checkpoint.maybe_save(
                        self._checkpoint_state(it, e_old, D, diis, history)
                    )

                if guard is not None:
                    action = guard.observe(it, e_elec + self.enuc, d_rms)
                    if action is not None:
                        if log is not None:
                            log.emit(
                                "scf.recovery", cycle=it, stage=action.stage
                            )
                        with tracer.span(
                            "scf/recovery", stage=action.stage, iteration=it
                        ):
                            if action.stage == "damping":
                                recovery_damping = guard.damping
                            elif action.stage == "level_shift":
                                level_shift = guard.level_shift
                            elif action.stage == "diis_reset":
                                diis = DIIS() if self.use_diis else None
                    elif guard.exhausted:
                        raise SCFConvergenceError(
                            guard.failure_message(),
                            result=make_result(),
                            stages_applied=guard.stages_applied,
                        )
            if self.criteria.converged(d_rms, de) and it > 1:
                converged = True
                log = get_event_log()
                if log is not None:
                    log.emit(
                        "scf.converged", cycle=it, energy=e_old + self.enuc
                    )
                channel = get_telemetry()
                if channel is not None:
                    channel.publish(
                        "scf.converged", cycle=it,
                        energy=e_old + self.enuc, converged=True,
                    )
                break

        if not converged and strict:
            raise SCFConvergenceError(
                f"SCF did not converge in {self.criteria.max_iterations} "
                f"cycles (last E = {e_old + self.enuc:.10f} Eh, "
                f"dE = {de:.3e}, dRMS = {d_rms:.3e})",
                result=make_result(),
                stages_applied=guard.stages_applied if guard else (),
            )
        return make_result()
