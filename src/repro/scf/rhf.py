"""Restricted Hartree-Fock driver with a pluggable Fock builder.

The driver implements exactly the SCF structure the paper describes
(section 3): core-Hamiltonian guess, Fock construction from the current
density, diagonalization via a symmetric-orthogonalization transform,
density update, and RMS-density convergence — accelerated by DIIS.

Any Fock builder satisfying ``builder(density) -> (fock, stats)`` can be
plugged in: the dense reference (:class:`~repro.scf.fock_dense.DenseFockBuilder`)
or any of the three parallel algorithms from :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.obs.tracer import get_tracer
from repro.scf.convergence import ConvergenceCriteria, density_rms_change
from repro.scf.diis import DIIS
from repro.scf.guess import (
    core_guess_density,
    density_from_coefficients,
    diagonalize_fock,
    orthogonalizer,
)


class FockBuilder(Protocol):
    """Protocol for pluggable Fock constructions."""

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, dict]:
        """Return ``(fock, stats)`` for a given closed-shell density."""
        ...


@dataclass
class SCFIteration:
    """Record of one SCF cycle."""

    iteration: int
    energy: float
    density_rms: float
    energy_change: float
    fock_stats: dict = field(default_factory=dict)


@dataclass
class SCFResult:
    """Outcome of an SCF run.

    Attributes
    ----------
    energy:
        Total RHF energy (electronic + nuclear repulsion), Hartree.
    electronic_energy:
        Electronic part only.
    nuclear_repulsion:
        Nuclear repulsion energy.
    converged:
        Whether the convergence criteria were met.
    iterations:
        Per-cycle records.
    orbital_energies / coefficients / density / fock:
        Final wavefunction quantities.
    """

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    iterations: list[SCFIteration]
    orbital_energies: np.ndarray
    coefficients: np.ndarray
    density: np.ndarray
    fock: np.ndarray

    @property
    def niterations(self) -> int:
        """Number of SCF cycles performed."""
        return len(self.iterations)


class RHF:
    """Restricted (closed-shell) Hartree-Fock.

    Parameters
    ----------
    basis:
        The AO basis (carries the molecule).
    fock_builder:
        Optional two-electron Fock construction; defaults to the dense
        reference builder.  The builder receives the density and must
        return the *full* Fock matrix (core Hamiltonian included) plus a
        stats dict.
    criteria:
        SCF convergence thresholds.
    use_diis:
        Enable Pulay DIIS (on by default).
    damping:
        Optional static density damping factor in (0, 1): the next
        density is ``(1 - damping) * D_new + damping * D_old``.  A
        robustness aid for hard cases; applied only while DIIS has not
        yet accumulated two iterates (or throughout, without DIIS).
    """

    def __init__(
        self,
        basis: BasisSet,
        fock_builder: FockBuilder | None = None,
        *,
        criteria: ConvergenceCriteria | None = None,
        use_diis: bool = True,
        damping: float | None = None,
    ) -> None:
        nelec = basis.molecule.nelectrons
        if nelec % 2 != 0:
            raise ValueError(
                f"RHF needs an even electron count; got {nelec} "
                f"(use charge to close the shell)"
            )
        if damping is not None and not (0.0 < damping < 1.0):
            raise ValueError("damping must be in (0, 1)")
        self.basis = basis
        self.nocc = nelec // 2
        self.criteria = criteria or ConvergenceCriteria()
        self.use_diis = use_diis
        self.damping = damping

        self.S = overlap_matrix(basis)
        self.T = kinetic_matrix(basis)
        self.V = nuclear_matrix(basis)
        self.hcore = self.T + self.V
        self.X = orthogonalizer(self.S)
        self.enuc = basis.molecule.nuclear_repulsion()

        if fock_builder is None:
            from repro.scf.fock_dense import DenseFockBuilder

            fock_builder = DenseFockBuilder(basis, self.hcore)
        self.fock_builder = fock_builder

    def electronic_energy(self, density: np.ndarray, fock: np.ndarray) -> float:
        """Closed-shell electronic energy ``1/2 Tr[D (H + F)]``."""
        return 0.5 * float(np.sum(density * (self.hcore + fock)))

    def run(self, *, initial_density: np.ndarray | None = None) -> SCFResult:
        """Iterate the SCF to convergence.

        Parameters
        ----------
        initial_density:
            Optional starting density; defaults to the core guess.
        """
        D = (
            initial_density.copy()
            if initial_density is not None
            else core_guess_density(self.hcore, self.S, self.nocc)
        )
        diis = DIIS() if self.use_diis else None
        history: list[SCFIteration] = []
        e_old = 0.0
        eps = np.zeros(self.basis.nbf)
        C = np.zeros((self.basis.nbf, self.basis.nbf))
        F = self.hcore.copy()
        converged = False

        tracer = get_tracer()
        for it in range(1, self.criteria.max_iterations + 1):
            with tracer.span("scf/iteration", iteration=it):
                F, stats = self.fock_builder(D)
                e_elec = self.electronic_energy(D, F)

                F_eff = F
                if diis is not None:
                    with tracer.span("scf/diis", iteration=it):
                        err = DIIS.error_vector(F, D, self.S, self.X)
                        diis.push(F, err)
                        F_eff = diis.extrapolate()

                with tracer.span("scf/diagonalize", iteration=it):
                    eps, C = diagonalize_fock(F_eff, self.X)
                D_new = density_from_coefficients(C, self.nocc)
                if self.damping is not None and (
                    diis is None or diis.nvectors < 2
                ):
                    D_new = (1.0 - self.damping) * D_new + self.damping * D

                d_rms = density_rms_change(D_new, D)
                de = e_elec - e_old
                history.append(
                    SCFIteration(it, e_elec + self.enuc, d_rms, de, stats)
                )

                D = D_new
                e_old = e_elec
            if self.criteria.converged(d_rms, de) and it > 1:
                converged = True
                break

        return SCFResult(
            energy=e_old + self.enuc,
            electronic_energy=e_old,
            nuclear_repulsion=self.enuc,
            converged=converged,
            iterations=history,
            orbital_energies=eps,
            coefficients=C,
            density=D,
            fock=F,
        )
