"""Unrestricted Hartree-Fock (UHF).

The paper's conclusion names UHF as a method whose implementation
"can directly benefit from this work" because its Fock construction has
the identical structure: two Fock matrices assembled from the same ERI
sweep,

.. math::

   F^\\alpha = h + J(D^\\alpha + D^\\beta) - K(D^\\alpha), \\qquad
   F^\\beta  = h + J(D^\\alpha + D^\\beta) - K(D^\\beta),

with spin densities :math:`D^\\sigma = C^\\sigma_{occ} C^{\\sigma T}_{occ}`
(no factor of two).  This module provides the dense reference build and
the UHF SCF driver; :mod:`repro.core.fock_uhf` provides the hybrid
MPI/OpenMP construction using the paper's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.scf.convergence import ConvergenceCriteria, density_rms_change
from repro.scf.diis import DIIS
from repro.scf.guess import diagonalize_fock, orthogonalizer


class UHFFockBuilder(Protocol):
    """Protocol for UHF Fock constructions."""

    def __call__(
        self, d_alpha: np.ndarray, d_beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Return ``(F_alpha, F_beta, stats)``."""
        ...


def uhf_fock_from_eri(
    hcore: np.ndarray,
    eri: np.ndarray,
    d_alpha: np.ndarray,
    d_beta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense reference spin Fock matrices from a full ERI tensor."""
    d_total = d_alpha + d_beta
    J = np.einsum("mnls,ls->mn", eri, d_total, optimize=True)
    Ka = np.einsum("mlns,ls->mn", eri, d_alpha, optimize=True)
    Kb = np.einsum("mlns,ls->mn", eri, d_beta, optimize=True)
    return hcore + J - Ka, hcore + J - Kb


class DenseUHFFockBuilder:
    """Dense-ERI UHF Fock builder (ground truth for the parallel one)."""

    def __init__(self, basis: BasisSet, hcore: np.ndarray) -> None:
        from repro.scf.fock_dense import eri_tensor

        self.hcore = hcore
        self.eri = eri_tensor(basis)

    def __call__(self, d_alpha, d_beta):
        fa, fb = uhf_fock_from_eri(self.hcore, self.eri, d_alpha, d_beta)
        return fa, fb, {}


@dataclass
class UHFResult:
    """Outcome of a UHF run."""

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    niterations: int
    orbital_energies: tuple[np.ndarray, np.ndarray]
    coefficients: tuple[np.ndarray, np.ndarray]
    densities: tuple[np.ndarray, np.ndarray]
    focks: tuple[np.ndarray, np.ndarray]
    s_squared: float

    @property
    def spin_contamination(self) -> float:
        """Deviation of <S^2> from the exact Sz(Sz + 1) value."""
        return self.s_squared - self._exact_s2

    _exact_s2: float = 0.0


class UHF:
    """Unrestricted Hartree-Fock driver.

    Parameters
    ----------
    basis:
        The AO basis (the molecule's charge fixes the electron count).
    multiplicity:
        Spin multiplicity ``2S + 1``; must be consistent with the
        electron count's parity.
    fock_builder:
        Optional spin-Fock construction; defaults to the dense builder.
    """

    def __init__(
        self,
        basis: BasisSet,
        *,
        multiplicity: int = 1,
        fock_builder: UHFFockBuilder | None = None,
        criteria: ConvergenceCriteria | None = None,
        use_diis: bool = True,
    ) -> None:
        nelec = basis.molecule.nelectrons
        nunpaired = multiplicity - 1
        if nunpaired < 0 or (nelec - nunpaired) % 2 != 0:
            raise ValueError(
                f"multiplicity {multiplicity} inconsistent with "
                f"{nelec} electrons"
            )
        self.basis = basis
        self.nalpha = (nelec + nunpaired) // 2
        self.nbeta = (nelec - nunpaired) // 2
        self.criteria = criteria or ConvergenceCriteria()
        self.use_diis = use_diis

        self.S = overlap_matrix(basis)
        self.hcore = kinetic_matrix(basis) + nuclear_matrix(basis)
        self.X = orthogonalizer(self.S)
        self.enuc = basis.molecule.nuclear_repulsion()
        self.fock_builder = fock_builder or DenseUHFFockBuilder(
            basis, self.hcore
        )

    # -- pieces ------------------------------------------------------------

    def electronic_energy(
        self, da: np.ndarray, db: np.ndarray, fa: np.ndarray, fb: np.ndarray
    ) -> float:
        """``E = 1/2 [ (Da + Db) . h + Da . Fa + Db . Fb ]``."""
        return 0.5 * float(
            np.sum((da + db) * self.hcore) + np.sum(da * fa) + np.sum(db * fb)
        )

    def s_squared(self, ca: np.ndarray, cb: np.ndarray) -> float:
        """UHF <S^2> expectation value.

        ``Sz(Sz + 1) + N_beta - sum |<alpha_i|S|beta_j>|^2`` over the
        occupied blocks.
        """
        sz = 0.5 * (self.nalpha - self.nbeta)
        if self.nbeta == 0:
            return sz * (sz + 1.0)
        ov = ca[:, : self.nalpha].T @ self.S @ cb[:, : self.nbeta]
        return sz * (sz + 1.0) + self.nbeta - float(np.sum(ov * ov))

    def _initial_densities(self) -> tuple[np.ndarray, np.ndarray]:
        _, c = diagonalize_fock(self.hcore, self.X)
        da = c[:, : self.nalpha] @ c[:, : self.nalpha].T
        db = c[:, : self.nbeta] @ c[:, : self.nbeta].T
        # Tiny symmetry-breaking perturbation so open shells can relax
        # away from the spin-restricted core guess.
        if self.nalpha != self.nbeta:
            da = da * 1.0  # alpha already differs via occupation
        return da, db

    # -- driver ------------------------------------------------------------

    def run(self) -> UHFResult:
        """Iterate to self-consistency."""
        da, db = self._initial_densities()
        diis = DIIS() if self.use_diis else None
        e_old = 0.0
        converged = False
        it = 0
        eps_a = eps_b = np.zeros(self.basis.nbf)
        ca = cb = np.zeros((self.basis.nbf, self.basis.nbf))
        fa = fb = self.hcore

        for it in range(1, self.criteria.max_iterations + 1):
            fa, fb, _stats = self.fock_builder(da, db)
            e_elec = self.electronic_energy(da, db, fa, fb)

            fa_eff, fb_eff = fa, fb
            if diis is not None:
                # Stacked-spin DIIS: one extrapolation space for both
                # Fock matrices with the combined commutator error.
                err = np.concatenate(
                    (
                        DIIS.error_vector(fa, da, self.S, self.X).ravel(),
                        DIIS.error_vector(fb, db, self.S, self.X).ravel(),
                    )
                )
                stacked = np.concatenate((fa.ravel(), fb.ravel()))
                diis.push(stacked, err)
                ext = diis.extrapolate()
                n2 = self.basis.nbf * self.basis.nbf
                fa_eff = ext[:n2].reshape(fa.shape)
                fb_eff = ext[n2:].reshape(fb.shape)

            eps_a, ca = diagonalize_fock(fa_eff, self.X)
            eps_b, cb = diagonalize_fock(fb_eff, self.X)
            da_new = ca[:, : self.nalpha] @ ca[:, : self.nalpha].T
            db_new = cb[:, : self.nbeta] @ cb[:, : self.nbeta].T

            drms = max(
                density_rms_change(da_new, da),
                density_rms_change(db_new, db),
            )
            de = e_elec - e_old
            da, db, e_old = da_new, db_new, e_elec
            if self.criteria.converged(drms, de) and it > 1:
                converged = True
                break

        sz = 0.5 * (self.nalpha - self.nbeta)
        result = UHFResult(
            energy=e_old + self.enuc,
            electronic_energy=e_old,
            nuclear_repulsion=self.enuc,
            converged=converged,
            niterations=it,
            orbital_energies=(eps_a, eps_b),
            coefficients=(ca, cb),
            densities=(da, db),
            focks=(fa, fb),
            s_squared=self.s_squared(ca, cb),
        )
        object.__setattr__(result, "_exact_s2", sz * (sz + 1.0))
        return result
