"""Unrestricted Hartree-Fock (UHF).

The paper's conclusion names UHF as a method whose implementation
"can directly benefit from this work" because its Fock construction has
the identical structure: two Fock matrices assembled from the same ERI
sweep,

.. math::

   F^\\alpha = h + J(D^\\alpha + D^\\beta) - K(D^\\alpha), \\qquad
   F^\\beta  = h + J(D^\\alpha + D^\\beta) - K(D^\\beta),

with spin densities :math:`D^\\sigma = C^\\sigma_{occ} C^{\\sigma T}_{occ}`
(no factor of two).  This module provides the dense reference build and
the UHF SCF driver; :mod:`repro.core.fock_uhf` provides the hybrid
MPI/OpenMP construction using the paper's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Protocol

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.resilience.checkpoint import (
    CheckpointManager,
    SCFCheckpoint,
    load_checkpoint,
)
from repro.resilience.errors import NonFiniteDensityError, SCFConvergenceError
from repro.resilience.recovery import ConvergenceGuard, level_shifted
from repro.scf.convergence import ConvergenceCriteria, density_rms_change
from repro.scf.diis import DIIS
from repro.scf.guess import diagonalize_fock, orthogonalizer


class UHFFockBuilder(Protocol):
    """Protocol for UHF Fock constructions."""

    def __call__(
        self, d_alpha: np.ndarray, d_beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Return ``(F_alpha, F_beta, stats)``."""
        ...


def uhf_fock_from_eri(
    hcore: np.ndarray,
    eri: np.ndarray,
    d_alpha: np.ndarray,
    d_beta: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense reference spin Fock matrices from a full ERI tensor."""
    d_total = d_alpha + d_beta
    J = np.einsum("mnls,ls->mn", eri, d_total, optimize=True)
    Ka = np.einsum("mlns,ls->mn", eri, d_alpha, optimize=True)
    Kb = np.einsum("mlns,ls->mn", eri, d_beta, optimize=True)
    return hcore + J - Ka, hcore + J - Kb


class DenseUHFFockBuilder:
    """Dense-ERI UHF Fock builder (ground truth for the parallel one)."""

    def __init__(self, basis: BasisSet, hcore: np.ndarray) -> None:
        from repro.scf.fock_dense import eri_tensor

        self.hcore = hcore
        self.eri = eri_tensor(basis)

    def __call__(self, d_alpha, d_beta):
        fa, fb = uhf_fock_from_eri(self.hcore, self.eri, d_alpha, d_beta)
        return fa, fb, {}


@dataclass
class UHFResult:
    """Outcome of a UHF run."""

    energy: float
    electronic_energy: float
    nuclear_repulsion: float
    converged: bool
    niterations: int
    orbital_energies: tuple[np.ndarray, np.ndarray]
    coefficients: tuple[np.ndarray, np.ndarray]
    densities: tuple[np.ndarray, np.ndarray]
    focks: tuple[np.ndarray, np.ndarray]
    s_squared: float

    @property
    def spin_contamination(self) -> float:
        """Deviation of <S^2> from the exact Sz(Sz + 1) value."""
        return self.s_squared - self._exact_s2

    _exact_s2: float = 0.0


class UHF:
    """Unrestricted Hartree-Fock driver.

    Parameters
    ----------
    basis:
        The AO basis (the molecule's charge fixes the electron count).
    multiplicity:
        Spin multiplicity ``2S + 1``; must be consistent with the
        electron count's parity.
    fock_builder:
        Optional spin-Fock construction; defaults to the dense builder.
    """

    def __init__(
        self,
        basis: BasisSet,
        *,
        multiplicity: int = 1,
        fock_builder: UHFFockBuilder | None = None,
        criteria: ConvergenceCriteria | None = None,
        use_diis: bool = True,
    ) -> None:
        nelec = basis.molecule.nelectrons
        nunpaired = multiplicity - 1
        if nunpaired < 0 or (nelec - nunpaired) % 2 != 0:
            raise ValueError(
                f"multiplicity {multiplicity} inconsistent with "
                f"{nelec} electrons"
            )
        self.basis = basis
        self.nalpha = (nelec + nunpaired) // 2
        self.nbeta = (nelec - nunpaired) // 2
        self.criteria = criteria or ConvergenceCriteria()
        self.use_diis = use_diis

        self.S = overlap_matrix(basis)
        self.hcore = kinetic_matrix(basis) + nuclear_matrix(basis)
        self.X = orthogonalizer(self.S)
        self.enuc = basis.molecule.nuclear_repulsion()
        self.fock_builder = fock_builder or DenseUHFFockBuilder(
            basis, self.hcore
        )

    # -- pieces ------------------------------------------------------------

    def electronic_energy(
        self, da: np.ndarray, db: np.ndarray, fa: np.ndarray, fb: np.ndarray
    ) -> float:
        """``E = 1/2 [ (Da + Db) . h + Da . Fa + Db . Fb ]``."""
        return 0.5 * float(
            np.sum((da + db) * self.hcore) + np.sum(da * fa) + np.sum(db * fb)
        )

    def s_squared(self, ca: np.ndarray, cb: np.ndarray) -> float:
        """UHF <S^2> expectation value.

        ``Sz(Sz + 1) + N_beta - sum |<alpha_i|S|beta_j>|^2`` over the
        occupied blocks.
        """
        sz = 0.5 * (self.nalpha - self.nbeta)
        if self.nbeta == 0:
            return sz * (sz + 1.0)
        ov = ca[:, : self.nalpha].T @ self.S @ cb[:, : self.nbeta]
        return sz * (sz + 1.0) + self.nbeta - float(np.sum(ov * ov))

    def _initial_densities(self) -> tuple[np.ndarray, np.ndarray]:
        _, c = diagonalize_fock(self.hcore, self.X)
        da = c[:, : self.nalpha] @ c[:, : self.nalpha].T
        db = c[:, : self.nbeta] @ c[:, : self.nbeta].T
        # Tiny symmetry-breaking perturbation so open shells can relax
        # away from the spin-restricted core guess.
        if self.nalpha != self.nbeta:
            da = da * 1.0  # alpha already differs via occupation
        return da, db

    # -- driver ------------------------------------------------------------

    def _checkpoint_state(
        self,
        cycle: int,
        e_old: float,
        da: np.ndarray,
        db: np.ndarray,
        diis: DIIS | None,
        history: list[tuple[int, float, float, float]],
    ) -> SCFCheckpoint:
        """Snapshot the UHF loop state at the end of ``cycle``."""
        return SCFCheckpoint(
            kind="uhf",
            cycle=cycle,
            energy=e_old,
            densities=(da, db),
            diis_focks=diis.focks if diis is not None else [],
            diis_errors=diis.errors if diis is not None else [],
            history=np.array(history, dtype=np.float64).reshape(-1, 4),
            nbf=self.basis.nbf,
            nelectrons=self.basis.molecule.nelectrons,
            label=self.basis.molecule.name,
        )

    def run(
        self,
        *,
        restart: SCFCheckpoint | str | Path | None = None,
        checkpoint: CheckpointManager | str | Path | None = None,
        recovery: ConvergenceGuard | bool | None = None,
        strict: bool = True,
    ) -> UHFResult:
        """Iterate to self-consistency.

        ``restart`` / ``checkpoint`` / ``recovery`` / ``strict`` behave
        as in :meth:`repro.scf.rhf.RHF.run` (checkpoint round-trips are
        bitwise exact; non-convergence raises a typed
        :class:`~repro.resilience.errors.SCFConvergenceError` carrying
        the partial result unless ``strict=False``).
        """
        history: list[tuple[int, float, float, float]] = []
        diis = DIIS() if self.use_diis else None
        e_old = 0.0
        start_cycle = 1
        if restart is not None:
            ck = load_checkpoint(restart)
            ck.check_compatible(
                kind="uhf",
                nbf=self.basis.nbf,
                nelectrons=self.basis.molecule.nelectrons,
            )
            da, db = (d.copy() for d in ck.densities)
            e_old = ck.energy
            if diis is not None:
                for f, err in zip(ck.diis_focks, ck.diis_errors):
                    diis.push(f, err)
            history = ck.history_rows()
            start_cycle = ck.cycle + 1
        else:
            da, db = self._initial_densities()
        if isinstance(checkpoint, (str, Path)):
            checkpoint = CheckpointManager(checkpoint)
        guard: ConvergenceGuard | None
        guard = ConvergenceGuard() if recovery is True else (recovery or None)
        recovery_damping: float | None = None
        level_shift: float | None = None

        converged = False
        it = start_cycle - 1
        drms = de = float("inf")
        eps_a = eps_b = np.zeros(self.basis.nbf)
        ca = cb = np.zeros((self.basis.nbf, self.basis.nbf))
        fa = fb = self.hcore

        def make_result() -> UHFResult:
            sz = 0.5 * (self.nalpha - self.nbeta)
            result = UHFResult(
                energy=e_old + self.enuc,
                electronic_energy=e_old,
                nuclear_repulsion=self.enuc,
                converged=converged,
                niterations=it,
                orbital_energies=(eps_a, eps_b),
                coefficients=(ca, cb),
                densities=(da, db),
                focks=(fa, fb),
                s_squared=self.s_squared(ca, cb),
            )
            object.__setattr__(result, "_exact_s2", sz * (sz + 1.0))
            return result

        for it in range(start_cycle, self.criteria.max_iterations + 1):
            fa, fb, _stats = self.fock_builder(da, db)
            for spin, f in (("alpha", fa), ("beta", fb)):
                if not np.all(np.isfinite(f)):
                    raise NonFiniteDensityError(
                        f"SCF cycle {it}: {spin} Fock matrix contains "
                        f"{int(np.sum(~np.isfinite(f)))} non-finite value(s) "
                        f"(first bad cycle: {it}); a reduction contribution "
                        "was likely corrupted"
                    )
            e_elec = self.electronic_energy(da, db, fa, fb)

            fa_eff, fb_eff = fa, fb
            if diis is not None:
                # Stacked-spin DIIS: one extrapolation space for both
                # Fock matrices with the combined commutator error.
                err = np.concatenate(
                    (
                        DIIS.error_vector(fa, da, self.S, self.X).ravel(),
                        DIIS.error_vector(fb, db, self.S, self.X).ravel(),
                    )
                )
                stacked = np.concatenate((fa.ravel(), fb.ravel()))
                diis.push(stacked, err)
                ext = diis.extrapolate()
                n2 = self.basis.nbf * self.basis.nbf
                fa_eff = ext[:n2].reshape(fa.shape)
                fb_eff = ext[n2:].reshape(fb.shape)
            if level_shift is not None:
                # Spin densities are idempotent occupied projectors.
                fa_eff = level_shifted(fa_eff, self.S, da, level_shift)
                fb_eff = level_shifted(fb_eff, self.S, db, level_shift)

            eps_a, ca = diagonalize_fock(fa_eff, self.X)
            eps_b, cb = diagonalize_fock(fb_eff, self.X)
            da_new = ca[:, : self.nalpha] @ ca[:, : self.nalpha].T
            db_new = cb[:, : self.nbeta] @ cb[:, : self.nbeta].T
            if recovery_damping is not None:
                da_new = (
                    1.0 - recovery_damping
                ) * da_new + recovery_damping * da
                db_new = (
                    1.0 - recovery_damping
                ) * db_new + recovery_damping * db

            if not (np.all(np.isfinite(da_new)) and np.all(np.isfinite(db_new))):
                raise NonFiniteDensityError(
                    f"UHF cycle {it} produced a non-finite spin density; "
                    f"aborting (first bad cycle: {it})"
                )
            drms = max(
                density_rms_change(da_new, da),
                density_rms_change(db_new, db),
            )
            de = e_elec - e_old
            da, db, e_old = da_new, db_new, e_elec
            history.append((it, e_elec + self.enuc, drms, de))

            if checkpoint is not None:
                checkpoint.maybe_save(
                    self._checkpoint_state(it, e_old, da, db, diis, history)
                )

            if guard is not None:
                action = guard.observe(it, e_elec + self.enuc, drms)
                if action is not None:
                    if action.stage == "damping":
                        recovery_damping = guard.damping
                    elif action.stage == "level_shift":
                        level_shift = guard.level_shift
                    elif action.stage == "diis_reset":
                        diis = DIIS() if self.use_diis else None
                elif guard.exhausted:
                    raise SCFConvergenceError(
                        guard.failure_message(),
                        result=make_result(),
                        stages_applied=guard.stages_applied,
                    )

            if self.criteria.converged(drms, de) and it > 1:
                converged = True
                break

        if not converged and strict:
            raise SCFConvergenceError(
                f"UHF did not converge in {self.criteria.max_iterations} "
                f"cycles (last E = {e_old + self.enuc:.10f} Eh, "
                f"dE = {de:.3e}, dRMS = {drms:.3e})",
                result=make_result(),
                stages_applied=guard.stages_applied if guard else (),
            )
        return make_result()
