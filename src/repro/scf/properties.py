"""Molecular properties from a converged SCF density.

Covers the standard post-SCF analyses a downstream user expects:
dipole moment, Mulliken populations/charges, and orbital-based
quantities (HOMO-LUMO gap, Koopmans ionization potential).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.integrals.multipole import dipole_matrices
from repro.integrals.onee import overlap_matrix

#: 1 atomic unit of electric dipole in Debye.
AU_TO_DEBYE: float = 2.541746473


def dipole_moment(
    basis: BasisSet, density: np.ndarray, *, origin: np.ndarray | None = None
) -> np.ndarray:
    """Total (electronic + nuclear) dipole moment in atomic units.

    Parameters
    ----------
    basis:
        The AO basis (carries the molecule for the nuclear part).
    density:
        Converged closed-shell density (factor-2 convention).
    origin:
        Expansion origin; irrelevant for neutral molecules.
    """
    if origin is None:
        origin = np.zeros(3)
    mu_ints = dipole_matrices(basis, origin)
    electronic = -np.einsum("dmn,mn->d", mu_ints, density)
    mol = basis.molecule
    nuclear = np.einsum(
        "a,ad->d", mol.charges, mol.coords - origin[None, :]
    )
    return electronic + nuclear


@dataclass
class MullikenAnalysis:
    """Mulliken population analysis result."""

    populations: np.ndarray   # gross electron population per atom
    charges: np.ndarray       # partial charge per atom

    def total_electrons(self) -> float:
        """Sum of atomic populations (= electron count)."""
        return float(self.populations.sum())


def mulliken_populations(
    basis: BasisSet, density: np.ndarray, overlap: np.ndarray | None = None
) -> MullikenAnalysis:
    """Mulliken gross populations and partial charges.

    ``q_A = Z_A - sum_{mu in A} (D S)_{mu mu}``.
    """
    S = overlap if overlap is not None else overlap_matrix(basis)
    ds_diag = np.einsum("mn,nm->m", density, S)
    natoms = basis.molecule.natoms
    pops = np.zeros(natoms)
    for sh in basis.shells:
        sl = slice(sh.bf_offset, sh.bf_offset + sh.nfunc)
        pops[sh.atom_index] += float(ds_diag[sl].sum())
    charges = basis.molecule.charges - pops
    return MullikenAnalysis(populations=pops, charges=charges)


def homo_lumo_gap(orbital_energies: np.ndarray, nocc: int) -> float:
    """HOMO-LUMO gap in Hartree."""
    if nocc < 1 or nocc >= orbital_energies.size:
        raise ValueError("occupation out of range for the orbital set")
    return float(orbital_energies[nocc] - orbital_energies[nocc - 1])


def koopmans_ionization_potential(
    orbital_energies: np.ndarray, nocc: int
) -> float:
    """Koopmans' theorem IP: minus the HOMO energy (Hartree)."""
    if nocc < 1:
        raise ValueError("no occupied orbitals")
    return float(-orbital_energies[nocc - 1])
