"""Self-contained symmetric eigensolver (cyclic Jacobi).

GAMESS carries its own Fortran diagonalizers rather than depending on a
vendor LAPACK; in the same spirit this module provides a dependency-free
symmetric eigensolver the SCF driver can use instead of
``scipy.linalg.eigh``.  The classic cyclic Jacobi method: sweep all
off-diagonal pairs, rotating each to zero, until the off-diagonal norm
is negligible.  Quadratically convergent once sweeps get close;
``O(n^3)`` per sweep with a handful of sweeps in practice.
"""

from __future__ import annotations

import numpy as np


def jacobi_eigh(
    A: np.ndarray,
    *,
    tol: float = 1.0e-12,
    max_sweeps: int = 60,
) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a real symmetric matrix by cyclic Jacobi.

    Parameters
    ----------
    A:
        Real symmetric matrix (validated).
    tol:
        Convergence threshold on the off-diagonal Frobenius norm
        relative to the matrix norm.
    max_sweeps:
        Hard sweep cap; exceeding it raises.

    Returns
    -------
    (eigenvalues, eigenvectors)
        Ascending eigenvalues and the matching orthonormal column
        eigenvectors, same convention as ``numpy.linalg.eigh``.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("matrix must be square")
    if not np.allclose(A, A.T, atol=1e-10):
        raise ValueError("matrix must be symmetric")
    n = A.shape[0]
    a = A.copy()
    v = np.eye(n)
    if n == 1:
        return a.diagonal().copy(), v

    norm = np.linalg.norm(A)
    if norm == 0.0:
        return np.zeros(n), v

    for _sweep in range(max_sweeps):
        off = np.linalg.norm(a - np.diag(a.diagonal()))
        if off <= tol * norm:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                apq = a[p, q]
                if abs(apq) <= tol * norm / n:
                    continue
                # Rotation angle zeroing a[p, q] (overflow-safe form).
                theta = (a[q, q] - a[p, p]) / (2.0 * apq)
                if abs(theta) > 1.0e150:
                    t = 0.5 / theta  # asymptotic small-angle limit
                elif theta == 0.0:
                    t = 1.0
                else:
                    t = np.sign(theta) / (
                        abs(theta) + np.sqrt(theta * theta + 1.0)
                    )
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c

                # Apply the rotation to rows/columns p and q.
                ap = a[:, p].copy()
                aq = a[:, q].copy()
                a[:, p] = c * ap - s * aq
                a[:, q] = s * ap + c * aq
                ap = a[p, :].copy()
                aq = a[q, :].copy()
                a[p, :] = c * ap - s * aq
                a[q, :] = s * ap + c * aq

                vp = v[:, p].copy()
                vq = v[:, q].copy()
                v[:, p] = c * vp - s * vq
                v[:, q] = s * vp + c * vq
    else:
        raise RuntimeError(
            f"Jacobi failed to converge in {max_sweeps} sweeps"
        )

    evals = a.diagonal().copy()
    order = np.argsort(evals, kind="stable")
    return evals[order], v[:, order]
