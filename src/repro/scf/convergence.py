"""SCF convergence criteria.

The paper defines convergence as "the root-mean-squared difference of
consecutive densities lying below a chosen convergence threshold"; the
energy-change criterion is tracked as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def density_rms_change(d_new: np.ndarray, d_old: np.ndarray) -> float:
    """Root-mean-square element-wise change between two density matrices."""
    diff = d_new - d_old
    return float(np.sqrt(np.mean(diff * diff)))


@dataclass(frozen=True)
class ConvergenceCriteria:
    """Thresholds that terminate the SCF loop.

    Attributes
    ----------
    density_rms:
        RMS density-change threshold (the paper's criterion).
    energy:
        Absolute energy-change threshold.
    max_iterations:
        Hard iteration cap; exceeding it raises in strict mode.
    """

    density_rms: float = 1.0e-8
    energy: float = 1.0e-10
    max_iterations: int = 100

    def converged(self, d_rms: float, de: float) -> bool:
        """True when both thresholds are satisfied."""
        return d_rms < self.density_rms and abs(de) < self.energy
