"""SCF convergence criteria.

The paper defines convergence as "the root-mean-squared difference of
consecutive densities lying below a chosen convergence threshold"; the
energy-change criterion is tracked as well.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def density_rms_change(d_new: np.ndarray, d_old: np.ndarray) -> float:
    """Root-mean-square element-wise change between two density matrices.

    Fails fast with a typed
    :class:`~repro.resilience.errors.NonFiniteDensityError` when either
    density contains NaN/Inf — a non-finite density would otherwise
    poison the convergence test (``NaN < threshold`` is False) and let
    the SCF silently iterate on garbage until the cycle cap.
    """
    for label, d in (("new", d_new), ("old", d_old)):
        if not np.all(np.isfinite(d)):
            from repro.resilience.errors import NonFiniteDensityError

            raise NonFiniteDensityError(
                f"{label} density contains "
                f"{int(np.sum(~np.isfinite(d)))} non-finite value(s)"
            )
    diff = d_new - d_old
    return float(np.sqrt(np.mean(diff * diff)))


@dataclass(frozen=True)
class ConvergenceCriteria:
    """Thresholds that terminate the SCF loop.

    Attributes
    ----------
    density_rms:
        RMS density-change threshold (the paper's criterion).
    energy:
        Absolute energy-change threshold.
    max_iterations:
        Hard iteration cap; exceeding it raises in strict mode.
    """

    density_rms: float = 1.0e-8
    energy: float = 1.0e-10
    max_iterations: int = 100

    def converged(self, d_rms: float, de: float) -> bool:
        """True when both thresholds are satisfied."""
        return d_rms < self.density_rms and abs(de) < self.energy
