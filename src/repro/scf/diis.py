"""Pulay DIIS (direct inversion of the iterative subspace) acceleration."""

from __future__ import annotations

from collections import deque

import numpy as np


class DIIS:
    """Classic commutator-DIIS for SCF convergence acceleration.

    Stores up to ``max_vectors`` (Fock, error) pairs; the error vector
    is the orthogonalized commutator ``X^T (FDS - SDF) X`` whose norm
    vanishes at self-consistency.
    """

    def __init__(self, max_vectors: int = 8) -> None:
        if max_vectors < 2:
            raise ValueError("DIIS needs at least 2 stored vectors")
        self.max_vectors = max_vectors
        self._focks: deque[np.ndarray] = deque(maxlen=max_vectors)
        self._errors: deque[np.ndarray] = deque(maxlen=max_vectors)

    @staticmethod
    def error_vector(
        F: np.ndarray, D: np.ndarray, S: np.ndarray, X: np.ndarray
    ) -> np.ndarray:
        """Orthogonalized SCF error ``X^T (FDS - SDF) X``."""
        fds = F @ D @ S
        return X.T @ (fds - fds.T) @ X

    def push(self, fock: np.ndarray, error: np.ndarray) -> None:
        """Record one iteration's Fock matrix and error vector."""
        self._focks.append(fock.copy())
        self._errors.append(error.copy())

    @property
    def nvectors(self) -> int:
        """Number of stored iterates."""
        return len(self._focks)

    @property
    def focks(self) -> list[np.ndarray]:
        """Stored Fock iterates, push order (copies; for checkpointing)."""
        return [f.copy() for f in self._focks]

    @property
    def errors(self) -> list[np.ndarray]:
        """Stored error vectors, push order (copies; for checkpointing)."""
        return [e.copy() for e in self._errors]

    def extrapolate(self) -> np.ndarray:
        """Return the DIIS-extrapolated Fock matrix.

        With fewer than two stored vectors the most recent Fock matrix
        is returned unchanged.  If the DIIS linear system is singular
        the oldest vector is dropped and the solve retried.
        """
        if self.nvectors < 2:
            return self._focks[-1].copy()

        while True:
            n = len(self._errors)
            B = np.empty((n + 1, n + 1))
            B[-1, :] = -1.0
            B[:, -1] = -1.0
            B[-1, -1] = 0.0
            for i, ei in enumerate(self._errors):
                for j, ej in enumerate(self._errors):
                    if j < i:
                        B[i, j] = B[j, i]
                    else:
                        B[i, j] = float(np.vdot(ei, ej))
            rhs = np.zeros(n + 1)
            rhs[-1] = -1.0
            try:
                coeffs = np.linalg.solve(B, rhs)[:n]
                break
            except np.linalg.LinAlgError:
                if n <= 2:
                    return self._focks[-1].copy()
                self._focks.popleft()
                self._errors.popleft()

        out = np.zeros_like(self._focks[-1])
        for c, f in zip(coeffs, self._focks):
            out += c * f
        return out
