"""Second-order Moller-Plesset perturbation theory (MP2).

The paper's introduction motivates fast HF precisely because "the HF
solution is commonly used as a starting point for more accurate ab
initio methods, such as second order perturbation theory" — this module
closes that loop.  Closed-shell MP2 from a converged RHF wavefunction:

.. math::

   E^{(2)} = \\sum_{ijab}
       \\frac{(ia|jb)\\,[2 (ia|jb) - (ib|ja)]}
            {\\varepsilon_i + \\varepsilon_j
             - \\varepsilon_a - \\varepsilon_b}

with ``i, j`` occupied and ``a, b`` virtual spatial orbitals.  The AO
to MO integral transformation is done in four quarter steps
(``O(N^5)``), not as a single ``O(N^8)`` contraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.scf.fock_dense import eri_tensor
from repro.scf.rhf import SCFResult


def ao_to_mo_ovov(
    eri_ao: np.ndarray,
    coefficients: np.ndarray,
    nocc: int,
) -> np.ndarray:
    """Transform AO ERIs to the (ov|ov) MO block in four quarter steps.

    Returns ``(ia|jb)`` with shape ``(nocc, nvirt, nocc, nvirt)``.
    """
    c_occ = coefficients[:, :nocc]
    c_vir = coefficients[:, nocc:]
    # (mu nu|lam sig) -> (i nu|lam sig) -> (i a|lam sig) -> ...
    tmp = np.einsum("mnls,mi->inls", eri_ao, c_occ, optimize=True)
    tmp = np.einsum("inls,na->ials", tmp, c_vir, optimize=True)
    tmp = np.einsum("ials,lj->iajs", tmp, c_occ, optimize=True)
    return np.einsum("iajs,sb->iajb", tmp, c_vir, optimize=True)


@dataclass(frozen=True)
class MP2Result:
    """MP2 correlation energy decomposition."""

    correlation_energy: float
    same_spin: float
    opposite_spin: float
    total_energy: float

    @property
    def scs_mp2_correlation(self) -> float:
        """Grimme's spin-component-scaled MP2 correlation energy."""
        return self.opposite_spin * 1.2 + self.same_spin / 3.0


def mp2_energy(basis: BasisSet, scf: SCFResult) -> MP2Result:
    """Closed-shell MP2 correction on top of a converged RHF result.

    Parameters
    ----------
    basis:
        The AO basis used for the SCF.
    scf:
        A converged :class:`~repro.scf.rhf.SCFResult`.
    """
    if not scf.converged:
        raise ValueError("MP2 requires a converged SCF reference")
    nocc = basis.molecule.nelectrons // 2
    nbf = basis.nbf
    if nocc >= nbf:
        raise ValueError("no virtual orbitals available for MP2")

    eri_ao = eri_tensor(basis)
    ovov = ao_to_mo_ovov(eri_ao, scf.coefficients, nocc)
    eps = scf.orbital_energies
    e_occ = eps[:nocc]
    e_vir = eps[nocc:]

    denom = (
        e_occ[:, None, None, None]
        - e_vir[None, :, None, None]
        + e_occ[None, None, :, None]
        - e_vir[None, None, None, :]
    )
    t = ovov / denom

    e_os = float(np.einsum("iajb,iajb->", t, ovov, optimize=True))
    e_ss = e_os - float(
        np.einsum("iajb,ibja->", t, ovov, optimize=True)
    )
    corr = e_os + e_ss
    return MP2Result(
        correlation_energy=corr,
        same_spin=e_ss,
        opposite_spin=e_os,
        total_energy=scf.energy + corr,
    )
