"""Initial-guess density matrices for the SCF procedure."""

from __future__ import annotations

import numpy as np
import scipy.linalg


def orthogonalizer(S: np.ndarray, *, threshold: float = 1.0e-9) -> np.ndarray:
    """Symmetric (Lowdin) orthogonalization matrix :math:`X = S^{-1/2}`.

    Eigenvalues of ``S`` below ``threshold`` are projected out
    (canonical orthogonalization fallback for near-linear-dependent
    bases).
    """
    evals, evecs = scipy.linalg.eigh(S)
    keep = evals > threshold
    inv_sqrt = np.zeros_like(evals)
    inv_sqrt[keep] = 1.0 / np.sqrt(evals[keep])
    return (evecs * inv_sqrt[None, :]) @ evecs.T


def density_from_coefficients(C: np.ndarray, nocc: int) -> np.ndarray:
    """Closed-shell density ``D = 2 C_occ C_occ^T`` from MO coefficients."""
    Cocc = C[:, :nocc]
    return 2.0 * (Cocc @ Cocc.T)


def diagonalize_fock(F: np.ndarray, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Solve the Roothaan equations for one Fock matrix.

    Returns ``(orbital_energies, C)`` where ``C`` are MO coefficients in
    the original AO basis.
    """
    Fp = X.T @ F @ X
    eps, Cp = scipy.linalg.eigh(Fp)
    return eps, X @ Cp


def core_guess_density(hcore: np.ndarray, S: np.ndarray, nocc: int) -> np.ndarray:
    """Core-Hamiltonian guess: diagonalize ``H`` in the orthogonal basis.

    This is the guess the paper's SCF description uses ("An initial Fock
    matrix is constructed from terms of the core Hamiltonian and a
    symmetric orthogonalization matrix").
    """
    X = orthogonalizer(S)
    _, C = diagonalize_fock(hcore, X)
    return density_from_coefficients(C, nocc)
