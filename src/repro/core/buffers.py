"""Per-thread column-block accumulation buffers (paper Figure 1).

Algorithm 3 gives every thread a private buffer for the *i* and *j*
column blocks of the Fock matrix.  In the paper's Fortran each buffer is
a 2-D array ``(mxsize, nthreads)`` — one *column* per thread, written
column-wise during accumulation (Figure 1 A) and reduced row-wise with a
chunked tree when flushed into the shared Fock matrix (Figure 1 B),
with padding on the leading dimension against false sharing.

In C-ordered NumPy the natural transposition is used: one contiguous
*row* per thread, shape ``(nthreads, padded_size)``, preserving the
layout property that matters (each thread streams through its own
contiguous memory during accumulation).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.reduction import PAD_DOUBLES, flush_chunks
from repro.parallel.shared_array import WriteTracker


class ColumnBlockBuffer:
    """Thread-private accumulation buffer for one Fock column block.

    Parameters
    ----------
    nbf:
        Number of basis functions (rows of the Fock matrix).
    max_width:
        Widest composite-shell block (the paper's ``shellSize``); the
        buffer is sized for the widest block and reused for all shells.
    nthreads:
        Team size.
    pad:
        Extra doubles of padding per thread row (false-sharing guard).
    """

    def __init__(
        self, nbf: int, max_width: int, nthreads: int, *, pad: int = PAD_DOUBLES
    ) -> None:
        self.nbf = nbf
        self.max_width = max_width
        self.nthreads = nthreads
        self.logical_size = nbf * max_width
        padded = self.logical_size + pad
        self.data = np.zeros((nthreads, padded))
        self.flushes = 0

    def thread_view(self, thread: int) -> np.ndarray:
        """Thread ``thread``'s buffer as an ``(nbf, max_width)`` matrix view."""
        return self.data[thread, : self.logical_size].reshape(
            self.nbf, self.max_width
        )

    def add(
        self, thread: int, rows: slice, cols: np.ndarray | slice, value: np.ndarray
    ) -> None:
        """Accumulate ``value`` into a sub-block of the thread's buffer.

        ``cols`` indexes *within* the column block (0-based inside the
        shell's width).
        """
        self.thread_view(thread)[rows, cols] += value

    def flush(
        self,
        fock: np.ndarray,
        col_offset: int,
        width: int,
        *,
        tracker: WriteTracker | None = None,
    ) -> None:
        """Cooperative flush into the shared Fock matrix.

        Reproduces Figure 1 B: threads own cache-line-sized row chunks
        (``flush_chunks``); each chunk's thread sums that chunk's rows
        across all thread buffers (a pairwise tree at the NumPy level)
        and adds them into ``fock[:, col_offset:col_offset+width]``.
        Each Fock row is written by exactly one thread, so the flush is
        race-free by construction; the tracker, when supplied, verifies
        exactly that.
        """
        nbf = self.nbf
        view3 = self.data[:, : nbf * self.max_width].reshape(
            self.nthreads, nbf, self.max_width
        )
        for thread, rows in flush_chunks(nbf, self.nthreads):
            chunk = view3[:, rows.start : rows.stop, :width]
            total = _pairwise_tree_sum(chunk)
            fock[rows.start : rows.stop, col_offset : col_offset + width] += total
            if tracker is not None:
                tracker.record_block(
                    thread,
                    fock.shape,
                    slice(rows.start, rows.stop),
                    slice(col_offset, col_offset + width),
                )
        self.data.fill(0.0)
        self.flushes += 1

    def is_zero(self) -> bool:
        """True when the buffer holds no pending contributions."""
        return not np.any(self.data)


def _pairwise_tree_sum(stack: np.ndarray) -> np.ndarray:
    """Pairwise (tree-ordered) sum over the leading (thread) axis."""
    n = stack.shape[0]
    if n == 1:
        return stack[0].copy()
    parts = [stack[t] for t in range(n)]
    while len(parts) > 1:
        nxt = [parts[a] + parts[a + 1] for a in range(0, len(parts) - 1, 2)]
        if len(parts) % 2:
            nxt.append(parts[-1])
        parts = nxt
    return parts[0]
