"""Algorithm 3 — hybrid MPI/OpenMP with *shared* density and Fock.

The paper's flagship algorithm.  Per MPI rank there is exactly one Fock
matrix shared by all threads; write conflicts are avoided structurally:

* MPI DLB over the combined ``(i, j)`` bra index; OpenMP dynamic
  schedule over the combined ``(k, l)`` ket index (``kl <= ij``).
* Each thread accumulates its bra-column contributions into private
  ``FI`` (column block *i*) and ``FJ`` (column block *j*) buffers
  (paper Figure 1 A; :class:`~repro.core.buffers.ColumnBlockBuffer`).
* The ``F(k, l)`` contribution goes *directly* into the shared Fock
  matrix: distinct ``kl`` iterations touch disjoint ``(k, l)`` blocks,
  so threads never collide (the race tracker proves it).
* ``FJ`` is flushed after every ``kl`` loop; ``FI`` is flushed only
  when the ``i`` index changes (the paper's ``iold`` optimization),
  plus once at the end for the remainder.  Flushes are cooperative,
  row-chunked tree reductions (Figure 1 B).
* Safe bra prescreening (``Q_ij * Q_max < tau``) skips entire top-loop
  iterations, which is what makes the MPI iteration space both large
  *and* cheap to traverse for very sparse systems.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.buffers import ColumnBlockBuffer
from repro.core.fock_base import (
    FockBuildStats,
    ParallelFockBuilderBase,
    RankBuildResult,
)
from repro.core.indexing import decode_pair, decode_pairs, npairs
from repro.obs.tracer import get_tracer
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.shared_array import WriteTracker
from repro.parallel.threads import ThreadTeam


class SharedFockBuilder(ParallelFockBuilderBase):
    """The paper's Algorithm 3 ("shared density, shared Fock").

    ``flush_fi_every_iteration`` disables the paper's ``iold``
    optimization (flush FI only when the *i* index changes) and flushes
    after every top-loop iteration instead — an ablation knob; the
    result is identical, only the flush count (and hence the simulated
    synchronization cost) grows.
    """

    algorithm_name = "shared-fock"

    def __init__(self, basis, hcore, *, flush_fi_every_iteration: bool = False,
                 **kwargs) -> None:
        super().__init__(basis, hcore, **kwargs)
        self.flush_fi_every_iteration = flush_fi_every_iteration

    def dlb_ntasks(self) -> int:
        return npairs(self.nshells)

    def rank_program(
        self,
        rank: int,
        grants: Iterator[int],
        density: np.ndarray,
        W: np.ndarray,
        *,
        barrier: Callable[[], None] | None = None,
    ) -> RankBuildResult:
        """One rank's share: shared Fock with FI/FJ buffers and flushes."""
        rr = RankBuildResult(rank=rank)
        tracer = get_tracer()
        team = ThreadTeam(self.nthreads)
        offsets = self.basis.shell_bf_offsets()
        widths = self.basis.shell_nfuncs()
        max_width = self.basis.max_shell_nfunc()
        thread_counts = np.zeros(self.nthreads, dtype=np.int64)
        tracker = self._new_tracker()
        FI = ColumnBlockBuffer(self.nbf, max_width, self.nthreads)
        FJ = ColumnBlockBuffer(self.nbf, max_width, self.nthreads)
        iold = -1
        done = 0

        for ij in grants:
            i, j = decode_pair(ij)
            # Bra prescreening (paper Algorithm 3 line 13, safe form).
            if not self.screening.prescreen_ij(i, j):
                rr.quartets_screened += ij + 1
                continue

            # Flush FI when the i index changes (lines 15-18) — or
            # every iteration when the iold optimization is ablated.
            if (i != iold or self.flush_fi_every_iteration) and iold >= 0:
                with tracer.span("fock/flush_fi", rank=rank, i=iold):
                    FI.flush(
                        W, int(offsets[iold]), int(widths[iold]),
                        tracker=tracker,
                    )
                if tracker is not None:
                    tracker.barrier()

            kl_surviving = self.screening.surviving_kl_pairs(ij)
            rr.quartets_screened += (ij + 1) - kl_surviving.size
            if kl_surviving.size:
                ks, ls = decode_pairs(kl_surviving)
                shares = team.partition(
                    kl_surviving.size,
                    schedule=self.thread_schedule,
                    chunk=self.thread_chunk,
                    costs=self._kl_costs(ks, ls, widths),
                )
                si = slice(int(offsets[i]), int(offsets[i] + widths[i]))
                sj = slice(int(offsets[j]), int(offsets[j] + widths[j]))
                for t, share in enumerate(shares):
                    with tracer.span(
                        "fock/kl", rank=rank, thread=t, ij=ij,
                        tasks=len(share),
                    ):
                        for idx in share:
                            k, l = int(ks[idx]), int(ls[idx])
                            self._do_quartet(
                                W, FI, FJ, density, i, j, k, l, t,
                                si, sj, tracker,
                            )
                            thread_counts[t] += 1
                            done += 1
                if tracker is not None:
                    tracker.barrier()

            # Flush FJ after every kl loop (line 31).
            with tracer.span("fock/flush_fj", rank=rank, j=j):
                FJ.flush(
                    W, int(offsets[j]), int(widths[j]), tracker=tracker
                )
            if tracker is not None:
                tracker.barrier()
            iold = i

        # Remainder FI flush (line 36).
        if iold >= 0:
            with tracer.span("fock/flush_fi", rank=rank, i=iold):
                FI.flush(
                    W, int(offsets[iold]), int(widths[iold]),
                    tracker=tracker,
                )
        rr.quartets_done = done
        rr.per_thread_quartets = thread_counts.tolist()
        rr.fi_flushes = FI.flushes
        rr.fj_flushes = FJ.flushes
        if tracker is not None:
            rr.races = len(tracker.races)
            rr.writes_checked = tracker.writes_checked
        return rr

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(density)
        tracer = get_tracer()
        world = SimWorld(self.nranks)
        dlb = self.make_scheduler()
        results: list[np.ndarray] = []

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            # ONE shared Fock accumulator for the whole rank.
            W = np.zeros((self.nbf, self.nbf))
            rr = self.rank_program(rank, self._grants(dlb, rank), density, W)
            self._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
            with tracer.span("fock/gsumf", rank=rank):
                self._resilient_gsumf(comm, W)
            results.append(W)

        with tracer.span(
            "fock/build", algorithm=self.algorithm_name,
            nranks=self.nranks, nthreads=self.nthreads,
        ):
            world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        return self._finish(results[0], stats, world, [])

    def _do_quartet(
        self,
        W: np.ndarray,
        FI: ColumnBlockBuffer,
        FJ: ColumnBlockBuffer,
        density: np.ndarray,
        i: int,
        j: int,
        k: int,
        l: int,
        thread: int,
        si: slice,
        sj: slice,
        tracker: WriteTracker | None,
    ) -> None:
        X = self.engine.composite_block(i, j, k, l)
        contribs = self.engine.scatter_contributions(X, density, i, j, k, l)

        wi = si.stop - si.start
        wj = sj.stop - sj.start
        # Private i-column buffer: families (i,j), (i,k), (i,l).
        for key in ("ji", "ki", "li"):
            (rows, _cols), val = contribs[key]
            FI.add(thread, rows, slice(0, wi), val)
        # Private j-column buffer: families (j,k), (j,l).
        for key in ("kj", "lj"):
            (rows, _cols), val = contribs[key]
            FJ.add(thread, rows, slice(0, wj), val)
        # Shared direct update: family (k, l) — disjoint across threads.
        (rows, cols), val = contribs["kl"]
        W[rows, cols] += val
        if tracker is not None:
            tracker.record_block(thread, W.shape, rows, cols)

    def dlb_costs(self) -> np.ndarray | None:
        if self.dlb_policy != "cost_greedy":
            return None
        return self.work_estimates()

    def work_estimates(self) -> np.ndarray:
        """Schwarz-screened surviving-quartet counts per bra pair."""
        return self.screening.pair_survivor_counts()

    def _kl_costs(
        self, ks: np.ndarray, ls: np.ndarray, widths: np.ndarray
    ) -> np.ndarray | None:
        if self.thread_schedule != "dynamic":
            return None
        # Ket block size as the cost proxy for grant ordering.
        return (widths[ks] * widths[ls]).astype(np.float64)
