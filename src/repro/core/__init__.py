"""The paper's contribution: parallel Fock-matrix construction.

Three algorithms, exactly following the paper's pseudocode:

* :class:`~repro.core.fock_mpi.MPIOnlyFockBuilder` — Algorithm 1, the
  stock GAMESS MPI-only code: everything replicated per rank, DLB over
  the combined ``(i, j)`` shell pair index.
* :class:`~repro.core.fock_private.PrivateFockBuilder` — Algorithm 2,
  hybrid MPI/OpenMP with shared density and thread-private Fock
  matrices; MPI DLB over ``i``, OpenMP ``collapse(2) dynamic`` over
  ``(j, k)``.
* :class:`~repro.core.fock_shared.SharedFockBuilder` — Algorithm 3,
  shared density *and* Fock; MPI DLB over ``(i, j)``, OpenMP dynamic
  over ``(k, l)``; per-thread ``FI``/``FJ`` column buffers with
  flush-on-``i``-change and a race-free cooperative tree reduction.

Plus the supporting pieces: symmetry-unique quartet indexing
(:mod:`~repro.core.indexing`), the block ERI/Fock-scatter engine
(:mod:`~repro.core.quartets`), screening statistics
(:mod:`~repro.core.screening`), the paper's Figure-1 buffer structure
(:mod:`~repro.core.buffers`), a parallel SCF driver
(:mod:`~repro.core.scf_driver`) and the memory-footprint model of
eqs. (3a)-(3c) (:mod:`~repro.core.memory_model`).
"""

from repro.core.indexing import (
    decode_pair,
    pair_index,
    npairs,
    quartet_degeneracy_factor,
    unique_quartets,
)
from repro.core.quartets import QuartetEngine, symmetrize_two_electron
from repro.core.fock_mpi import MPIOnlyFockBuilder
from repro.core.fock_private import PrivateFockBuilder
from repro.core.fock_shared import SharedFockBuilder
from repro.core.fock_distributed import DistributedDataFockBuilder
from repro.core.fock_uhf import UHFPrivateFockBuilder
from repro.core.scf_driver import ParallelSCF, make_fock_builder
from repro.core.memory_model import MemoryModel, AlgorithmKind

__all__ = [
    "pair_index",
    "decode_pair",
    "npairs",
    "quartet_degeneracy_factor",
    "unique_quartets",
    "QuartetEngine",
    "symmetrize_two_electron",
    "MPIOnlyFockBuilder",
    "PrivateFockBuilder",
    "SharedFockBuilder",
    "DistributedDataFockBuilder",
    "UHFPrivateFockBuilder",
    "ParallelSCF",
    "make_fock_builder",
    "MemoryModel",
    "AlgorithmKind",
]
