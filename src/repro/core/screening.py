"""Schwarz screening: functional tests, statistics, and the large-system model.

Three roles:

1. **Functional screening** for the Fock algorithms:
   :class:`Screening` answers the per-quartet test
   ``Q_ij * Q_kl >= tau`` and the safe top-loop prescreen
   ``Q_ij * Q_max >= tau`` (the paper's Algorithm 3 prescreens whole
   ``ij`` iterations; the version here uses the globally safe bound so
   all three algorithms compute the identical surviving quartet set).

2. **Screening statistics** for the performance model: exact surviving-
   quartet counts per top-loop task, computed with sorted/searchsorted
   aggregation instead of quartet enumeration (usable up to the 5 nm
   dataset's ~5 * 10^14 quartets).

3. **The model Schwarz matrix** for benchmark-scale systems, where
   exact :math:`Q_{ij} = \\sqrt{(ij|ij)}` evaluation is unaffordable in
   Python: a calibrated Gaussian-overlap decay model

   .. math:: \\log Q_{ij} = a_{t_i} + a_{t_j} -
             \\frac{\\zeta_i \\zeta_j}{\\zeta_i + \\zeta_j} R_{ij}^2

   with one amplitude per shell type (S/L/D) and the most-diffuse
   exponent :math:`\\zeta` per composite shell.  The parameters are fit
   once against exact small-graphene Schwarz matrices
   (:func:`calibrate_schwarz_model`); the fit quality is exercised by
   the test suite and reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.core.indexing import decode_pairs, npairs

#: GAMESS-like default integral cutoff.
DEFAULT_TAU: float = 1.0e-10


class Screening:
    """Quartet screening decisions over a Schwarz bound matrix.

    Parameters
    ----------
    Q:
        Symmetric ``(nshells, nshells)`` Schwarz bounds over composite
        shells (exact or modelled).
    tau:
        Integral neglect threshold.
    """

    def __init__(self, Q: np.ndarray, tau: float = DEFAULT_TAU) -> None:
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError("Q must be square")
        self.Q = Q
        self.tau = float(tau)
        self.qmax = float(Q.max()) if Q.size else 0.0
        self.nshells = Q.shape[0]

        # Flattened canonical-pair Q values, indexed by combined pair index.
        iu, ju = np.tril_indices(self.nshells)
        order = iu * (iu + 1) // 2 + ju
        self.pair_q = np.empty(npairs(self.nshells))
        self.pair_q[order] = Q[iu, ju]

    def with_tau(self, tau: float) -> "Screening":
        """A view of the same Schwarz data under a different threshold.

        Used by density-aware (incremental) screening: a small density
        change lets the effective threshold rise without recomputing any
        bounds.  The clone shallow-copies *every* attribute (sharing the
        Schwarz arrays) so fields added to ``__init__`` later can never
        be silently missing on incremental-SCF clones.
        """
        clone = copy.copy(self)
        clone.tau = float(tau)
        return clone

    def survives(self, i: int, j: int, k: int, l: int) -> bool:
        """Per-quartet Cauchy-Schwarz test (paper's ``schwartz(i,j,k,l)``)."""
        return self.Q[i, j] * self.Q[k, l] >= self.tau

    def prescreen_ij(self, i: int, j: int) -> bool:
        """Safe top-loop test: can *any* quartet with this bra survive?"""
        return self.Q[i, j] * self.qmax >= self.tau

    def surviving_kl_pairs(self, ij: int) -> np.ndarray:
        """Combined ``kl`` indices (0..ij) surviving against bra ``ij``.

        Vectorized over the inner loop — this is what Algorithm 3's
        thread-level work list looks like after screening.
        """
        q_ij = self.pair_q[ij]
        kl = np.arange(ij + 1, dtype=np.int64)
        mask = q_ij * self.pair_q[kl] >= self.tau
        return kl[mask]

    # -- aggregate statistics (no quartet enumeration) --------------------

    def pair_survivor_counts(self, pair_costs: np.ndarray | None = None) -> np.ndarray:
        """Surviving-quartet count (or cost) per top-loop ``ij`` task.

        For every combined bra index ``ij``, counts ket pairs
        ``kl <= ij`` with ``Q_ij Q_kl >= tau``.  Computed by sorting the
        prefix of pair Q values incrementally — overall
        ``O(P log P)`` via offline sorting: survivors(ij) = number of
        elements among the first ``ij + 1`` pair Qs that are
        ``>= tau / Q_ij``, obtained from the ranks of thresholds in the
        prefix order statistics.

        Parameters
        ----------
        pair_costs:
            Optional per-``kl`` cost weights; when given, returns the
            summed cost of survivors instead of their count (used by the
            performance model's work estimates).

        Notes
        -----
        Exact counting with arbitrary prefixes requires an offline
        order-statistics pass; we use a merge-based approach: process
        pairs in combined-index order, maintaining a sorted list via
        ``numpy`` (amortized through block rebuilds).  For the library's
        dataset sizes (up to 3.3 * 10^7 pairs) the simpler
        *global-sort + correction-free approximation* is not acceptable,
        so we do the exact prefix computation in
        :func:`prefix_survivor_counts`, which this method delegates to.
        """
        return prefix_survivor_counts(self.pair_q, self.tau, pair_costs)


def prefix_survivor_counts(
    pair_q: np.ndarray, tau: float, pair_costs: np.ndarray | None = None
) -> np.ndarray:
    """Exact per-prefix survivor counts/costs.

    For each bra index ``ij`` (a position in ``pair_q``), computes
    ``sum over kl <= ij of w_kl * [Q_ij * Q_kl >= tau]`` where ``w`` is
    1 or ``pair_costs``.  This is the per-top-loop-task work of
    Algorithm 3, computed *without quartet enumeration*.

    Implemented as a vectorized divide-and-conquer dominance count
    (merge-sort style): positions are split in half; for every bra in
    the right half the qualifying kets in the left half are counted with
    one ``searchsorted`` against the left half's sorted Q values (plus a
    weight prefix sum); halves recurse.  ``O(P log^2 P)`` with NumPy-
    vectorized inner work — the 2.0 nm dataset's 10^6 pairs take ~1 s
    and the 5.0 nm dataset's 3.3 * 10^7 pairs stay tractable.
    """
    pair_q = np.asarray(pair_q, dtype=np.float64)
    P = pair_q.size
    if pair_costs is None:
        w = np.ones((P, 1))
        squeeze = True
    else:
        w = np.asarray(pair_costs, dtype=np.float64)
        squeeze = w.ndim == 1
        if squeeze:
            w = w[:, None]
        if w.shape[0] != P:
            raise ValueError(f"pair_costs first dim must be {P}; got {w.shape}")
    C = w.shape[1]
    out = np.zeros((P, C), dtype=np.float64)
    if P == 0:
        return out[:, 0] if squeeze else out
    with np.errstate(divide="ignore", over="ignore"):
        thresholds = np.where(pair_q > 0, tau / pair_q, np.inf)

    # Bottom-up merge over position blocks: at block size s, each
    # adjacent (left, right) block pair contributes the count of
    # left-side kets qualifying for right-side bras.  Over all levels
    # every ordered pair (ket position < bra position) is counted
    # exactly once; the kl == ij self term is added up front.
    out += w * (pair_q * pair_q >= tau)[:, None]

    # Pad to a power-of-two length with inert entries: -inf Q never
    # qualifies as a ket, +inf thresholds never accept kets.
    P2 = 1 << (P - 1).bit_length()
    qp = np.full(P2, -np.inf)
    qp[:P] = pair_q
    tp = np.full(P2, np.inf)
    tp[:P] = thresholds
    wp = np.zeros((P2, C))
    wp[:P] = w
    outp = np.zeros((P2, C))

    # Small levels: all block pairs at once via broadcasting, chunked to
    # bound the (nblocks, s, s) comparison tensor.
    _SMALL = 32
    size = 1
    while size < P2 and size <= _SMALL:
        nb = P2 // (2 * size)
        ql = qp.reshape(nb, 2 * size)[:, :size]
        wl = wp.reshape(nb, 2 * size, C)[:, :size, :]
        th = tp.reshape(nb, 2 * size)[:, size:]
        chunk = max(1, int(4.0e7 // (size * size + 1)))
        res = np.empty((nb, size, C))
        for s0 in range(0, nb, chunk):
            s1 = min(s0 + chunk, nb)
            qual = ql[s0:s1, :, None] >= th[s0:s1, None, :]
            res[s0:s1] = np.einsum("bkr,bkc->brc", qual, wl[s0:s1])
        outp.reshape(nb, 2 * size, C)[:, size:, :] += res
        size *= 2

    # Large levels: one sort + one batched searchsorted per block pair.
    while size < P2:
        for left in range(0, P2, 2 * size):
            mid = left + size
            right = mid + size
            order = np.argsort(qp[left:mid], kind="stable")
            qls = qp[left:mid][order]
            cumw = np.vstack(
                (np.zeros(C), np.cumsum(wp[left:mid][order], axis=0))
            )
            pos = np.searchsorted(qls, tp[mid:right], side="left")
            outp[mid:right] += cumw[-1] - cumw[pos]
        size *= 2

    out += outp[:P]
    return out[:, 0] if squeeze else out


# -- model Schwarz matrix ---------------------------------------------------


@dataclass(frozen=True)
class SchwarzModelParams:
    """Fitted parameters of the distance-decay Schwarz model.

    Attributes
    ----------
    amplitudes:
        ``log Q`` amplitude per shell-type label.
    residual_std:
        Standard deviation of the log-space fit residual (quality metric).
    """

    amplitudes: dict[str, float]
    residual_std: float


#: Default parameters, calibrated against exact 6-31G(d) Schwarz matrices
#: of small graphene patches (see ``calibrate_schwarz_model`` and
#: ``tests/test_screening_model.py``).  Values are log-amplitudes.
DEFAULT_SCHWARZ_PARAMS = SchwarzModelParams(
    amplitudes={"S": -0.417, "L": 0.371, "D": 1.719},
    residual_std=1.30,
)


def _shell_features(basis: BasisSet) -> tuple[np.ndarray, list[str], np.ndarray]:
    """Per-composite-shell (centers, type labels, diffuse exponents)."""
    comps = basis.composite_shells
    centers = np.array([c.center for c in comps])
    types = [c.stype for c in comps]
    zetas = np.array([c.min_exponent() for c in comps])
    return centers, types, zetas


def model_schwarz_matrix(
    basis: BasisSet, params: SchwarzModelParams | None = None
) -> np.ndarray:
    """Modelled Schwarz bound matrix for benchmark-scale systems.

    Memory-aware: built from per-atom distance blocks, O(nshells^2)
    output (the 5 nm dataset gives a 8,064^2 float64 matrix, ~0.5 GB —
    the single large allocation of the workload pipeline).
    """
    params = params or DEFAULT_SCHWARZ_PARAMS
    centers, types, zetas = _shell_features(basis)
    amp = np.array([params.amplitudes[t] for t in types])

    n = len(types)
    Q = np.empty((n, n))
    # Row-blocked pairwise distances keep peak temp memory bounded.
    block = max(1, int(2.0e7 // max(n, 1)))
    mu = zetas[:, None] * zetas[None, :] / (zetas[:, None] + zetas[None, :])
    for s in range(0, n, block):
        e = min(s + block, n)
        diff = centers[s:e, None, :] - centers[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff)
        Q[s:e] = np.exp(amp[s:e, None] + amp[None, :] - mu[s:e] * r2)
    return Q


def calibrate_schwarz_model(
    basis: BasisSet, exact_Q: np.ndarray
) -> SchwarzModelParams:
    """Fit the decay model's per-type amplitudes to an exact Q matrix.

    Linear least squares in log space:
    ``log Q_ij + mu_ij R_ij^2 = a_{t_i} + a_{t_j}``.
    """
    centers, types, zetas = _shell_features(basis)
    labels = sorted(set(types))
    col = {t: c for c, t in enumerate(labels)}
    n = len(types)

    rows = []
    rhs = []
    for i in range(n):
        for j in range(i + 1):
            q = exact_Q[i, j]
            if q <= 0:
                continue
            r2 = float(np.sum((centers[i] - centers[j]) ** 2))
            mu = zetas[i] * zetas[j] / (zetas[i] + zetas[j])
            row = np.zeros(len(labels))
            row[col[types[i]]] += 1.0
            row[col[types[j]]] += 1.0
            rows.append(row)
            rhs.append(np.log(q) + mu * r2)
    A = np.array(rows)
    b = np.array(rhs)
    sol, *_ = np.linalg.lstsq(A, b, rcond=None)
    resid = A @ sol - b
    return SchwarzModelParams(
        amplitudes={t: float(sol[col[t]]) for t in labels},
        residual_std=float(np.std(resid)),
    )
