"""Composite-shell quartet evaluation and the six-way Fock scatter.

:class:`QuartetEngine` is the workhorse shared by all three parallel
algorithms: it evaluates the ERI block of a composite (GAMESS) shell
quartet and scatters the six Fock contributions of the paper's
eqs. (2a)-(2f) into an accumulation matrix ``W``.

Accumulation convention
-----------------------
Each of the six element families is written in *one* orientation,
matching the paper's column-block organization:

======== ====================== =======================
family   update                 destination (row, col)
======== ====================== =======================
(i, j)   ``+2 X' D_kl``         ``(J-block, I-block)`` — the FI buffer
(i, k)   ``-1/2 X' D_jl``       ``(K-block, I-block)`` — the FI buffer
(i, l)   ``-1/2 X' D_jk``       ``(L-block, I-block)`` — the FI buffer
(j, k)   ``-1/2 X' D_il``       ``(K-block, J-block)`` — the FJ buffer
(j, l)   ``-1/2 X' D_ik``       ``(L-block, J-block)`` — the FJ buffer
(k, l)   ``+2 X' D_ij``         ``(K-block, L-block)`` — shared direct
======== ====================== =======================

with ``X' = X * fac`` (:func:`~repro.core.indexing.quartet_degeneracy_factor`).
The true two-electron matrix is recovered once at the end by
:func:`symmetrize_two_electron`: ``G = W + W^T``.  This identity holds
for diagonal families too (the derivation in the module tests), so no
diagonal correction is needed.
"""

from __future__ import annotations

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shell import Shell
from repro.core.indexing import quartet_degeneracy_factor
from repro.integrals.cache import QuartetCache
from repro.integrals.eri import ShellPair, eri_shell_quartet
from repro.obs.tracer import get_tracer


def symmetrize_two_electron(W: np.ndarray) -> np.ndarray:
    """Recover the symmetric two-electron matrix: ``G = W + W^T``."""
    return W + W.T


class QuartetEngine:
    """ERI evaluation and Fock scattering over composite shells.

    Parameters
    ----------
    basis:
        The AO basis.  Pure-shell pair data (Hermite E matrices) is
        built lazily and cached per pair, so only pairs that survive
        screening are ever prepared.
    cache:
        Optional :class:`~repro.integrals.cache.QuartetCache`.  When
        given, :meth:`composite_block` serves repeat quartets from the
        cache (semi-direct SCF): cycles after the first skip integral
        evaluation entirely for every block still resident.
    """

    def __init__(self, basis: BasisSet, cache: QuartetCache | None = None) -> None:
        self.basis = basis
        self.composites = basis.composite_shells
        self.cache = cache
        self._pure_pairs: dict[tuple[int, int], ShellPair] = {}
        # Global pure-shell position of every composite sub-shell: the
        # pair cache is keyed by *position in the basis*, so equal-but-
        # distinct Shell instances (or re-derived shell tuples) can
        # never silently miss or KeyError the way id()-keying could.
        positions: list[tuple[int, ...]] = []
        n = 0
        for comp in self.composites:
            positions.append(tuple(range(n, n + len(comp.subshells))))
            n += len(comp.subshells)
        if n != len(basis.shells):
            raise ValueError(
                "composite sub-shells do not tile basis.shells "
                f"({n} != {len(basis.shells)})"
            )
        self._subshell_positions: tuple[tuple[int, ...], ...] = tuple(positions)
        self.quartets_computed = 0
        self.quartets_from_cache = 0

    # -- ERI blocks -----------------------------------------------------

    def _pure_pair(self, ia: int, sa: Shell, ib: int, sb: Shell) -> ShellPair:
        key = (ia, ib)
        pair = self._pure_pairs.get(key)
        if pair is None:
            pair = ShellPair(sa, sb)
            self._pure_pairs[key] = pair
        return pair

    def composite_block(self, I: int, J: int, K: int, L: int) -> np.ndarray:
        """ERI block over composite shells ``(I J | K L)``.

        With a cache attached, a repeat quartet returns the stored
        (read-only) block without touching the integral kernels.

        Returns
        -------
        numpy.ndarray
            Shape ``(nfI, nfJ, nfK, nfL)``, assembled from the pure
            sub-shell quartets (an L shell contributes its S and P
            sub-blocks at the proper offsets).
        """
        if self.cache is not None:
            block = self.cache.get((I, J, K, L))
            if block is not None:
                self.quartets_from_cache += 1
                return block
        block = self._evaluate_block(I, J, K, L)
        self.quartets_computed += 1
        if self.cache is not None:
            self.cache.put((I, J, K, L), block)
        return block

    def _evaluate_block(self, I: int, J: int, K: int, L: int) -> np.ndarray:
        cI, cJ, cK, cL = (self.composites[x] for x in (I, J, K, L))
        pI, pJ, pK, pL = (self._subshell_positions[x] for x in (I, J, K, L))
        out = np.zeros((cI.nfunc, cJ.nfunc, cK.nfunc, cL.nfunc))
        with get_tracer().span("eri/quartet_batch"):
            oi = 0
            for ia, sa in zip(pI, cI.subshells):
                oj = 0
                for jb, sb in zip(pJ, cJ.subshells):
                    bra = self._pure_pair(ia, sa, jb, sb)
                    ok = 0
                    for kc, sc in zip(pK, cK.subshells):
                        ol = 0
                        for ld, sd in zip(pL, cL.subshells):
                            ket = self._pure_pair(kc, sc, ld, sd)
                            out[
                                oi : oi + sa.nfunc,
                                oj : oj + sb.nfunc,
                                ok : ok + sc.nfunc,
                                ol : ol + sd.nfunc,
                            ] = eri_shell_quartet(bra, ket)
                            ol += sd.nfunc
                        ok += sc.nfunc
                    oj += sb.nfunc
                oi += sa.nfunc
        return out

    # -- Fock scattering ---------------------------------------------------

    def block_slices(
        self, I: int, J: int, K: int, L: int
    ) -> tuple[slice, slice, slice, slice]:
        """Basis-function slices of the four composite blocks."""
        out = []
        for x in (I, J, K, L):
            cs = self.composites[x]
            out.append(slice(cs.bf_offset, cs.bf_offset + cs.nfunc))
        return tuple(out)

    def scatter_general(
        self,
        X: np.ndarray,
        d_coulomb: np.ndarray,
        d_exchange: np.ndarray,
        jw: float,
        kw: float,
        I: int,
        J: int,
        K: int,
        L: int,
    ) -> dict[str, tuple[tuple[slice, slice], np.ndarray]]:
        """Six-way scatter with independent Coulomb/exchange channels.

        The Coulomb families (``(i,j)`` and ``(k,l)``) contract the
        quartet against ``d_coulomb`` with weight ``jw``; the four
        exchange families contract against ``d_exchange`` with weight
        ``kw``.  Closed-shell RHF uses ``(D, D, +2, -1/2)``; spin-
        unrestricted Fock matrices use ``(D_total, D_sigma, +2, -1)``
        per spin channel.
        """
        si, sj, sk, sl = self.block_slices(I, J, K, L)
        fac = quartet_degeneracy_factor(I, J, K, L)
        Xs = X * fac

        dj_kl = d_coulomb[sk, sl]
        dj_ij = d_coulomb[si, sj]
        dk_jl = d_exchange[sj, sl]
        dk_jk = d_exchange[sj, sk]
        dk_il = d_exchange[si, sl]
        dk_ik = d_exchange[si, sk]

        return {
            "ji": ((sj, si), jw * np.einsum("ijkl,kl->ji", Xs, dj_kl)),
            "ki": ((sk, si), kw * np.einsum("ijkl,jl->ki", Xs, dk_jl)),
            "li": ((sl, si), kw * np.einsum("ijkl,jk->li", Xs, dk_jk)),
            "kj": ((sk, sj), kw * np.einsum("ijkl,il->kj", Xs, dk_il)),
            "lj": ((sl, sj), kw * np.einsum("ijkl,ik->lj", Xs, dk_ik)),
            "kl": ((sk, sl), jw * np.einsum("ijkl,ij->kl", Xs, dj_ij)),
        }

    def scatter_contributions(
        self,
        X: np.ndarray,
        D: np.ndarray,
        I: int,
        J: int,
        K: int,
        L: int,
    ) -> dict[str, tuple[tuple[slice, slice], np.ndarray]]:
        """Compute the six scaled closed-shell Fock contributions.

        Returns a dict keyed by destination family —
        ``"ji" / "ki" / "li"`` (the FI buffer), ``"kj" / "lj"`` (the FJ
        buffer), ``"kl"`` (shared direct) — each mapping to
        ``((row_slice, col_slice), value_block)``.  Callers (the three
        algorithms) decide *where* each contribution is accumulated;
        the arithmetic is identical across algorithms by construction.
        """
        return self.scatter_general(X, D, D, 2.0, -0.5, I, J, K, L)

    def apply_quartet(
        self,
        W: np.ndarray,
        D: np.ndarray,
        I: int,
        J: int,
        K: int,
        L: int,
    ) -> None:
        """Evaluate one quartet and accumulate all six updates into ``W``.

        This is the single-accumulator path used by Algorithms 1 and 2
        (replicated/private Fock); Algorithm 3 routes the same
        contributions through its FI/FJ buffers instead.
        """
        X = self.composite_block(I, J, K, L)
        for (dest, val) in self.scatter_contributions(X, D, I, J, K, L).values():
            W[dest] += val
