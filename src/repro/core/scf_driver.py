"""Parallel SCF driver: run RHF with any of the three Fock algorithms.

A thin composition layer: builds the one-electron matrices once,
constructs the requested parallel Fock builder, and delegates the SCF
iteration to :class:`repro.scf.rhf.RHF`.  Collects the per-iteration
Fock-build statistics that the memory/performance analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.core.fock_base import FockBuildStats, ParallelFockBuilderBase
from repro.core.fock_mpi import MPIOnlyFockBuilder
from repro.core.fock_private import PrivateFockBuilder
from repro.core.fock_shared import SharedFockBuilder
from repro.core.screening import Screening
from repro.integrals.onee import kinetic_matrix, nuclear_matrix
from repro.obs.metrics import get_metrics
from repro.obs.telemetry import get_telemetry
from repro.obs.tracer import get_tracer
from repro.parallel.backend import ExecutionBackend, make_backend
from repro.resilience.errors import SCFConvergenceError
from repro.scf.convergence import ConvergenceCriteria
from repro.scf.incremental import IncrementalFockBuilder
from repro.scf.rhf import RHF, SCFResult

AlgorithmName = Literal["mpi-only", "private-fock", "shared-fock"]

_BUILDERS: dict[str, type[ParallelFockBuilderBase]] = {
    "mpi-only": MPIOnlyFockBuilder,
    "private-fock": PrivateFockBuilder,
    "shared-fock": SharedFockBuilder,
}


def make_fock_builder(
    algorithm: AlgorithmName,
    basis: BasisSet,
    hcore: np.ndarray,
    **kwargs,
) -> ParallelFockBuilderBase:
    """Instantiate one of the three paper algorithms by name."""
    try:
        cls = _BUILDERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    return cls(basis, hcore, **kwargs)


@dataclass
class ParallelSCFResult:
    """SCF result bundled with the parallel execution statistics."""

    scf: SCFResult
    fock_stats: list[FockBuildStats]

    @property
    def energy(self) -> float:
        """Total RHF energy in Hartree."""
        return self.scf.energy

    @property
    def converged(self) -> bool:
        return self.scf.converged

    @property
    def total_quartets_computed(self) -> int:
        """Quartets evaluated across all SCF iterations."""
        return sum(s.quartets_computed for s in self.fock_stats)

    @property
    def rank_imbalance(self) -> float:
        """Worst per-iteration MPI load imbalance (max/mean, >= 1.0)."""
        return max((s.rank_imbalance for s in self.fock_stats), default=1.0)

    @property
    def thread_imbalance(self) -> float:
        """Worst per-iteration OpenMP load imbalance (max/mean, >= 1.0)."""
        return max((s.thread_imbalance for s in self.fock_stats), default=1.0)


class ParallelSCF:
    """RHF driven by a simulated-parallel Fock construction.

    Parameters
    ----------
    basis:
        The AO basis.
    algorithm:
        ``"mpi-only"`` / ``"private-fock"`` / ``"shared-fock"``.
    nranks, nthreads:
        Simulated geometry (the MPI-only algorithm requires
        ``nthreads == 1``).  Under the process backend, ``nranks`` is
        the number of real worker processes.
    criteria:
        SCF convergence settings.
    backend:
        Execution backend: ``"sim"`` (default, the deterministic
        cooperative runtime), ``"process"`` (real OS worker processes,
        shared-memory matrices), or a ready
        :class:`~repro.parallel.backend.ExecutionBackend` instance.
    backend_options:
        Extra keyword arguments for
        :func:`~repro.parallel.backend.make_backend`
        (``schedule_seed``, ``obs_dir``).
    incremental:
        Wrap the Fock construction in
        :class:`~repro.scf.incremental.IncrementalFockBuilder`: after
        the first cycle only the density *change* is built, with
        density-aware screening.
    rebuild_every:
        Full-rebuild period of the incremental wrapper.
    **builder_kwargs:
        Forwarded to the Fock builder (``tau``, ``schedule``,
        ``dlb_policy``, ``thread_schedule``, ``track_races``, ...).
    """

    def __init__(
        self,
        basis: BasisSet,
        algorithm: AlgorithmName = "shared-fock",
        *,
        nranks: int = 1,
        nthreads: int = 1,
        criteria: ConvergenceCriteria | None = None,
        backend: "str | ExecutionBackend" = "sim",
        backend_options: dict | None = None,
        incremental: bool = False,
        rebuild_every: int = 10,
        **builder_kwargs,
    ) -> None:
        self.basis = basis
        self.algorithm = algorithm
        hcore = kinetic_matrix(basis) + nuclear_matrix(basis)
        self._fock_stats: list[FockBuildStats] = []

        self.backend = make_backend(
            backend, workers=nranks, **(backend_options or {})
        )
        inner = make_fock_builder(
            algorithm, basis, hcore,
            nranks=nranks, nthreads=nthreads, **builder_kwargs,
        )
        self.builder = self.backend.wrap_builder(inner)
        if incremental:
            # Wrap *outside* the backend so the delta-density pass and
            # the tau retune reach sim and process builds identically.
            self.builder = IncrementalFockBuilder(
                self.builder, rebuild_every=rebuild_every
            )
        builder = self.builder

        def recording_builder(D: np.ndarray):
            with get_tracer().span(
                "scf/fock_build", iteration=len(self._fock_stats) + 1
            ):
                F, stats = builder(D)
            self._fock_stats.append(stats)
            channel = get_telemetry()
            if channel is not None:
                channel.publish(
                    "fock.build",
                    build=len(self._fock_stats),
                    quartets=stats.quartets_computed,
                    screened=stats.quartets_screened,
                    rank_imbalance=stats.rank_imbalance,
                )
                registry = get_metrics()
                if registry is not None:
                    # Periodic registry snapshot per Fock build: the
                    # monitor's counter rates are derived from these.
                    channel.publish(
                        "metrics.snapshot",
                        build=len(self._fock_stats),
                        counters={
                            k: v
                            for k, v in registry.snapshot().items()
                            if isinstance(v, (int, float))
                        },
                    )
            return F, {"fock": stats}

        self.rhf = RHF(basis, recording_builder, criteria=criteria)

    def shutdown(self) -> None:
        """Release backend resources (worker processes, shared memory)."""
        self.backend.shutdown()

    def __enter__(self) -> "ParallelSCF":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.shutdown()
        return False

    def run(self, **kwargs) -> ParallelSCFResult:
        """Run the SCF; returns energy plus per-iteration Fock stats.

        Keyword arguments (``restart``, ``checkpoint``, ``recovery``,
        ``strict``, ...) are forwarded to :meth:`repro.scf.rhf.RHF.run`.
        A propagating
        :class:`~repro.resilience.errors.SCFConvergenceError` has its
        partial result re-wrapped as a :class:`ParallelSCFResult` so
        callers keep the per-build statistics too.
        """
        self._fock_stats.clear()
        channel = get_telemetry()
        if channel is not None:
            channel.publish(
                "run.start",
                run_kind="scf",
                algorithm=self.algorithm,
                nranks=self.builder.nranks,
                nthreads=self.builder.nthreads,
                backend=self.backend.name,
            )
        status = "failed"
        result = None
        try:
            with get_tracer().span(
                "scf/run",
                algorithm=self.algorithm,
                nranks=self.builder.nranks,
                nthreads=self.builder.nthreads,
            ):
                try:
                    result = self.rhf.run(**kwargs)
                except SCFConvergenceError as exc:
                    if exc.result is not None:
                        exc.result = ParallelSCFResult(
                            scf=exc.result, fock_stats=list(self._fock_stats)
                        )
                    raise
            status = "done"
        finally:
            if channel is not None:
                channel.publish(
                    "run.end",
                    status=status,
                    converged=(
                        result.converged if result is not None else False
                    ),
                    energy=result.energy if result is not None else None,
                    builds=len(self._fock_stats),
                )
        return ParallelSCFResult(scf=result, fock_stats=list(self._fock_stats))
