"""Algorithm 2 — hybrid MPI/OpenMP, shared density, *private* Fock.

One MPI rank spans many OpenMP threads.  All read-only matrices
(density, overlap, core Hamiltonian) are shared by the threads; each
thread keeps a private Fock replica, combined at the end of the
parallel region by an OpenMP ``reduction(+ : Fock)``.

Work distribution follows the paper exactly: the master thread draws a
new ``i`` shell index from the DDI balancer (one barrier per draw), and
the ``(j, k)`` loops are collapsed (``collapse(2)``) and distributed
over threads with a dynamic schedule — the collapsed space of
``(i + 1) * (i + 1)`` iterations per draw is what restores thread-level
balance.  The ``l`` loop is unchanged from Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.fock_base import FockBuildStats, ParallelFockBuilderBase
from repro.core.indexing import lmax_for
from repro.obs.tracer import get_tracer
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.dlb import DynamicLoadBalancer
from repro.parallel.threads import ThreadTeam


class PrivateFockBuilder(ParallelFockBuilderBase):
    """The paper's Algorithm 2 ("shared density, private Fock")."""

    algorithm_name = "private-fock"

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(density)
        tracer = get_tracer()
        world = SimWorld(self.nranks)
        # MPI-level DLB over the *i* index only — the coarse granularity
        # the paper identifies as this algorithm's scaling limit.
        dlb = DynamicLoadBalancer(
            self.nshells, self.nranks, policy=self.dlb_policy,
            costs=self._dlb_costs(),
        )
        team = ThreadTeam(self.nthreads)
        results: list[np.ndarray] = []
        thread_counts = np.zeros(self.nthreads, dtype=np.int64)

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            # One private Fock replica per thread, as in
            # ``reduction(+ : Fock)``.
            W_threads = team.private_buffers((self.nbf, self.nbf))
            done = 0
            for i in self._grants(dlb, rank):
                comm.barrier()  # master draw + implicit barrier
                # collapse(2) over (j, k), both 0..i.
                jk_tasks = [(j, k) for j in range(i + 1) for k in range(i + 1)]
                costs = self._jk_costs(i, jk_tasks)
                shares = team.partition(
                    len(jk_tasks),
                    schedule=self.thread_schedule,
                    chunk=self.thread_chunk,
                    costs=costs,
                )
                for t, share in enumerate(shares):
                    Wt = W_threads[t]
                    with tracer.span(
                        "fock/jk", rank=rank, thread=t, i=i, tasks=len(share)
                    ):
                        for idx in share:
                            j, k = jk_tasks[idx]
                            for l in range(lmax_for(i, j, k) + 1):
                                if not self.screening.survives(i, j, k, l):
                                    stats.quartets_screened += 1
                                    continue
                                self.engine.apply_quartet(
                                    Wt, density, i, j, k, l
                                )
                                done += 1
                                thread_counts[t] += 1
            # OpenMP reduction over thread-private Focks.
            with tracer.span("fock/thread_reduce", rank=rank):
                W = np.zeros((self.nbf, self.nbf))
                for Wt in W_threads:
                    W += Wt
            stats.per_rank_quartets.append(done)
            with tracer.span("fock/gsumf", rank=rank):
                self._resilient_gsumf(comm, W)
            results.append(W)

        with tracer.span(
            "fock/build", algorithm=self.algorithm_name,
            nranks=self.nranks, nthreads=self.nthreads,
        ):
            world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        stats.per_thread_quartets = thread_counts.tolist()
        return self._finish(results[0], stats, world, [])

    def _dlb_costs(self) -> np.ndarray | None:
        if self.dlb_policy != "cost_greedy":
            return None
        # Cost of MPI task i ~ number of (j, k, l) iterations under it.
        return np.array(
            [float((i + 1) * (i + 1)) for i in range(self.nshells)]
        )

    def _jk_costs(self, i: int, jk_tasks: list[tuple[int, int]]) -> np.ndarray | None:
        if self.thread_schedule != "dynamic":
            return None
        # Surviving-l counts would be exact; the l-loop extent is a
        # cheap, monotone proxy adequate for grant ordering.
        return np.array(
            [float(lmax_for(i, j, k) + 1) for (j, k) in jk_tasks]
        )
