"""Algorithm 2 — hybrid MPI/OpenMP, shared density, *private* Fock.

One MPI rank spans many OpenMP threads.  All read-only matrices
(density, overlap, core Hamiltonian) are shared by the threads; each
thread keeps a private Fock replica, combined at the end of the
parallel region by an OpenMP ``reduction(+ : Fock)``.

Work distribution follows the paper exactly: the master thread draws a
new ``i`` shell index from the DDI balancer (one barrier per draw), and
the ``(j, k)`` loops are collapsed (``collapse(2)``) and distributed
over threads with a dynamic schedule — the collapsed space of
``(i + 1) * (i + 1)`` iterations per draw is what restores thread-level
balance.  The ``l`` loop is unchanged from Algorithm 1.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.fock_base import (
    FockBuildStats,
    ParallelFockBuilderBase,
    RankBuildResult,
)
from repro.core.indexing import lmax_for
from repro.obs.tracer import get_tracer
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.threads import ThreadTeam


class PrivateFockBuilder(ParallelFockBuilderBase):
    """The paper's Algorithm 2 ("shared density, private Fock")."""

    algorithm_name = "private-fock"

    def dlb_ntasks(self) -> int:
        # MPI-level DLB over the *i* index only — the coarse granularity
        # the paper identifies as this algorithm's scaling limit.
        return self.nshells

    def rank_program(
        self,
        rank: int,
        grants: Iterator[int],
        density: np.ndarray,
        W: np.ndarray,
        *,
        barrier: Callable[[], None] | None = None,
    ) -> RankBuildResult:
        """One rank's share: collapse(2) thread loops, private Focks."""
        rr = RankBuildResult(rank=rank)
        tracer = get_tracer()
        team = ThreadTeam(self.nthreads)
        thread_counts = np.zeros(self.nthreads, dtype=np.int64)
        # One private Fock replica per thread, as in
        # ``reduction(+ : Fock)``.
        W_threads = team.private_buffers((self.nbf, self.nbf))
        done = 0
        for i in grants:
            if barrier is not None:
                barrier()  # master draw + implicit barrier
            # collapse(2) over (j, k), both 0..i.
            jk_tasks = [(j, k) for j in range(i + 1) for k in range(i + 1)]
            costs = self._jk_costs(i, jk_tasks)
            shares = team.partition(
                len(jk_tasks),
                schedule=self.thread_schedule,
                chunk=self.thread_chunk,
                costs=costs,
            )
            for t, share in enumerate(shares):
                Wt = W_threads[t]
                with tracer.span(
                    "fock/jk", rank=rank, thread=t, i=i, tasks=len(share)
                ):
                    for idx in share:
                        j, k = jk_tasks[idx]
                        for l in range(lmax_for(i, j, k) + 1):
                            if not self.screening.survives(i, j, k, l):
                                rr.quartets_screened += 1
                                continue
                            self.engine.apply_quartet(
                                Wt, density, i, j, k, l
                            )
                            done += 1
                            thread_counts[t] += 1
        # OpenMP reduction over thread-private Focks.
        with tracer.span("fock/thread_reduce", rank=rank):
            for Wt in W_threads:
                W += Wt
        rr.quartets_done = done
        rr.per_thread_quartets = thread_counts.tolist()
        return rr

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(density)
        tracer = get_tracer()
        world = SimWorld(self.nranks)
        dlb = self.make_scheduler()
        results: list[np.ndarray] = []

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            W = np.zeros((self.nbf, self.nbf))
            rr = self.rank_program(
                rank, self._grants(dlb, rank), density, W,
                barrier=comm.barrier,
            )
            self._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
            with tracer.span("fock/gsumf", rank=rank):
                self._resilient_gsumf(comm, W)
            results.append(W)

        with tracer.span(
            "fock/build", algorithm=self.algorithm_name,
            nranks=self.nranks, nthreads=self.nthreads,
        ):
            world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        return self._finish(results[0], stats, world, [])

    def dlb_costs(self) -> np.ndarray | None:
        if self.dlb_policy != "cost_greedy":
            return None
        return self.work_estimates()

    def work_estimates(self) -> np.ndarray:
        # Cost of MPI task i ~ number of (j, k, l) iterations under it.
        return np.array(
            [float((i + 1) * (i + 1)) for i in range(self.nshells)]
        )

    def _jk_costs(self, i: int, jk_tasks: list[tuple[int, int]]) -> np.ndarray | None:
        if self.thread_schedule != "dynamic":
            return None
        # Surviving-l counts would be exact; the l-loop extent is a
        # cheap, monotone proxy adequate for grant ordering.
        return np.array(
            [float(lmax_for(i, j, k) + 1) for (j, k) in jk_tasks]
        )
