"""Algorithm 1 — the stock GAMESS MPI-only Fock build.

Every rank replicates the density and Fock matrices.  The DDI dynamic
load balancer hands out combined ``(i, j)`` shell-pair indices; for each
granted bra pair the rank runs the full ``(k, l)`` inner loops with
per-quartet Schwarz screening and accumulates into its private Fock
replica, which is summed over ranks at the end (``ddi_gsumf``).

The characteristic weaknesses the paper identifies are visible directly
in the returned statistics: the iteration space is only
``nshells * (nshells + 1) / 2`` tasks of widely varying cost (load
imbalance at scale), and the per-rank memory is the full set of
replicated matrices (see :mod:`repro.core.memory_model`).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.fock_base import (
    FockBuildStats,
    ParallelFockBuilderBase,
    RankBuildResult,
)
from repro.core.indexing import decode_pair, lmax_for, npairs
from repro.obs.tracer import get_tracer
from repro.parallel.comm import SimComm, SimWorld


class MPIOnlyFockBuilder(ParallelFockBuilderBase):
    """The paper's Algorithm 1 (``nthreads`` is fixed at 1 per rank)."""

    algorithm_name = "mpi-only"

    def __init__(self, basis, hcore, **kwargs) -> None:
        kwargs.setdefault("nthreads", 1)
        if kwargs["nthreads"] != 1:
            raise ValueError("the MPI-only algorithm is single-threaded per rank")
        super().__init__(basis, hcore, **kwargs)

    def dlb_ntasks(self) -> int:
        return npairs(self.nshells)

    def dlb_costs(self) -> np.ndarray | None:
        if self.dlb_policy != "cost_greedy":
            return None
        return self.work_estimates()

    def work_estimates(self) -> np.ndarray:
        """Schwarz-screened surviving-quartet counts per bra pair."""
        return self.screening.pair_survivor_counts()

    def rank_program(
        self,
        rank: int,
        grants: Iterator[int],
        density: np.ndarray,
        W: np.ndarray,
        *,
        barrier: Callable[[], None] | None = None,
    ) -> RankBuildResult:
        """One rank's share: the stock replicated-Fock quartet loops."""
        rr = RankBuildResult(rank=rank)
        # Stock loop: i over shells, j <= i, with the DLB check on
        # the combined (i, j) index (ddi_dlbnext).
        with get_tracer().span("fock/quartets", rank=rank):
            for ij in grants:
                i, j = decode_pair(ij)
                for k in range(i + 1):
                    for l in range(lmax_for(i, j, k) + 1):
                        if not self.screening.survives(i, j, k, l):
                            rr.quartets_screened += 1
                            continue
                        self.engine.apply_quartet(W, density, i, j, k, l)
                        rr.quartets_done += 1
        return rr

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(density)
        tracer = get_tracer()
        world = SimWorld(self.nranks)
        dlb = self.make_scheduler()
        results: list[np.ndarray] = []

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            W = np.zeros((self.nbf, self.nbf))
            rr = self.rank_program(rank, self._grants(dlb, rank), density, W)
            self._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
            with tracer.span("fock/gsumf", rank=rank):
                self._resilient_gsumf(comm, W)
            results.append(W)

        with tracer.span(
            "fock/build", algorithm=self.algorithm_name, nranks=self.nranks
        ):
            world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        return self._finish(results[0], stats, world, [])
