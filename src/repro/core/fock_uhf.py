"""Hybrid MPI/OpenMP *unrestricted* Fock construction.

Applies the paper's Algorithm-2 structure (shared read-only densities,
thread-private Fock replicas, MPI DLB over ``i``, OpenMP ``collapse(2)``
over ``(j, k)``) to the UHF case: each thread keeps private
:math:`W^\\alpha / W^\\beta` accumulators, both fed from a *single* ERI
sweep via the generalized six-way scatter with per-spin exchange
channels.  This demonstrates the paper's closing claim that the hybrid
scheme transfers directly to UHF (and, by the same token, GVB/DFT/CPHF).
"""

from __future__ import annotations

import numpy as np

from repro.core.fock_base import FockBuildStats, ParallelFockBuilderBase
from repro.core.indexing import lmax_for
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.dlb import DynamicLoadBalancer
from repro.parallel.threads import ThreadTeam


class UHFPrivateFockBuilder(ParallelFockBuilderBase):
    """Private-Fock (Algorithm 2) construction of the two spin Focks.

    Satisfies the UHF builder protocol:
    ``builder(d_alpha, d_beta) -> (F_alpha, F_beta, stats)``.
    """

    algorithm_name = "uhf-private-fock"

    def __call__(
        self, d_alpha: np.ndarray, d_beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(d_alpha, "alpha density")
        self._check_density(d_beta, "beta density")
        world = SimWorld(self.nranks)
        dlb = DynamicLoadBalancer(
            self.nshells, self.nranks, policy=self.dlb_policy
        )
        team = ThreadTeam(self.nthreads)
        d_total = d_alpha + d_beta
        results: list[tuple[np.ndarray, np.ndarray]] = []

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            wa_threads = team.private_buffers((self.nbf, self.nbf))
            wb_threads = team.private_buffers((self.nbf, self.nbf))
            done = 0
            for i in self._grants(dlb, rank):
                comm.barrier()
                jk_tasks = [(j, k) for j in range(i + 1) for k in range(i + 1)]
                shares = team.partition(
                    len(jk_tasks),
                    schedule=self.thread_schedule,
                    chunk=self.thread_chunk,
                )
                for t, share in enumerate(shares):
                    wa, wb = wa_threads[t], wb_threads[t]
                    for idx in share:
                        j, k = jk_tasks[idx]
                        for l in range(lmax_for(i, j, k) + 1):
                            if not self.screening.survives(i, j, k, l):
                                stats.quartets_screened += 1
                                continue
                            X = self.engine.composite_block(i, j, k, l)
                            # One ERI evaluation feeds both spin Focks.
                            for (dest, val) in self.engine.scatter_general(
                                X, d_total, d_alpha, 2.0, -1.0, i, j, k, l
                            ).values():
                                wa[dest] += val
                            for (dest, val) in self.engine.scatter_general(
                                X, d_total, d_beta, 2.0, -1.0, i, j, k, l
                            ).values():
                                wb[dest] += val
                            done += 1
            wa = np.zeros((self.nbf, self.nbf))
            wb = np.zeros((self.nbf, self.nbf))
            for t in range(self.nthreads):
                wa += wa_threads[t]
                wb += wb_threads[t]
            stats.per_rank_quartets.append(done)
            self._resilient_gsumf(comm, wa)
            self._resilient_gsumf(comm, wb)
            results.append((wa, wb))

        world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        stats.reduce_bytes = world.stats.reduce_bytes
        self._capture_cache_stats(stats)
        wa, wb = results[0]
        fa = self.hcore + wa + wa.T
        fb = self.hcore + wb + wb.T
        return fa, fb, stats
