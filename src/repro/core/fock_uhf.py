"""Hybrid MPI/OpenMP *unrestricted* Fock construction.

Applies the paper's Algorithm-2 structure (shared read-only densities,
thread-private Fock replicas, MPI DLB over ``i``, OpenMP ``collapse(2)``
over ``(j, k)``) to the UHF case: each thread keeps private
:math:`W^\\alpha / W^\\beta` accumulators, both fed from a *single* ERI
sweep via the generalized six-way scatter with per-spin exchange
channels.  This demonstrates the paper's closing claim that the hybrid
scheme transfers directly to UHF (and, by the same token, GVB/DFT/CPHF).

The builder follows the same backend-facing rank-program protocol as
the RHF algorithms — the two spin channels are stacked into one
``(2, nbf, nbf)`` accumulator/density pair so both the deterministic
sim runtime and the real-process backend can execute it unchanged.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.fock_base import (
    FockBuildStats,
    ParallelFockBuilderBase,
    RankBuildResult,
)
from repro.core.indexing import lmax_for
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.threads import ThreadTeam


class UHFPrivateFockBuilder(ParallelFockBuilderBase):
    """Private-Fock (Algorithm 2) construction of the two spin Focks.

    Satisfies the UHF builder protocol:
    ``builder(d_alpha, d_beta) -> (F_alpha, F_beta, stats)``.
    """

    algorithm_name = "uhf-private-fock"

    @property
    def accumulator_shape(self) -> tuple[int, ...]:
        # Stacked spin channels: W[0] = alpha, W[1] = beta.
        return (2, self.nbf, self.nbf)

    def dlb_ntasks(self) -> int:
        return self.nshells

    def dlb_costs(self) -> np.ndarray | None:
        if self.dlb_policy != "cost_greedy":
            return None
        return self.work_estimates()

    def work_estimates(self) -> np.ndarray:
        # Cost of MPI task i ~ number of (j, k) iterations under it.
        return np.array(
            [float((i + 1) * (i + 1)) for i in range(self.nshells)]
        )

    def rank_program(
        self,
        rank: int,
        grants: Iterator[int],
        density: np.ndarray,
        W: np.ndarray,
        *,
        barrier: Callable[[], None] | None = None,
    ) -> RankBuildResult:
        """One rank's share over the stacked ``(alpha, beta)`` densities."""
        rr = RankBuildResult(rank=rank)
        d_alpha, d_beta = density[0], density[1]
        d_total = d_alpha + d_beta
        team = ThreadTeam(self.nthreads)
        thread_counts = np.zeros(self.nthreads, dtype=np.int64)
        wa_threads = team.private_buffers((self.nbf, self.nbf))
        wb_threads = team.private_buffers((self.nbf, self.nbf))
        done = 0
        for i in grants:
            if barrier is not None:
                barrier()
            jk_tasks = [(j, k) for j in range(i + 1) for k in range(i + 1)]
            shares = team.partition(
                len(jk_tasks),
                schedule=self.thread_schedule,
                chunk=self.thread_chunk,
            )
            for t, share in enumerate(shares):
                wa, wb = wa_threads[t], wb_threads[t]
                for idx in share:
                    j, k = jk_tasks[idx]
                    for l in range(lmax_for(i, j, k) + 1):
                        if not self.screening.survives(i, j, k, l):
                            rr.quartets_screened += 1
                            continue
                        X = self.engine.composite_block(i, j, k, l)
                        # One ERI evaluation feeds both spin Focks.
                        for (dest, val) in self.engine.scatter_general(
                            X, d_total, d_alpha, 2.0, -1.0, i, j, k, l
                        ).values():
                            wa[dest] += val
                        for (dest, val) in self.engine.scatter_general(
                            X, d_total, d_beta, 2.0, -1.0, i, j, k, l
                        ).values():
                            wb[dest] += val
                        done += 1
                        thread_counts[t] += 1
        for t in range(self.nthreads):
            W[0] += wa_threads[t]
            W[1] += wb_threads[t]
        rr.quartets_done = done
        rr.per_thread_quartets = thread_counts.tolist()
        return rr

    def assemble(self, W: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Spin Fock matrices from the stacked reduced accumulator."""
        fa = self.hcore + W[0] + W[0].T
        fb = self.hcore + W[1] + W[1].T
        return fa, fb

    def __call__(
        self, d_alpha: np.ndarray, d_beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        self._check_density(d_alpha, "alpha density")
        self._check_density(d_beta, "beta density")
        world = SimWorld(self.nranks)
        dlb = self.make_scheduler()
        density = np.stack([d_alpha, d_beta])
        results: list[np.ndarray] = []

        def rank_main(comm: SimComm) -> None:
            rank = comm.rank
            W = np.zeros(self.accumulator_shape)
            rr = self.rank_program(
                rank, self._grants(dlb, rank), density, W,
                barrier=comm.barrier,
            )
            self._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
            self._resilient_gsumf(comm, W)
            results.append(W)

        world.execute(rank_main)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        stats.reduce_bytes = world.stats.reduce_bytes
        self._capture_cache_stats(stats)
        self._record_global(stats)
        fa, fb = self.assemble(results[0])
        return fa, fb, stats


class UHFBuilderAdapter:
    """Adapt a stacked-density (process-backend) builder to UHF's protocol.

    The process backend wraps builders behind the single-argument
    ``builder(density) -> (fock, stats)`` interface; for UHF the
    density is the stacked ``(2, nbf, nbf)`` spin pair and ``fock`` is
    the ``(F_alpha, F_beta)`` tuple from
    :meth:`UHFPrivateFockBuilder.assemble`.  This shim restores the
    two-argument protocol :class:`repro.scf.uhf.UHF` drives.
    """

    def __init__(self, wrapped) -> None:
        self.wrapped = wrapped

    def __getattr__(self, name: str):
        return getattr(self.wrapped, name)

    def __call__(
        self, d_alpha: np.ndarray, d_beta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, FockBuildStats]:
        (fa, fb), stats = self.wrapped(np.stack([d_alpha, d_beta]))
        return fa, fb, stats
