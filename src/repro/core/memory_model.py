"""Memory-footprint model of the three HF algorithms (paper eqs. 3a-3c).

The paper's asymptotic per-node footprints, in matrix words:

.. math::

   M_{MPI}  &= \\tfrac{5}{2} N^2 \\cdot N_{MPI/node} \\\\
   M_{PrF}  &= (2 + N_{threads}) N^2 \\cdot N_{MPI/node} \\\\
   M_{ShF}  &= \\tfrac{7}{2} N^2 \\cdot N_{MPI/node}

This module implements those equations *and* the explicit structure
inventory behind them (which matrices are replicated per rank, per
thread, or shared), the small non-asymptotic terms (the FI/FJ thread
buffers of Figure 1), the legacy-DDI data-server doubling that affects
the stock MPI code, and the derived quantities the benchmarks need:
Table 2 footprints, footprint-limited rank counts (the reason the
MPI-only code cannot use more than 128 hardware threads on one node in
Figure 4), and the ~50x / ~200x reduction headlines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.constants import GB, WORD_BYTES


class AlgorithmKind(str, enum.Enum):
    """The three HF parallelizations benchmarked in the paper."""

    MPI_ONLY = "mpi-only"
    PRIVATE_FOCK = "private-fock"
    SHARED_FOCK = "shared-fock"


@dataclass(frozen=True)
class Structure:
    """One named data structure in the footprint inventory.

    ``scope`` is ``"rank"`` (replicated per MPI rank), ``"thread"``
    (replicated per OpenMP thread), or ``"node"`` (shared per node).
    ``words`` is its size in 8-byte words.
    """

    name: str
    words: float
    scope: str


@dataclass(frozen=True)
class NodeConfig:
    """Process/thread geometry on one node."""

    mpi_per_node: int
    threads_per_rank: int = 1

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads the configuration occupies."""
        return self.mpi_per_node * self.threads_per_rank


class MemoryModel:
    """Footprint model for a given problem size.

    Parameters
    ----------
    nbf:
        Number of basis functions ``N``.
    nshells:
        Composite shell count (sizes the FI/FJ buffers).
    max_shell_width:
        Widest shell block (the paper's ``shellSize``; 6 for 6-31G(d)
        with Cartesian d).
    legacy_ddi:
        When true, the stock MPI code pays the pre-MPI-3 DDI data-server
        duplication: one data-server process per compute rank with the
        same replicated structures (the paper's section 6.2; the runs in
        the paper used the MPI-3 DDI, so the default is off).
    """

    def __init__(
        self,
        nbf: int,
        nshells: int = 0,
        max_shell_width: int = 6,
        *,
        legacy_ddi: bool = False,
    ) -> None:
        self.nbf = int(nbf)
        self.nshells = int(nshells)
        self.max_shell_width = int(max_shell_width)
        self.legacy_ddi = legacy_ddi

    # -- structure inventories -------------------------------------------

    def inventory(
        self, kind: AlgorithmKind, nthreads: int = 1
    ) -> list[Structure]:
        """The named-structure inventory behind eqs. (3a)-(3c).

        Symmetric matrices (density, Fock, core Hamiltonian, overlap)
        are stored triangular (N^2/2 words) as GAMESS does; the MO
        coefficient matrix is square.  The inventories sum exactly to
        the paper's asymptotic coefficients: 5/2 (MPI-only),
        2 + N_threads (private Fock), 7/2 (shared Fock).
        """
        n2 = float(self.nbf) ** 2
        tri = n2 / 2.0
        kind = AlgorithmKind(kind)

        if kind is AlgorithmKind.MPI_ONLY:
            return [
                Structure("density", tri, "rank"),
                Structure("fock", tri, "rank"),
                Structure("core-hamiltonian", tri, "rank"),
                Structure("mo-coefficients", n2, "rank"),
            ]
        if kind is AlgorithmKind.PRIVATE_FOCK:
            return [
                Structure("density (shared)", tri, "rank"),
                Structure("core-hamiltonian (shared)", tri, "rank"),
                Structure("mo-coefficients (shared)", n2, "rank"),
                Structure("fock (per thread)", n2, "thread"),
            ]
        return [
            Structure("density (shared)", tri, "rank"),
            Structure("core-hamiltonian (shared)", tri, "rank"),
            Structure("overlap (shared)", tri, "rank"),
            Structure("mo-coefficients (shared)", n2, "rank"),
            Structure("fock (shared)", n2, "rank"),
            Structure(
                "FI/FJ thread buffers",
                2.0 * self.nbf * self.max_shell_width,
                "thread",
            ),
        ]

    # -- per-rank / per-node footprints -------------------------------------

    def per_rank_words(self, kind: AlgorithmKind, nthreads: int = 1) -> float:
        """Words held by one MPI rank (including its threads' replicas)."""
        total = 0.0
        for s in self.inventory(kind, nthreads):
            if s.scope == "thread":
                total += s.words * nthreads
            else:
                total += s.words
        kind = AlgorithmKind(kind)
        if kind is AlgorithmKind.MPI_ONLY and self.legacy_ddi:
            total *= 2.0  # compute rank + DDI data-server twin
        return total

    def per_node_bytes(self, kind: AlgorithmKind, config: NodeConfig) -> float:
        """Bytes per node for a process geometry."""
        return (
            self.per_rank_words(kind, config.threads_per_rank)
            * config.mpi_per_node
            * WORD_BYTES
        )

    def per_node_gb(self, kind: AlgorithmKind, config: NodeConfig) -> float:
        """GB per node (decimal GB, as the paper's Table 2 reports)."""
        return self.per_node_bytes(kind, config) / GB

    # -- paper equations (asymptotic, square-matrix form) -----------------

    def asymptotic_words(
        self, kind: AlgorithmKind, config: NodeConfig
    ) -> float:
        """Eqs. (3a)-(3c) verbatim: words per node, square-matrix units."""
        n2 = float(self.nbf) ** 2
        kind = AlgorithmKind(kind)
        if kind is AlgorithmKind.MPI_ONLY:
            coeff = 2.5
        elif kind is AlgorithmKind.PRIVATE_FOCK:
            coeff = 2.0 + config.threads_per_rank
        else:
            coeff = 3.5
        return coeff * n2 * config.mpi_per_node

    # -- derived quantities ---------------------------------------------------

    def max_ranks_per_node(
        self,
        kind: AlgorithmKind,
        node_memory_bytes: float,
        *,
        nthreads: int = 1,
        cap: int = 256,
    ) -> int:
        """Largest rank count whose replicas fit in node memory.

        This is the constraint that limits the stock MPI code to 128
        hardware threads for the 1.0 nm system in the paper's Figure 4.
        """
        per_rank = self.per_rank_words(kind, nthreads) * WORD_BYTES
        if per_rank <= 0:
            return cap
        return max(0, min(cap, int(node_memory_bytes // per_rank)))

    def footprint_reduction(
        self,
        kind: AlgorithmKind,
        hybrid_config: NodeConfig,
        mpi_config: NodeConfig,
    ) -> float:
        """Footprint ratio stock-MPI / hybrid (the ~50x and ~200x numbers)."""
        mpi = self.per_node_bytes(AlgorithmKind.MPI_ONLY, mpi_config)
        hyb = self.per_node_bytes(kind, hybrid_config)
        return mpi / hyb if hyb > 0 else float("inf")


#: The node geometries the paper uses for Table 2: 256 single-thread
#: ranks for the stock code, 4 ranks x 64 threads for the hybrids.
TABLE2_MPI_CONFIG = NodeConfig(mpi_per_node=256, threads_per_rank=1)
TABLE2_HYBRID_CONFIG = NodeConfig(mpi_per_node=4, threads_per_rank=64)


def table2_row(
    nbf: int,
    nshells: int,
    *,
    legacy_ddi_for_mpi: bool = True,
) -> dict[str, float]:
    """One Table-2 row: per-node GB for the three code versions.

    The paper's MPI column was measured with the legacy DDI (data
    servers double every compute rank's replicas), while the hybrid runs
    used the MPI-3 DDI; ``legacy_ddi_for_mpi`` reflects that default.
    """
    mm_legacy = MemoryModel(nbf, nshells, legacy_ddi=legacy_ddi_for_mpi)
    mm = MemoryModel(nbf, nshells, legacy_ddi=False)
    return {
        "mpi": mm_legacy.per_node_gb(AlgorithmKind.MPI_ONLY, TABLE2_MPI_CONFIG),
        "private": mm.per_node_gb(AlgorithmKind.PRIVATE_FOCK, TABLE2_HYBRID_CONFIG),
        "shared": mm.per_node_gb(AlgorithmKind.SHARED_FOCK, TABLE2_HYBRID_CONFIG),
    }
