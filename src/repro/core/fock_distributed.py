"""Distributed-data Fock construction over the simulated DDI.

The related-work baseline the paper positions itself against (Harrison
et al. 1996; Alexeev et al.'s distributed-data SCF in GAMESS): instead
of replicating the density and Fock matrices per rank, both live in
globally addressed *distributed* arrays.  Each rank pulls the density
blocks a quartet needs with one-sided ``get`` and pushes its Fock
contributions with one-sided ``acc``.

Memory per rank becomes ``O(N^2 / nranks)`` — better even than the
shared-Fock code's per-node ``O(N^2)`` — at the price of fine-grained
communication on the critical path, which is exactly the trade-off that
pushed the paper toward node-level sharing instead.  The DDI traffic
statistics this builder reports quantify that price.
"""

from __future__ import annotations

import numpy as np

from repro.core.fock_base import FockBuildStats, ParallelFockBuilderBase
from repro.core.indexing import decode_pair, lmax_for, npairs
from repro.parallel.ddi import DDIRuntime


class DistributedDataFockBuilder(ParallelFockBuilderBase):
    """DDSCF-style Fock build: density and Fock in DDI arrays.

    Single-threaded per rank (the historical codes predate OpenMP);
    work distribution matches Algorithm 1 (DLB over combined ``(i, j)``).
    """

    algorithm_name = "distributed-data"

    def __init__(self, basis, hcore, **kwargs) -> None:
        kwargs.setdefault("nthreads", 1)
        if kwargs["nthreads"] != 1:
            raise ValueError("the distributed-data algorithm is single-threaded")
        super().__init__(basis, hcore, **kwargs)

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, FockBuildStats]:
        stats = self._new_stats()
        ddi = DDIRuntime(self.nranks)
        n = self.nbf

        # Distributed density (read-only) and Fock accumulator.
        d_dist = ddi.create(n, n)
        w_dist = ddi.create(n, n)
        d_dist.put(0, slice(0, n), slice(0, n), density)

        ddi.dlb_reset(npairs(self.nshells), policy=self.dlb_policy)
        offsets = self.basis.shell_bf_offsets()
        widths = self.basis.shell_nfuncs()

        per_rank = [0] * self.nranks
        for rank in range(self.nranks):
            while (ij := ddi.dlbnext(rank)) is not None:
                i, j = decode_pair(ij)
                if not self.screening.prescreen_ij(i, j):
                    stats.quartets_screened += ij + 1
                    continue
                for k in range(i + 1):
                    for l in range(lmax_for(i, j, k) + 1):
                        if not self.screening.survives(i, j, k, l):
                            stats.quartets_screened += 1
                            continue
                        self._do_quartet(
                            ddi, d_dist, w_dist, rank, i, j, k, l,
                            offsets, widths,
                        )
                        per_rank[rank] += 1

        stats.per_rank_quartets = per_rank
        stats.quartets_computed = sum(per_rank)
        stats.reduce_bytes = ddi.stats.bytes_moved
        self._capture_cache_stats(stats)
        W = w_dist.to_dense()
        F = self.hcore + W + W.T

        # Expose the communication profile — the cost of distribution.
        self.last_ddi_stats = ddi.stats
        self.distributed_words = ddi.distributed_words()
        return F, stats

    def _do_quartet(
        self, ddi, d_dist, w_dist, rank, i, j, k, l, offsets, widths
    ) -> None:
        X = self.engine.composite_block(i, j, k, l)

        # Pull the six density blocks one-sidedly, assemble a local
        # scratch density, scatter, and push the six Fock updates.
        n = self.nbf
        scratch = np.zeros((n, n))
        slices = {}
        for a, b in (("k", "l"), ("i", "j"), ("j", "l"),
                     ("j", "k"), ("i", "l"), ("i", "k")):
            ia = {"i": i, "j": j, "k": k, "l": l}[a]
            ib = {"i": i, "j": j, "k": k, "l": l}[b]
            ra = slice(int(offsets[ia]), int(offsets[ia] + widths[ia]))
            rb = slice(int(offsets[ib]), int(offsets[ib] + widths[ib]))
            scratch[ra, rb] = d_dist.get(rank, ra, rb)
            slices[(a, b)] = (ra, rb)

        contribs = self.engine.scatter_contributions(X, scratch, i, j, k, l)
        for (rows, cols), val in contribs.values():
            w_dist.acc(rank, rows, cols, val)
