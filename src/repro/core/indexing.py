"""Symmetry-unique shell-quartet indexing.

All three algorithms traverse the same set of symmetry-unique quartets
``(i >= j, k, l)`` with ``k <= i`` and ``l <= (j if k == i else k)`` —
equivalently, canonical pairs ``(k, l)`` whose combined pair index does
not exceed that of ``(i, j)``.  (The paper's Algorithm 1 line 5 prints
the ``lmax`` branch with the two outcomes swapped; the text, the
combined-index formulation of Algorithm 3, and the stock GAMESS code
all correspond to the rule implemented here.)

Indices are 0-based throughout the library.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np


def npairs(n: int) -> int:
    """Number of canonical pairs ``(i >= j)`` over ``n`` shells."""
    return n * (n + 1) // 2


def pair_index(i: int, j: int) -> int:
    """Canonical combined pair index of ``(i, j)`` with ``i >= j``."""
    if j > i:
        raise ValueError(f"pair_index requires i >= j; got ({i}, {j})")
    return i * (i + 1) // 2 + j


def decode_pair(p: int) -> tuple[int, int]:
    """Invert :func:`pair_index`: combined index -> ``(i, j)``."""
    i = int((math.isqrt(8 * p + 1) - 1) // 2)
    j = p - i * (i + 1) // 2
    # Guard against isqrt edge rounding.
    if j > i:
        i += 1
        j = p - i * (i + 1) // 2
    elif j < 0:
        i -= 1
        j = p - i * (i + 1) // 2
    return i, j


def decode_pairs(p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`decode_pair` for index arrays."""
    p = np.asarray(p, dtype=np.int64)
    i = ((np.sqrt(8.0 * p + 1.0) - 1.0) / 2.0).astype(np.int64)
    # Fix floating-point boundary cases in either direction.
    base = i * (i + 1) // 2
    too_big = base > p
    i[too_big] -= 1
    base = i * (i + 1) // 2
    too_small = p - base > i
    i[too_small] += 1
    base = i * (i + 1) // 2
    j = p - base
    return i, j


def lmax_for(i: int, j: int, k: int) -> int:
    """Upper bound (inclusive) of the ``l`` loop for quartet ``(i,j,k,*)``."""
    return j if k == i else k


def unique_quartets(nshells: int) -> Iterator[tuple[int, int, int, int]]:
    """Iterate all symmetry-unique quartets in stock-GAMESS loop order."""
    for i in range(nshells):
        for j in range(i + 1):
            for k in range(i + 1):
                for l in range(lmax_for(i, j, k) + 1):
                    yield (i, j, k, l)


def n_unique_quartets(nshells: int) -> int:
    """Closed-form count of symmetry-unique quartets: ``P(P+1)/2``."""
    p = npairs(nshells)
    return p * (p + 1) // 2


def quartet_degeneracy_factor(i: int, j: int, k: int, l: int) -> float:
    """Symmetry de-duplication factor for a unique quartet.

    The unique sweep visits each quartet once; the factor
    ``(1/2)^[i==j] * (1/2)^[k==l] * (1/2)^[(i,j)==(k,l)]`` makes the
    six-way Fock scatter equivalent to the full 8-fold permutation sum.
    """
    fac = 1.0
    if i == j:
        fac *= 0.5
    if k == l:
        fac *= 0.5
    if i == k and j == l:
        fac *= 0.5
    return fac


def kl_pairs_upto(ij: int) -> np.ndarray:
    """All combined ``kl`` indices belonging to top-loop iteration ``ij``.

    Algorithm 3's inner loop runs ``kl = 0 .. ij`` inclusive.
    """
    return np.arange(ij + 1, dtype=np.int64)
