"""Shared infrastructure for the three parallel Fock builders.

Each builder is configured with a *simulated* parallel geometry
(``nranks`` MPI ranks x ``nthreads`` OpenMP threads), executes the
paper's exact loop structure over that geometry, and returns the Fock
matrix together with execution statistics (work distribution, screening
counts, buffer flushes, communication volume, race reports).  The
matrices produced are identical — to reduction rounding — across all
three algorithms and any geometry; the test suite enforces this against
the dense reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.core.quartets import QuartetEngine, symmetrize_two_electron
from repro.core.screening import DEFAULT_TAU, Screening
from repro.integrals.schwarz import schwarz_matrix
from repro.parallel.comm import SimWorld
from repro.parallel.shared_array import WriteTracker


@dataclass
class FockBuildStats:
    """Execution statistics of one Fock construction."""

    algorithm: str
    nranks: int
    nthreads: int
    quartets_computed: int = 0
    quartets_screened: int = 0
    per_rank_quartets: list[int] = field(default_factory=list)
    per_thread_quartets: list[int] = field(default_factory=list)
    fi_flushes: int = 0
    fj_flushes: int = 0
    reduce_bytes: int = 0
    races: int = 0
    writes_checked: int = 0

    @property
    def total_quartets(self) -> int:
        """Computed plus screened-out quartets (the full unique space)."""
        return self.quartets_computed + self.quartets_screened

    @property
    def rank_imbalance(self) -> float:
        """max/mean quartets per rank (1.0 = perfectly balanced)."""
        if not self.per_rank_quartets or sum(self.per_rank_quartets) == 0:
            return 1.0
        arr = np.asarray(self.per_rank_quartets, dtype=np.float64)
        mean = arr.mean()
        return float(arr.max() / mean) if mean > 0 else 1.0


class ParallelFockBuilderBase:
    """Common setup: engine, screening, simulated geometry.

    Parameters
    ----------
    basis:
        AO basis (carries the molecule).
    hcore:
        Core Hamiltonian to add to the two-electron part.
    nranks / nthreads:
        Simulated MPI x OpenMP geometry.
    screening:
        A prepared :class:`~repro.core.screening.Screening`; when
        omitted, the exact Schwarz matrix is computed.
    tau:
        Integral threshold used when ``screening`` is omitted.
    dlb_policy:
        Grant policy of the simulated DDI counter (``round_robin`` /
        ``block`` / ``cost_greedy``).
    thread_schedule / thread_chunk:
        OpenMP-style schedule of the thread-level loop.
    track_races:
        Enable the shared-write race detector (shared-Fock algorithm).
    """

    algorithm_name = "base"

    def __init__(
        self,
        basis: BasisSet,
        hcore: np.ndarray,
        *,
        nranks: int = 1,
        nthreads: int = 1,
        screening: Screening | None = None,
        tau: float = DEFAULT_TAU,
        dlb_policy: str = "round_robin",
        thread_schedule: str = "dynamic",
        thread_chunk: int = 1,
        track_races: bool = False,
    ) -> None:
        if nranks < 1 or nthreads < 1:
            raise ValueError("nranks and nthreads must be positive")
        self.basis = basis
        self.hcore = np.asarray(hcore, dtype=np.float64)
        self.nranks = nranks
        self.nthreads = nthreads
        self.engine = QuartetEngine(basis)
        if screening is None:
            screening = Screening(schwarz_matrix(basis), tau)
        self.screening = screening
        self.dlb_policy = dlb_policy
        self.thread_schedule = thread_schedule
        self.thread_chunk = thread_chunk
        self.track_races = track_races
        self.nbf = basis.nbf
        self.nshells = basis.nshells

    # Subclasses implement __call__(density) -> (fock, stats).

    def _new_stats(self) -> FockBuildStats:
        return FockBuildStats(
            algorithm=self.algorithm_name,
            nranks=self.nranks,
            nthreads=self.nthreads,
        )

    def _new_tracker(self) -> WriteTracker | None:
        if not self.track_races:
            return None
        return WriteTracker(self.nbf * self.nbf, strict=False)

    def _finish(
        self,
        W: np.ndarray,
        stats: FockBuildStats,
        world: SimWorld,
        trackers: list[WriteTracker | None],
    ) -> tuple[np.ndarray, FockBuildStats]:
        G = symmetrize_two_electron(W)
        stats.reduce_bytes = world.stats.reduce_bytes
        for tr in trackers:
            if tr is not None:
                stats.races += len(tr.races)
                stats.writes_checked += tr.writes_checked
        return self.hcore + G, stats
