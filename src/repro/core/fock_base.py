"""Shared infrastructure for the three parallel Fock builders.

Each builder is configured with a *simulated* parallel geometry
(``nranks`` MPI ranks x ``nthreads`` OpenMP threads), executes the
paper's exact loop structure over that geometry, and returns the Fock
matrix together with execution statistics (work distribution, screening
counts, buffer flushes, communication volume, race reports).  The
matrices produced are identical — to reduction rounding — across all
three algorithms and any geometry; the test suite enforces this against
the dense reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.core.quartets import QuartetEngine, symmetrize_two_electron
from repro.core.screening import DEFAULT_TAU, Screening
from repro.integrals.cache import QuartetCache
from repro.integrals.schwarz import schwarz_matrix
from repro.obs.events import get_event_log
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.parallel.comm import SimComm, SimWorld
from repro.parallel.scheduler import SCHEDULE_NAMES, Scheduler, make_scheduler
from repro.parallel.shared_array import WriteTracker
from repro.resilience.errors import NonFiniteDensityError
from repro.resilience.faults import FaultPlan, corrupt_copy, resilient_grants

#: Scalar counters of one Fock build, in declaration order.
_SCALAR_FIELDS = (
    "quartets_computed",
    "quartets_screened",
    "fi_flushes",
    "fj_flushes",
    "reduce_bytes",
    "races",
    "writes_checked",
    "eri_cache_hits",
    "eri_cache_misses",
    "eri_cache_evictions",
)
_SERIES_FIELDS = ("per_rank_quartets", "per_thread_quartets")


def _counter_property(field: str) -> property:
    key = f"fock.{field}"

    def _get(self: "FockBuildStats") -> int:
        return self.metrics.counter(key).value

    def _set(self: "FockBuildStats", value: int) -> None:
        self.metrics.counter(key).set(value)

    return property(_get, _set, doc=f"Counter ``{key}`` of the build registry.")


def _series_property(field: str) -> property:
    key = f"fock.{field}"

    def _get(self: "FockBuildStats") -> list[int]:
        return self.metrics.series(key)

    def _set(self: "FockBuildStats", value: Sequence[int]) -> None:
        series = self.metrics.series(key)
        series[:] = list(value)

    return property(_get, _set, doc=f"Series ``{key}`` of the build registry.")


def _imbalance(values: Sequence[int]) -> float:
    if not values or sum(values) == 0:
        return 1.0
    arr = np.asarray(values, dtype=np.float64)
    mean = arr.mean()
    return float(arr.max() / mean) if mean > 0 else 1.0


class FockBuildStats:
    """Execution statistics of one Fock construction.

    A thin attribute view over a per-build
    :class:`~repro.obs.metrics.MetricsRegistry`: every counter
    (``quartets_computed``, ``fi_flushes``, ...) and per-rank/thread
    series lives in ``self.metrics`` under a ``fock.*`` name, so the
    same numbers are reachable both as plain attributes (as the
    builders and analyses always did) and as named metrics for the
    NDJSON/report exporters.
    """

    def __init__(
        self,
        algorithm: str,
        nranks: int,
        nthreads: int,
        quartets_computed: int = 0,
        quartets_screened: int = 0,
        per_rank_quartets: Sequence[int] | None = None,
        per_thread_quartets: Sequence[int] | None = None,
        fi_flushes: int = 0,
        fj_flushes: int = 0,
        reduce_bytes: int = 0,
        races: int = 0,
        writes_checked: int = 0,
        eri_cache_hits: int = 0,
        eri_cache_misses: int = 0,
        eri_cache_evictions: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.algorithm = algorithm
        self.nranks = nranks
        self.nthreads = nthreads
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.quartets_computed = quartets_computed
        self.quartets_screened = quartets_screened
        self.fi_flushes = fi_flushes
        self.fj_flushes = fj_flushes
        self.reduce_bytes = reduce_bytes
        self.races = races
        self.writes_checked = writes_checked
        self.eri_cache_hits = eri_cache_hits
        self.eri_cache_misses = eri_cache_misses
        self.eri_cache_evictions = eri_cache_evictions
        self.per_rank_quartets = list(per_rank_quartets or [])
        self.per_thread_quartets = list(per_thread_quartets or [])

    quartets_computed = _counter_property("quartets_computed")
    quartets_screened = _counter_property("quartets_screened")
    fi_flushes = _counter_property("fi_flushes")
    fj_flushes = _counter_property("fj_flushes")
    reduce_bytes = _counter_property("reduce_bytes")
    races = _counter_property("races")
    writes_checked = _counter_property("writes_checked")
    eri_cache_hits = _counter_property("eri_cache_hits")
    eri_cache_misses = _counter_property("eri_cache_misses")
    eri_cache_evictions = _counter_property("eri_cache_evictions")
    per_rank_quartets = _series_property("per_rank_quartets")
    per_thread_quartets = _series_property("per_thread_quartets")

    @property
    def total_quartets(self) -> int:
        """Computed plus screened-out quartets (the full unique space)."""
        return self.quartets_computed + self.quartets_screened

    @property
    def eri_cache_hit_rate(self) -> float:
        """Quartet-cache hit rate of this build (0.0 with no cache)."""
        total = self.eri_cache_hits + self.eri_cache_misses
        return self.eri_cache_hits / total if total else 0.0

    @property
    def rank_imbalance(self) -> float:
        """max/mean quartets per rank (1.0 = perfectly balanced)."""
        return _imbalance(self.per_rank_quartets)

    @property
    def thread_imbalance(self) -> float:
        """max/mean quartets per thread (1.0 = perfectly balanced)."""
        return _imbalance(self.per_thread_quartets)

    def as_dict(self) -> dict:
        """JSON-ready flat view (geometry, counters, series, imbalances)."""
        out = {
            "algorithm": self.algorithm,
            "nranks": self.nranks,
            "nthreads": self.nthreads,
        }
        for field in _SCALAR_FIELDS:
            out[field] = getattr(self, field)
        for field in _SERIES_FIELDS:
            out[field] = list(getattr(self, field))
        out["rank_imbalance"] = self.rank_imbalance
        out["thread_imbalance"] = self.thread_imbalance
        out["eri_cache_hit_rate"] = self.eri_cache_hit_rate
        return out

    def _as_tuple(self) -> tuple:
        return (
            self.algorithm,
            self.nranks,
            self.nthreads,
            *(getattr(self, f) for f in _SCALAR_FIELDS),
            *(list(getattr(self, f)) for f in _SERIES_FIELDS),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FockBuildStats):
            return NotImplemented
        return self._as_tuple() == other._as_tuple()

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{f}={getattr(self, f)!r}"
            for f in (
                "algorithm", "nranks", "nthreads",
                *_SCALAR_FIELDS, *_SERIES_FIELDS,
            )
        )
        return f"FockBuildStats({fields})"


@dataclass
class RankBuildResult:
    """Outcome of one rank's share of a Fock build.

    The *rank program* of each algorithm (the per-rank SPMD body that
    both the deterministic sim backend and the real-process backend
    execute) returns one of these; the caller merges it into the
    build-level :class:`FockBuildStats`.  Keeping the record a plain
    picklable dataclass is what lets worker processes ship it back over
    a ``multiprocessing`` queue unchanged.
    """

    rank: int
    quartets_done: int = 0
    quartets_screened: int = 0
    per_thread_quartets: list[int] = field(default_factory=list)
    fi_flushes: int = 0
    fj_flushes: int = 0
    races: int = 0
    writes_checked: int = 0

    def as_dict(self) -> dict:
        """JSON/queue-ready flat view."""
        return {
            "rank": self.rank,
            "quartets_done": self.quartets_done,
            "quartets_screened": self.quartets_screened,
            "per_thread_quartets": list(self.per_thread_quartets),
            "fi_flushes": self.fi_flushes,
            "fj_flushes": self.fj_flushes,
            "races": self.races,
            "writes_checked": self.writes_checked,
        }

    @classmethod
    def from_dict(cls, rec: dict) -> "RankBuildResult":
        return cls(**rec)


class ParallelFockBuilderBase:
    """Common setup: engine, screening, simulated geometry.

    Parameters
    ----------
    basis:
        AO basis (carries the molecule).
    hcore:
        Core Hamiltonian to add to the two-electron part.
    nranks / nthreads:
        Simulated MPI x OpenMP geometry.
    screening:
        A prepared :class:`~repro.core.screening.Screening`; when
        omitted, the exact Schwarz matrix is computed.
    tau:
        Integral threshold used when ``screening`` is omitted.
    eri_cache:
        A prepared :class:`~repro.integrals.cache.QuartetCache` shared
        with the quartet engine; repeat SCF cycles then serve quartet
        ERI blocks from memory (semi-direct SCF).
    eri_cache_mb:
        Convenience knob: when ``eri_cache`` is omitted and this is a
        positive MB budget, a cache of that size is created.  ``None``
        (the default) disables caching — the build stays fully direct.
    schedule:
        Task-distribution strategy: ``dlb`` (the paper's dynamic
        counter, default), ``static`` (cost-weighted pre-partition,
        zero counter traffic), ``guided`` (shrinking chunks), or
        ``steal`` (per-rank deques with deterministic work stealing).
    steal_seed:
        Seed of the ``steal`` strategy's victim scan order.
    dlb_policy:
        Grant policy of the simulated DDI counter (``round_robin`` /
        ``block`` / ``cost_greedy``); only meaningful with
        ``schedule="dlb"``.
    thread_schedule / thread_chunk:
        OpenMP-style schedule of the thread-level loop.
    track_races:
        Enable the shared-write race detector (shared-Fock algorithm).
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan`, validated
        against ``nranks`` at construction.  Kill events re-queue the
        dead rank's DLB grants to survivors (results stay bitwise
        identical to the fault-free build); corrupt events strike the
        rank's ``gsumf`` contribution on the wire, where the validating
        reduction detects them and requests a retransmission.
    validate_reductions:
        NaN/Inf-guard reduction contributions before merging (on by
        default); disabling it lets injected corruption propagate,
        which is how the downstream density guards are exercised.
    """

    algorithm_name = "base"

    def __init__(
        self,
        basis: BasisSet,
        hcore: np.ndarray,
        *,
        nranks: int = 1,
        nthreads: int = 1,
        screening: Screening | None = None,
        tau: float = DEFAULT_TAU,
        eri_cache: QuartetCache | None = None,
        eri_cache_mb: float | None = None,
        schedule: str = "dlb",
        steal_seed: int = 0,
        dlb_policy: str = "round_robin",
        thread_schedule: str = "dynamic",
        thread_chunk: int = 1,
        track_races: bool = False,
        fault_plan: FaultPlan | None = None,
        validate_reductions: bool = True,
    ) -> None:
        if nranks < 1 or nthreads < 1:
            raise ValueError("nranks and nthreads must be positive")
        if fault_plan is not None:
            fault_plan.validate_for(nranks)
        self.fault_plan = fault_plan
        self.validate_reductions = validate_reductions
        self._build_index = 0
        self.basis = basis
        self.hcore = np.asarray(hcore, dtype=np.float64)
        self.nranks = nranks
        self.nthreads = nthreads
        if eri_cache is None and eri_cache_mb is not None and eri_cache_mb > 0:
            eri_cache = QuartetCache.from_mb(eri_cache_mb)
        self.eri_cache = eri_cache
        self.engine = QuartetEngine(basis, cache=eri_cache)
        if screening is None:
            screening = Screening(schwarz_matrix(basis), tau)
        self.screening = screening
        if schedule not in SCHEDULE_NAMES:
            raise ValueError(
                f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
            )
        self.schedule = schedule
        self.steal_seed = steal_seed
        self.dlb_policy = dlb_policy
        self.thread_schedule = thread_schedule
        self.thread_chunk = thread_chunk
        self.track_races = track_races
        self.nbf = basis.nbf
        self.nshells = basis.nshells

    # Subclasses implement __call__(density) -> (fock, stats), plus the
    # backend-facing rank-program interface:
    #
    #   dlb_ntasks()                      size of the DLB index space
    #   dlb_costs()                       per-task costs (cost_greedy) or None
    #   rank_program(rank, grants, density, W, *, barrier=None)
    #                                     one rank's share of the build;
    #                                     accumulates into W in place and
    #                                     returns a RankBuildResult
    #
    # The sim path (__call__) and the real-process backend both execute
    # rank_program, so "same rank program on real OS processes" is a
    # structural guarantee, not a convention.

    def dlb_ntasks(self) -> int:
        """Size of the global DLB index space of one build."""
        raise NotImplementedError

    def dlb_costs(self) -> np.ndarray | None:
        """Per-task cost estimates under ``cost_greedy`` (else ``None``)."""
        return None

    def work_estimates(self) -> np.ndarray | None:
        """Per-task work estimates for cost-aware schedules (or ``None``)."""
        return None

    @property
    def accumulator_shape(self) -> tuple[int, ...]:
        """Shape of the per-rank two-electron accumulator ``W``."""
        return (self.nbf, self.nbf)

    def make_scheduler(self) -> Scheduler:
        """The build's grant scheduler under the configured strategy."""
        costs = (
            self.dlb_costs() if self.schedule == "dlb"
            else self.work_estimates()
        )
        return make_scheduler(
            self.schedule, self.dlb_ntasks(), self.nranks,
            costs=costs, policy=self.dlb_policy, seed=self.steal_seed,
        )

    def rank_program(
        self,
        rank: int,
        grants: Iterator[int],
        density: np.ndarray,
        W: np.ndarray,
        *,
        barrier: Callable[[], None] | None = None,
    ) -> RankBuildResult:
        """Execute one rank's share of the build; accumulate into ``W``."""
        raise NotImplementedError

    def assemble(self, W: np.ndarray) -> np.ndarray:
        """Full Fock matrix from the reduced two-electron accumulator."""
        return self.hcore + symmetrize_two_electron(W)

    @staticmethod
    def _merge_rank_result(stats: FockBuildStats, rr: RankBuildResult) -> None:
        """Fold one rank's :class:`RankBuildResult` into the build stats."""
        stats.quartets_screened += rr.quartets_screened
        stats.fi_flushes += rr.fi_flushes
        stats.fj_flushes += rr.fj_flushes
        stats.races += rr.races
        stats.writes_checked += rr.writes_checked
        if rr.per_thread_quartets:
            counts = stats.per_thread_quartets
            if not counts:
                counts = [0] * len(rr.per_thread_quartets)
            stats.per_thread_quartets = [
                a + b for a, b in zip(counts, rr.per_thread_quartets)
            ]

    def _check_density(self, density: np.ndarray, label: str = "density") -> None:
        """Fail fast on NaN/Inf input instead of iterating on garbage.

        The diagnostic names the Fock build (= SCF cycle for one build
        per cycle) so the first offending cycle is identifiable.
        """
        if not np.all(np.isfinite(density)):
            raise NonFiniteDensityError(
                f"Fock build {self._build_index}: input {label} contains "
                f"{int(np.sum(~np.isfinite(density)))} non-finite "
                "value(s); refusing to build from garbage"
            )

    def _grants(self, dlb: Scheduler, rank: int) -> Iterator[int]:
        """Rank's DLB grants, with fault-plan kill/straggler semantics."""
        return resilient_grants(dlb, rank, self.fault_plan, self._build_index)

    def _resilient_gsumf(self, comm: SimComm, W: np.ndarray) -> None:
        """``gsumf`` with wire-corruption injection and NaN/Inf guard.

        A scheduled corrupt event strikes the wire image of ``W``.  With
        reduction validation on (default), the guard detects the
        non-finite payload before merging and requests retransmission of
        the pristine buffer the sender still holds — the reduced result
        is untouched.  With validation off, the corruption is merged
        in-place and propagates (for exercising downstream guards).
        """
        plan = self.fault_plan
        if plan is not None:
            event = plan.corruption(comm.rank, self._build_index)
            if event is not None:
                registry = get_metrics()
                if registry is not None:
                    registry.counter("resilience.corrupt_injected").inc()
                log = get_event_log()
                if log is not None:
                    log.emit(
                        "fault.corrupt", rank=comm.rank,
                        cycle=self._build_index, payload=event.payload,
                        detected=self.validate_reductions,
                        retransmitted=self.validate_reductions,
                    )
                if self.validate_reductions:
                    if registry is not None:
                        registry.counter(
                            "resilience.corrupt_detected"
                        ).inc()
                        registry.counter(
                            "resilience.retransmissions", rank=comm.rank
                        ).inc()
                else:
                    W[...] = corrupt_copy(W, event.payload)
        if not self.validate_reductions and not np.all(np.isfinite(W)):
            # Unvalidated fabric: the poisoned buffer joins the sum.
            self._world_gsumf_unchecked(comm, W)
            return
        comm.gsumf(W)

    @staticmethod
    def _world_gsumf_unchecked(comm: SimComm, W: np.ndarray) -> None:
        comm.stats.reduce_calls += 1
        comm.stats.reduce_bytes += W.nbytes
        comm._world._register_reduction(comm.rank, W)

    def _new_stats(self) -> FockBuildStats:
        self._build_index += 1
        cache = self.eri_cache
        self._cache_mark = (
            (cache.hits, cache.misses, cache.evictions)
            if cache is not None
            else (0, 0, 0)
        )
        return FockBuildStats(
            algorithm=self.algorithm_name,
            nranks=self.nranks,
            nthreads=self.nthreads,
        )

    def _capture_cache_stats(self, stats: FockBuildStats) -> None:
        """Record this build's quartet-cache deltas onto ``stats``."""
        cache = self.eri_cache
        if cache is None:
            return
        h0, m0, e0 = self._cache_mark
        stats.eri_cache_hits = cache.hits - h0
        stats.eri_cache_misses = cache.misses - m0
        stats.eri_cache_evictions = cache.evictions - e0

    def _new_tracker(self) -> WriteTracker | None:
        if not self.track_races:
            return None
        return WriteTracker(self.nbf * self.nbf, strict=False)

    def _record_global(self, stats: FockBuildStats) -> None:
        """Mirror final per-build counters into the global registry."""
        registry = get_metrics()
        if registry is None:
            return
        algo = self.algorithm_name
        registry.counter("fock.builds", algorithm=algo).inc()
        for field in _SCALAR_FIELDS:
            registry.counter(f"fock.{field}", algorithm=algo).inc(
                getattr(stats, field)
            )

    def _finish(
        self,
        W: np.ndarray,
        stats: FockBuildStats,
        world: SimWorld,
        trackers: list[WriteTracker | None],
    ) -> tuple[np.ndarray, FockBuildStats]:
        G = symmetrize_two_electron(W)
        stats.reduce_bytes = world.stats.reduce_bytes
        for tr in trackers:
            if tr is not None:
                stats.races += len(tr.races)
                stats.writes_checked += tr.writes_checked
        self._capture_cache_stats(stats)
        self._record_global(stats)
        return self.hcore + G, stats
