"""Reproduction of the paper's tables (2, 3 and artifact Table 4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.graphene import PAPER_DATASETS, GrapheneSpec
from repro.core.memory_model import (
    AlgorithmKind,
    MemoryModel,
    NodeConfig,
    TABLE2_HYBRID_CONFIG,
    TABLE2_MPI_CONFIG,
)
from repro.perfsim.cost_model import CostModel, calibrated_cost_model
from repro.perfsim.scaling import node_scaling
from repro.perfsim.workload import Workload

#: Paper Table 2 published footprints (GB): dataset -> (MPI, Pr.F, Sh.F).
PAPER_TABLE2: dict[str, tuple[float, float, float]] = {
    "0.5nm": (7.0, 0.13, 0.03),
    "1.0nm": (48.0, 1.0, 0.2),
    "1.5nm": (160.0, 3.0, 0.8),
    "2.0nm": (417.0, 8.0, 2.0),
    "5.0nm": (9869.0, 257.0, 52.0),
}

#: Paper Table 3 published values: nodes -> (MPI, Pr.F, Sh.F) seconds.
PAPER_TABLE3_TIMES: dict[int, tuple[float, float, float]] = {
    4: (2661.0, 1128.0, 1318.0),
    16: (685.0, 288.0, 332.0),
    64: (195.0, 78.0, 85.0),
    128: (118.0, 49.0, 43.0),
    256: (85.0, 44.0, 23.0),
    512: (82.0, 44.0, 13.0),
}

#: Paper Table 3 parallel efficiency (%): nodes -> (MPI, Pr.F, Sh.F).
PAPER_TABLE3_EFF: dict[int, tuple[float, float, float]] = {
    4: (100.0, 100.0, 100.0),
    16: (97.0, 98.0, 99.0),
    64: (85.0, 90.0, 97.0),
    128: (70.0, 72.0, 96.0),
    256: (49.0, 40.0, 90.0),
    512: (25.0, 20.0, 79.0),
}


@dataclass
class Table2Row:
    """One dataset's size characteristics and per-node footprints."""

    dataset: str
    natoms: int
    nshells: int
    nbf: int
    mpi_gb: float
    private_gb: float
    shared_gb: float
    paper_mpi_gb: float
    paper_private_gb: float
    paper_shared_gb: float

    @property
    def reduction_private(self) -> float:
        """Footprint reduction of the private-Fock code vs stock MPI."""
        return self.mpi_gb / self.private_gb if self.private_gb else 0.0

    @property
    def reduction_shared(self) -> float:
        """Footprint reduction of the shared-Fock code vs stock MPI."""
        return self.mpi_gb / self.shared_gb if self.shared_gb else 0.0


def table2_memory_footprints() -> list[Table2Row]:
    """Reproduce Table 2: per-node memory of the three codes.

    Geometry as in the paper: 256 single-thread ranks per node for the
    stock code (with its legacy-DDI data-server duplication), 4 ranks x
    64 threads for the hybrids.
    """
    rows: list[Table2Row] = []
    for label, spec in PAPER_DATASETS.items():
        mm_legacy = MemoryModel(spec.nbf, spec.nshells, legacy_ddi=True)
        mm = MemoryModel(spec.nbf, spec.nshells)
        paper = PAPER_TABLE2[label]
        rows.append(
            Table2Row(
                dataset=label,
                natoms=spec.natoms,
                nshells=spec.nshells,
                nbf=spec.nbf,
                mpi_gb=mm_legacy.per_node_gb(
                    AlgorithmKind.MPI_ONLY, TABLE2_MPI_CONFIG
                ),
                private_gb=mm.per_node_gb(
                    AlgorithmKind.PRIVATE_FOCK, TABLE2_HYBRID_CONFIG
                ),
                shared_gb=mm.per_node_gb(
                    AlgorithmKind.SHARED_FOCK, TABLE2_HYBRID_CONFIG
                ),
                paper_mpi_gb=paper[0],
                paper_private_gb=paper[1],
                paper_shared_gb=paper[2],
            )
        )
    return rows


@dataclass
class Table3Row:
    """One node count's times and efficiencies, measured vs paper."""

    nodes: int
    times: dict[str, float]
    efficiencies: dict[str, float]
    paper_times: tuple[float, float, float]
    paper_eff: tuple[float, float, float]


def table3_multinode(
    cost: CostModel | None = None,
    *,
    node_counts: tuple[int, ...] = (4, 16, 64, 128, 256, 512),
) -> list[Table3Row]:
    """Reproduce Table 3: 2.0 nm multi-node times and efficiencies."""
    cost = cost or calibrated_cost_model()
    wl = Workload.for_dataset("2.0nm")
    curves = {
        alg: node_scaling(wl, alg, list(node_counts), cost)
        for alg in ("mpi-only", "private-fock", "shared-fock")
    }
    rows: list[Table3Row] = []
    for idx, nodes in enumerate(node_counts):
        rows.append(
            Table3Row(
                nodes=nodes,
                times={a: curves[a][idx].seconds for a in curves},
                efficiencies={
                    a: 100.0 * curves[a][idx].efficiency for a in curves
                },
                paper_times=PAPER_TABLE3_TIMES.get(nodes, (0.0, 0.0, 0.0)),
                paper_eff=PAPER_TABLE3_EFF.get(nodes, (0.0, 0.0, 0.0)),
            )
        )
    return rows


@dataclass
class Table4Row:
    """Dataset size characteristics (artifact appendix Table 4)."""

    dataset: str
    natoms: int
    nshells: int
    nbf: int
    paper_natoms: int
    paper_nshells: int
    paper_nbf: int


def table4_system_sizes() -> list[Table4Row]:
    """Reproduce the artifact's Table 4 from the geometry generator."""
    from repro.chem.basis import BasisSet
    from repro.chem.graphene import paper_dataset

    paper = {
        "0.5nm": (44, 176, 660),
        "1.0nm": (120, 480, 1800),
        "1.5nm": (220, 880, 3300),
        "2.0nm": (356, 1424, 5340),
        "5.0nm": (2016, 8064, 30240),
    }
    rows: list[Table4Row] = []
    for label in PAPER_DATASETS:
        mol = paper_dataset(label)
        basis = BasisSet(mol, "6-31g(d)")
        p = paper[label]
        rows.append(
            Table4Row(
                dataset=label,
                natoms=mol.natoms,
                nshells=basis.nshells,
                nbf=basis.nbf,
                paper_natoms=p[0],
                paper_nshells=p[1],
                paper_nbf=p[2],
            )
        )
    return rows


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Simple monospace table renderer."""
    widths = [
        max(len(h), *(len(r[c]) for r in rows)) if rows else len(h)
        for c, h in enumerate(headers)
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
