"""Terminal (ASCII) plotting for scaling curves and sweeps.

The paper's figures are log-log scaling plots; these helpers render the
same curves as monospace charts so the benchmark harness, the examples
and the CLI can show *shapes*, not just tables, without any plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

_MARKERS = "ox+*#@%&"


def _log_ticks(lo: float, hi: float, n: int) -> list[float]:
    la, lb = math.log10(lo), math.log10(hi)
    return [10 ** (la + (lb - la) * i / (n - 1)) for i in range(n)]


def ascii_loglog(
    series: Sequence,
    *,
    width: int = 64,
    height: int = 18,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "seconds",
) -> str:
    """Render Series objects (x, seconds) as a log-log ASCII chart.

    Infeasible points (``feasible[i] == False``) are skipped.
    """
    pts_per_series: list[list[tuple[float, float]]] = []
    for s in series:
        pts = [
            (float(x), float(y))
            for i, (x, y) in enumerate(zip(s.x, s.seconds))
            if (not s.feasible or s.feasible[i]) and y > 0 and math.isfinite(y)
        ]
        pts_per_series.append(pts)

    all_pts = [p for pts in pts_per_series for p in pts]
    if not all_pts:
        return title + "\n(no data)"
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x0 == x1:
        x1 = x0 * 10
    if y0 == y1:
        y1 = y0 * 10

    def col(x: float) -> int:
        return round(
            (math.log10(x) - math.log10(x0))
            / (math.log10(x1) - math.log10(x0))
            * (width - 1)
        )

    def row(y: float) -> int:
        return (height - 1) - round(
            (math.log10(y) - math.log10(y0))
            / (math.log10(y1) - math.log10(y0))
            * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    for s_idx, pts in enumerate(pts_per_series):
        mark = _MARKERS[s_idx % len(_MARKERS)]
        for (x, y) in pts:
            r, c = row(y), col(x)
            grid[r][c] = mark if grid[r][c] == " " else "@"

    lines: list[str] = []
    if title:
        lines.append(title)
    y_ticks = {0: y1, height - 1: y0, (height - 1) // 2: math.sqrt(y0 * y1)}
    for r in range(height):
        label = (
            f"{y_ticks[r]:>9.3g} |" if r in y_ticks else f"{'':>9s} |"
        )
        lines.append(label + "".join(grid[r]))
    lines.append(f"{'':>9s} +" + "-" * width)
    xt = _log_ticks(x0, x1, 4)
    tick_line = f"{'':>10s}"
    pos = 0
    for t in xt:
        c = col(t)
        if c > pos:
            tick_line += " " * (c - pos)
            pos = c
        label = f"{t:.3g}"
        tick_line += label
        pos += len(label)
    lines.append(tick_line)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {s.label}"
        for i, s in enumerate(series)
    )
    lines.append(f"{'':>10s}{xlabel}    [{ylabel}]   {legend}")
    return "\n".join(lines)
