"""Formatting helpers shared by the benchmark harness and examples."""

from __future__ import annotations

import math
from typing import Iterable


def format_seconds(t: float) -> str:
    """Human-friendly seconds (``inf`` renders as ``--``)."""
    if not math.isfinite(t):
        return "--"
    if t >= 1000:
        return f"{t:7.0f}"
    if t >= 10:
        return f"{t:7.1f}"
    return f"{t:7.2f}"


def render_series(series: Iterable, title: str = "") -> str:
    """Render :class:`~repro.analysis.figures.Series` objects as a table."""
    series = list(series)
    lines: list[str] = []
    if title:
        lines.append(title)
    if not series:
        return "\n".join(lines)
    xs = series[0].x
    header = "x".rjust(8) + "".join(f"{s.label:>16s}" for s in series)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{str(x):>8s}"
        for s in series:
            ok = s.feasible[i] if s.feasible else True
            row += (
                f"{format_seconds(s.seconds[i]):>16s}"
                if ok
                else f"{'(mem)':>16s}"
            )
        lines.append(row)
    return "\n".join(lines)


def shape_check(
    name: str, expected_winner: str, times: dict[str, float]
) -> str:
    """One-line who-wins statement for EXPERIMENTS.md-style reporting."""
    winner = min(times, key=times.get)  # type: ignore[arg-type]
    ok = "OK" if winner == expected_winner else "MISMATCH"
    ratio = max(times.values()) / min(times.values()) if times else 0.0
    return f"{name}: winner={winner} (expected {expected_winner}) spread={ratio:.1f}x [{ok}]"
