"""Reproduction of the paper's figures (3-7) as data series."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cluster_modes import ClusterMode
from repro.machine.memory_modes import MemoryMode
from repro.machine.system import JLSE, THETA
from repro.perfsim.affinity import Affinity
from repro.perfsim.cost_model import CostModel, calibrated_cost_model
from repro.perfsim.scaling import (
    ScalingPoint,
    node_scaling,
    single_node_thread_scaling,
)
from repro.perfsim.simulate import RunConfig, simulate_fock_build
from repro.perfsim.workload import Workload


@dataclass
class Series:
    """One labelled curve: x values and timings."""

    label: str
    x: list[int | str]
    seconds: list[float]
    feasible: list[bool] = field(default_factory=list)


def figure3_affinity(
    cost: CostModel | None = None,
    *,
    thread_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
) -> list[Series]:
    """Figure 3: shared-Fock time vs threads/rank per affinity type.

    1.0 nm dataset, one JLSE node, 4 MPI ranks, quad-cache mode.
    """
    cost = cost or calibrated_cost_model()
    wl = Workload.for_dataset("1.0nm")
    out: list[Series] = []
    for aff in (Affinity.COMPACT, Affinity.SCATTER, Affinity.BALANCED, Affinity.NONE):
        xs, ts = [], []
        for tpr in thread_counts:
            cfg = RunConfig.hybrid(
                "shared-fock", system=JLSE, nodes=1, ranks_per_node=4,
                threads_per_rank=tpr, affinity=aff,
            )
            sim = simulate_fock_build(wl, cfg, cost)
            xs.append(tpr)
            ts.append(sim.total_seconds)
        out.append(Series(label=aff.value, x=xs, seconds=ts))
    return out


def figure4_single_node(
    cost: CostModel | None = None,
    *,
    hw_threads: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256),
) -> list[Series]:
    """Figure 4: single-node scaling vs hardware threads, all 3 codes.

    1.0 nm dataset on one JLSE node.  The stock code's points beyond its
    memory limit are reported infeasible — the paper's 128-thread
    ceiling.
    """
    cost = cost or calibrated_cost_model()
    wl = Workload.for_dataset("1.0nm")
    out: list[Series] = []
    for alg in ("mpi-only", "private-fock", "shared-fock"):
        pts = single_node_thread_scaling(
            wl, alg, list(hw_threads), cost, system=JLSE
        )
        out.append(
            Series(
                label=alg,
                x=[p.x for p in pts],
                seconds=[p.seconds for p in pts],
                feasible=[p.feasible for p in pts],
            )
        )
    return out


def figure5_modes(
    cost: CostModel | None = None,
    *,
    datasets: tuple[str, ...] = ("0.5nm", "2.0nm"),
    cluster_modes: tuple[ClusterMode, ...] = (
        ClusterMode.QUADRANT,
        ClusterMode.SNC4,
        ClusterMode.ALL_TO_ALL,
    ),
    memory_modes: tuple[MemoryMode, ...] = (
        MemoryMode.CACHE,
        MemoryMode.FLAT_DDR,
        MemoryMode.FLAT_MCDRAM,
    ),
) -> dict[str, list[dict]]:
    """Figure 5: time per (cluster mode x memory mode x algorithm).

    Returns, per dataset, a list of records with keys ``cluster``,
    ``memory``, ``algorithm``, ``seconds``, ``feasible``.
    """
    cost = cost or calibrated_cost_model()
    out: dict[str, list[dict]] = {}
    for label in datasets:
        wl = Workload.for_dataset(label)
        recs: list[dict] = []
        for cmode in cluster_modes:
            for mmode in memory_modes:
                for alg in ("mpi-only", "private-fock", "shared-fock"):
                    if alg == "mpi-only":
                        cfg = RunConfig.mpi_only(
                            system=JLSE, nodes=1,
                            cluster_mode=cmode, memory_mode=mmode,
                        )
                    else:
                        cfg = RunConfig.hybrid(
                            alg, system=JLSE, nodes=1,
                            cluster_mode=cmode, memory_mode=mmode,
                        )
                    sim = simulate_fock_build(wl, cfg, cost)
                    recs.append(
                        {
                            "cluster": cmode.value,
                            "memory": mmode.value,
                            "algorithm": alg,
                            "seconds": sim.total_seconds,
                            "feasible": sim.feasible,
                            "reason": sim.infeasible_reason,
                        }
                    )
        out[label] = recs
    return out


def figure6_scaling_curves(
    cost: CostModel | None = None,
    *,
    node_counts: tuple[int, ...] = (4, 16, 64, 128, 256, 512),
) -> list[Series]:
    """Figure 6: multi-node scaling of the three codes, 2.0 nm, Theta."""
    cost = cost or calibrated_cost_model()
    wl = Workload.for_dataset("2.0nm")
    out: list[Series] = []
    for alg in ("mpi-only", "private-fock", "shared-fock"):
        pts = node_scaling(wl, alg, list(node_counts), cost, system=THETA)
        out.append(
            Series(
                label=alg,
                x=[p.x for p in pts],
                seconds=[p.seconds for p in pts],
                feasible=[p.feasible for p in pts],
            )
        )
    return out


def figure7_5nm_scaling(
    cost: CostModel | None = None,
    *,
    node_counts: tuple[int, ...] = (256, 512, 1000, 1500, 2000, 3000),
) -> Series:
    """Figure 7: shared-Fock scaling of the 5.0 nm dataset to 3,000 nodes."""
    cost = cost or calibrated_cost_model()
    wl = Workload.for_dataset("5.0nm")
    pts = node_scaling(wl, "shared-fock", list(node_counts), cost, system=THETA)
    return Series(
        label="shared-fock/5.0nm",
        x=[p.x for p in pts],
        seconds=[p.seconds for p in pts],
        feasible=[p.feasible for p in pts],
    )
