"""Reproduction of every table and figure in the paper's evaluation.

Each ``table_*`` / ``figure_*`` function returns structured rows
(dataclasses / dicts) and has a matching ``render_*`` helper that
formats them the way the paper presents them.  The benchmark harness in
``benchmarks/`` calls these and prints the output next to the paper's
published values.
"""

from repro.analysis.tables import (
    table2_memory_footprints,
    table3_multinode,
    table4_system_sizes,
    render_table,
)
from repro.analysis.figures import (
    figure3_affinity,
    figure4_single_node,
    figure5_modes,
    figure6_scaling_curves,
    figure7_5nm_scaling,
)
from repro.analysis.report import render_series, format_seconds
from repro.analysis.plots import ascii_loglog

__all__ = [
    "table2_memory_footprints",
    "table3_multinode",
    "table4_system_sizes",
    "render_table",
    "figure3_affinity",
    "figure4_single_node",
    "figure5_modes",
    "figure6_scaling_curves",
    "figure7_5nm_scaling",
    "render_series",
    "format_seconds",
    "ascii_loglog",
]
