"""Physical constants and unit conversions used throughout the library.

All internal quantum-chemistry arithmetic is performed in Hartree atomic
units (lengths in Bohr, energies in Hartree).  Geometry builders and
user-facing APIs accept Angstrom and convert on entry.
"""

from __future__ import annotations

import math

#: Bohr radius in Angstrom (CODATA 2018).
BOHR_TO_ANGSTROM: float = 0.529177210903

#: Angstrom expressed in Bohr.
ANGSTROM_TO_BOHR: float = 1.0 / BOHR_TO_ANGSTROM

#: Hartree energy in electron-volts (CODATA 2018).
HARTREE_TO_EV: float = 27.211386245988

#: Hartree energy in kcal/mol.
HARTREE_TO_KCALMOL: float = 627.5094740631

#: pi to full double precision, re-exported for integral kernels.
PI: float = math.pi

#: 2 * pi**(5/2), the prefactor of the fundamental ERI formula.
TWO_PI_POW_2_5: float = 2.0 * math.pi ** 2.5

#: Double-precision word size in bytes; the unit of the memory model.
WORD_BYTES: int = 8

#: One gibibyte in bytes (the paper reports GB; we use GiB-like 1e9
#: decimal GB to match the paper's row magnitudes).
GB: float = 1.0e9


def angstrom_to_bohr(x: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return x * ANGSTROM_TO_BOHR


def bohr_to_angstrom(x: float) -> float:
    """Convert a length from Bohr to Angstrom."""
    return x * BOHR_TO_ANGSTROM
