"""The ``repro serve`` daemon: SCF-as-a-service over a unix socket.

One process, three moving parts:

* an **accept loop** answering NDJSON requests (submit / status /
  result / cancel / ping / shutdown) on the service socket — each
  connection is one request, handled on its own short-lived thread;
* the **dispatch loop** (the main thread): folds fleet outcomes into
  the durable queue, applies the retry policy, hands ready jobs to
  idle workers, enforces nothing itself — deadlines and liveness live
  in :class:`~repro.service.supervisor.WorkerFleet`;
* the PR-6 observability stack: a telemetry channel served from the
  service directory (``repro monitor --socket``), ``job.*`` /
  ``service.*`` records for every lifecycle edge, and a run-registry
  record per job plus one for the daemon itself.

Crash model end to end: submissions and transitions are fsync'd to the
journal *before* they are acknowledged, checkpoints land under
``<service-dir>/jobs/<id>/``, so a SIGKILL'd daemon restarted on the
same directory replays the journal, re-queues exactly the jobs that
were in flight, and resumes them from their checkpoints — acknowledged
results are never lost, never re-run.

Startup handles the classic AF_UNIX footgun: a socket *path* survives
its owner's death.  The daemon probes an existing path first — a live
daemon answers and startup aborts with
:class:`~repro.service.errors.DaemonAlreadyRunning`; a dead one
refuses the connect and the stale path is unlinked and re-bound.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import socket
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.events import EventLog, get_event_log, set_event_log
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.registry import RunHandle, RunRegistry
from repro.obs.slo import DEFAULT_SLO_TARGETS, SLOEngine, job_class
from repro.obs.telemetry import TelemetryChannel, set_telemetry
from repro.service.client import recv_line, probe_socket, service_socket_path
from repro.service.errors import (
    DaemonAlreadyRunning,
    JobNotFound,
    ServiceError,
)
from repro.service.jobs import JobSpec
from repro.service.queue import DEFAULT_MAX_DEPTH, DurableJobQueue
from repro.service.retry import TERMINAL, RetryPolicy, classify
from repro.service.supervisor import (
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    DEFAULT_JOB_TIMEOUT_S,
    JobOutcome,
    WorkerFleet,
)

logger = logging.getLogger("repro.service.daemon")

#: Dispatch-loop tick.
TICK_S = 0.05


@dataclass
class ServiceConfig:
    """Everything a daemon needs, CLI-shaped and JSON-able."""

    service_dir: str = str(Path(".repro") / "service")
    fleet: int = 2
    max_queue_depth: int = DEFAULT_MAX_DEPTH
    job_timeout_s: float = DEFAULT_JOB_TIMEOUT_S
    max_retries: int = 3
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    retry_seed: int = 0
    process_budget: int = 4
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S
    checkpoint_every: int = 1
    idle_exit_s: float | None = None
    runs_dir: str | None = None
    slo_targets: tuple[str, ...] = DEFAULT_SLO_TARGETS
    keep_runs: int | None = None  # registry retention (prune keep-last-N)
    tick_s: float = TICK_S  # dispatch-loop tick (benchmarks tighten it)
    # -- workload-manifest intake (repro serve --manifest) --------------------
    manifest: str | None = None
    batch_policy: str = "binned"
    batch_seed: int = 0
    batch_window: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


class ServiceDaemon:
    """The long-running job service.  Use as a context manager:

    >>> with ServiceDaemon(ServiceConfig(service_dir=d)) as daemon:
    ...     daemon.run_forever()
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.service_dir = Path(config.service_dir)
        self.jobs_dir = self.service_dir / "jobs"
        self.socket_path = service_socket_path(self.service_dir)
        self.pid_path = self.service_dir / "daemon.pid"
        self.policy = RetryPolicy(
            max_retries=config.max_retries,
            backoff_base_s=config.backoff_base_s,
            backoff_cap_s=config.backoff_cap_s,
            seed=config.retry_seed,
        )
        self.queue: DurableJobQueue | None = None
        self.fleet: WorkerFleet | None = None
        self.channel: TelemetryChannel | None = None
        self.registry: RunRegistry | None = None
        self.serve_run: RunHandle | None = None
        self.slo: SLOEngine | None = None
        self._job_runs: dict[str, RunHandle] = {}
        # Per-job latency accounting on the shared perf_counter base:
        # {"submit_pt", "ready_pt", "dispatch_pt"?, "queue_wait", "run"}.
        self._timing: dict[str, dict[str, float]] = {}
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._started = False
        self._closed = False
        self._last_active = time.monotonic()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.retries = 0
        self.overloads = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceDaemon":
        """Bind the socket, replay the journal, spawn the fleet."""
        if self._started:
            return self
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

        # Stale-socket reclaim: probe before bind.
        if self.socket_path.exists():
            if probe_socket(self.socket_path):
                raise DaemonAlreadyRunning(
                    f"a live daemon already answers at {self.socket_path}"
                )
            logger.warning("reclaiming stale service socket %s",
                           self.socket_path)
            self.socket_path.unlink()

        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._server.bind(str(self.socket_path))
        self._server.listen(16)
        self.pid_path.write_text(f"{os.getpid()}\n")

        self.registry = RunRegistry(self.config.runs_dir)
        self.serve_run = self.registry.register(
            "serve", config=self.config.to_dict()
        )

        self.channel = TelemetryChannel()
        set_telemetry(self.channel)
        self.slo = SLOEngine(self.config.slo_targets, channel=self.channel)
        # Install fresh global obs state, remembering what was there:
        # an in-process daemon (tests, benchmarks) must hand the
        # process' globals back on close(), like set_telemetry below.
        self._prev_event_log = get_event_log()
        self._prev_metrics = get_metrics()
        set_event_log(EventLog())
        set_metrics(MetricsRegistry())
        telemetry_fd = None
        if self.channel.serve(self.service_dir / "telemetry.sock"):
            telemetry_fd = self.channel.server_fileno()
        if self.serve_run is not None:
            from repro.obs.telemetry import NDJSONTelemetrySink

            self._sink = NDJSONTelemetrySink(
                self.serve_run.path("telemetry.ndjson")
            )
            self.channel.subscribe(self._sink)
            self.serve_run.add_artifact(
                "telemetry", self.serve_run.path("telemetry.ndjson")
            )
        else:
            self._sink = None

        self.queue = DurableJobQueue(
            self.service_dir / "journal.ndjson",
            max_depth=self.config.max_queue_depth,
        )
        if self.queue.recovered_jobs:
            logger.info("journal replay recovered %d in-flight job(s): %s",
                        len(self.queue.recovered_jobs),
                        ", ".join(self.queue.recovered_jobs))
            self.channel.publish(
                "service.recovered",
                jobs=list(self.queue.recovered_jobs),
                replayed=self.queue.replayed,
            )
        if self.config.manifest is not None:
            self._enqueue_manifest()

        # Workers are forked from here on; every fd they must NOT
        # inherit goes in this list (see _service_worker_loop).
        close_fds = [self._server.fileno(), self.queue.fileno()]
        if telemetry_fd is not None:
            close_fds.append(telemetry_fd)
        self.fleet = WorkerFleet(
            self.config.fleet,
            job_timeout_s=self.config.job_timeout_s,
            heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            process_budget=self.config.process_budget,
            checkpoint_every=self.config.checkpoint_every,
            close_fds=tuple(close_fds),
        )

        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()
        self._started = True
        self._last_active = time.monotonic()
        self.channel.publish(
            "service.start",
            pid=os.getpid(),
            socket=str(self.socket_path),
            fleet=self.config.fleet,
            max_queue_depth=self.config.max_queue_depth,
            recovered=len(self.queue.recovered_jobs),
        )
        logger.info("service listening at %s (fleet=%d, pid=%d)",
                    self.socket_path, self.config.fleet, os.getpid())
        return self

    def _enqueue_manifest(self) -> None:
        """Ingest ``config.manifest``, batch-planned, exactly once.

        The planned submission order *is* the batch plan: the durable
        queue dispatches FIFO over submission order, so submitting in
        plan order makes the fleet execute each setup-key bin
        back-to-back (warm ``setup_cache`` + ERI-pool hits on every job
        after a bin's first).

        Exactly-once across restarts: after the full plan is journaled,
        the plan fingerprint is written to ``<service-dir>/manifest.id``
        (atomic rename).  A restarted daemon whose marker matches skips
        the intake — the journal already owns those jobs — so a SIGKILL
        mid-*workload* never duplicates a job.  (A crash inside the
        intake loop itself re-enqueues from scratch; the loop is pure
        fsync'd appends taking milliseconds, so that window is the
        narrow, documented trade for keeping the journal format
        unchanged.)
        """
        from repro.workload.manifest import load_manifest
        from repro.workload.scheduler import make_batch_scheduler

        specs = load_manifest(self.config.manifest)
        scheduler = make_batch_scheduler(
            self.config.batch_policy,
            seed=self.config.batch_seed,
            window=self.config.batch_window,
        )
        plan = scheduler.plan(specs)
        marker = self.service_dir / "manifest.id"
        if marker.exists() and marker.read_text().strip() == plan.fingerprint:
            logger.info("manifest %s already ingested (%d job(s) in the "
                        "journal); skipping", self.config.manifest,
                        len(specs))
            return
        now_pt = time.perf_counter()
        for index in plan.order:
            job = self.queue.submit(specs[index], enforce_depth=False)
            self._timing[job.id] = {
                "submit_pt": now_pt, "ready_pt": now_pt,
                "queue_wait": 0.0, "run": 0.0,
            }
        tmp = marker.with_suffix(".id.tmp")
        tmp.write_text(plan.fingerprint + "\n")
        tmp.replace(marker)
        self._last_active = time.monotonic()
        self.channel.publish(
            "service.manifest",
            manifest=str(self.config.manifest),
            jobs=len(plan.order),
            batches=len(plan.batches),
            policy=self.config.batch_policy,
            fingerprint=plan.fingerprint,
        )
        logger.info("manifest %s: %d job(s) in %d batch(es) under the "
                    "%s policy", self.config.manifest, len(plan.order),
                    len(plan.batches), self.config.batch_policy)

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT request a graceful stop (main thread only)."""
        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, lambda *_: self._stop.set())

    def run_forever(self) -> None:
        """The dispatch loop; returns on stop request or idle exit."""
        assert self.queue is not None and self.fleet is not None
        while not self._stop.is_set():
            for outcome in self.fleet.poll():
                self._fold_outcome(outcome)
            self._dispatch_ready()
            if self._idle_expired():
                logger.info("idle for %gs; exiting",
                            self.config.idle_exit_s)
                break
            self._stop.wait(self.config.tick_s)

    def _idle_expired(self) -> bool:
        if self.config.idle_exit_s is None:
            return False
        busy = (self.queue.depth()["open"] > 0
                or bool(self.fleet.busy_slots()))
        now = time.monotonic()
        if busy:
            self._last_active = now
            return False
        return now - self._last_active > self.config.idle_exit_s

    def close(self) -> None:
        """Graceful teardown: fleet, sockets, registry record, pid file.

        Running jobs are *not* drained — their workers are killed and
        the journal keeps them ``running``, so the next daemon on this
        directory recovers them.  That asymmetry is deliberate: stop
        must be fast and is exactly the crash path, minus the crash.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self.fleet is not None:
            self.fleet.shutdown()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
        if self.channel is not None:
            self.channel.publish(
                "service.stop",
                jobs_done=self.jobs_done,
                jobs_failed=self.jobs_failed,
            )
        if self.serve_run is not None:
            self.serve_run.finalize(
                status="done",
                summary=self._summary(),
            )
        if self.channel is not None:
            self.channel.close()
            set_telemetry(None)
        set_event_log(getattr(self, "_prev_event_log", None))
        set_metrics(getattr(self, "_prev_metrics", None))
        if getattr(self, "_sink", None) is not None:
            self._sink.close()
        if self.queue is not None:
            self.queue.close()
        for path in (self.socket_path, self.pid_path):
            try:
                path.unlink()
            except OSError:
                pass

    def _summary(self) -> dict[str, Any]:
        stats = self.fleet.stats() if self.fleet is not None else {}
        depth = self.queue.depth() if self.queue is not None else {}
        return {
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "retries": self.retries,
            "overloads": self.overloads,
            "degraded_jobs": stats.get("degraded_jobs", 0),
            "timeouts": stats.get("timeouts", 0),
            "lost_workers": stats.get("lost_workers", 0),
            "queue": depth,
        }

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- dispatch ------------------------------------------------------------

    def _checkpoint_path(self, job_id: str) -> Path:
        job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        return job_dir / "checkpoint.npz"

    def _dispatch_ready(self) -> None:
        while self.fleet.idle_slots():
            job = self.queue.claim_next()
            if job is None:
                return
            ckpt = self._checkpoint_path(job.id)
            resumed = ckpt.exists()
            extra: dict[str, Any] = {}
            # The registry run must exist *before* the worker starts:
            # its directory is where the worker streams the attempt's
            # span NDJSON that trace assembly stitches later.
            if job.id not in self._job_runs and self.registry is not None:
                handle = self.registry.register("job", config={
                    "job_id": job.id,
                    "tag": job.spec.tag,
                    "basis": job.spec.basis,
                    "algorithm": job.spec.algorithm,
                    "backend": job.spec.backend,
                    "nranks": job.spec.nranks,
                    "nthreads": job.spec.nthreads,
                    "trace_id": job.trace_id,
                })
                if handle is not None:
                    self._job_runs[job.id] = handle
                    extra["run_id"] = handle.run_id
            handle = self._job_runs.get(job.id)
            trace: dict[str, Any] | None = None
            if job.trace_id is not None and handle is not None:
                trace = {
                    "trace_id": job.trace_id,
                    "root_span_id": job.root_span_id,
                    "obs_dir": str(handle.path("trace")),
                }
            now_pt = time.perf_counter()
            timing = self._timing.setdefault(job.id, {
                "submit_pt": (job.client_t if job.client_t is not None
                              else now_pt),
                "ready_pt": now_pt,
                "queue_wait": 0.0,
                "run": 0.0,
            })
            timing["queue_wait"] += max(0.0, now_pt - timing["ready_pt"])
            timing["dispatch_pt"] = now_pt
            info = self.fleet.dispatch(job, checkpoint=ckpt, restart=ckpt,
                                       trace=trace)
            if resumed:
                # Journaled on the running transition so trace assembly
                # can synthesize the checkpoint.resume segment.
                extra["resumed"] = True
            if info["degraded"] and not job.degraded:
                extra["degraded"] = True
                self.channel.publish(
                    "service.degraded",
                    job=job.id,
                    reason="process budget exhausted",
                    budget=self.config.process_budget,
                    in_use=self.fleet.process_ranks_in_use(),
                )
                handle = self._job_runs.get(job.id)
                if handle is not None:
                    handle.record["degraded"] = True
                    handle.save()
            if extra:
                self.queue.transition(job.id, "running", **extra)
            self.channel.publish(
                "job.dispatched",
                job=job.id,
                attempt=job.attempt,
                slot=info["slot"],
                degraded=bool(info["degraded"] or job.degraded),
                resumed=job.interrupted or job.attempt > 1,
            )

    def _close_attempt_timing(self, job_id: str) -> dict[str, float]:
        """Fold the finished attempt into the job's latency accounting."""
        now_pt = time.perf_counter()
        timing = self._timing.setdefault(job_id, {
            "submit_pt": now_pt, "ready_pt": now_pt,
            "queue_wait": 0.0, "run": 0.0,
        })
        dispatch_pt = timing.pop("dispatch_pt", None)
        if dispatch_pt is not None:
            timing["run"] += max(0.0, now_pt - dispatch_pt)
        return timing

    def _latency_fields(self, job_id: str) -> dict[str, float]:
        """Terminal latency decomposition; pops the accounting entry."""
        timing = self._close_attempt_timing(job_id)
        self._timing.pop(job_id, None)
        total = max(0.0, time.perf_counter() - timing["submit_pt"])
        return {
            "queue_wait_s": round(timing["queue_wait"], 6),
            "run_s": round(timing["run"], 6),
            "total_s": round(total, 6),
        }

    def _observe_slo(self, job: Any, latency: dict[str, float],
                     *, failed: bool) -> None:
        if self.slo is None:
            return
        self.slo.observe_job(
            job_class(job.spec),
            queue_wait_s=latency["queue_wait_s"],
            run_s=latency["run_s"],
            total_s=latency["total_s"],
            failed=failed,
            job_id=job.id,
        )

    def _fold_outcome(self, outcome: JobOutcome) -> None:
        try:
            job = self.queue.get(outcome.job_id)
        except JobNotFound:  # pragma: no cover - cannot happen via fleet
            logger.warning("outcome for unknown job %s", outcome.job_id)
            return
        if outcome.kind == "done":
            self.jobs_done += 1
            latency = self._latency_fields(job.id)
            # The latency decomposition is journaled inside the result
            # payload, so batch clients read per-job queue-wait straight
            # from the acknowledged record (no telemetry tap needed).
            result = {**outcome.payload, **latency}
            self.queue.transition(
                job.id, "done",
                result=result,
                degraded=bool(job.degraded or result.get("degraded")),
                error=None, error_type=None,
            )
            self.channel.publish(
                "job.done",
                job=job.id,
                attempt=job.attempt,
                energy=result.get("energy"),
                iterations=result.get("iterations"),
                degraded=bool(job.degraded),
                warm_setup=result.get("warm_setup"),
                job_class=job_class(job.spec),
                **latency,
            )
            self._observe_slo(job, latency, failed=False)
            self._finalize_job_run(job.id, "done", summary={
                "energy": result.get("energy"),
                "converged": result.get("converged"),
                "iterations": result.get("iterations"),
                "attempts": job.attempt,
                "degraded": bool(job.degraded),
                **latency,
            })
            return

        # failed / lost / timeout
        error = outcome.payload.get("error", "job failed")
        error_type = outcome.payload.get("error_type")
        verdict = outcome.payload.get("classification") or classify(error_type)
        if verdict != TERMINAL and self.policy.should_retry(
            job.attempt, error_type
        ):
            delay = self.policy.delay_s(job.id, job.attempt)
            self.retries += 1
            timing = self._close_attempt_timing(job.id)
            # The backoff gate reopens queue-wait accounting then.
            timing["ready_pt"] = time.perf_counter() + delay
            self.queue.transition(
                job.id, "retrying",
                not_before=time.time() + delay,
                error=error, error_type=error_type,
            )
            self.channel.publish(
                "job.retrying",
                job=job.id,
                attempt=job.attempt,
                delay_s=round(delay, 4),
                error_type=error_type,
                outcome=outcome.kind,
            )
        else:
            self.jobs_failed += 1
            latency = self._latency_fields(job.id)
            self.queue.transition(
                job.id, "failed", error=error, error_type=error_type,
            )
            self.channel.publish(
                "job.failed",
                job=job.id,
                attempt=job.attempt,
                error_type=error_type,
                terminal=verdict == TERMINAL,
                outcome=outcome.kind,
                job_class=job_class(job.spec),
                **latency,
            )
            self._observe_slo(job, latency, failed=True)
            self._finalize_job_run(job.id, "failed", summary={
                "error": error,
                "error_type": error_type,
                "attempts": job.attempt,
                **latency,
            })

    def _finalize_job_run(self, job_id: str, status: str,
                          summary: dict[str, Any] | None = None) -> None:
        handle = self._job_runs.pop(job_id, None)
        if handle is not None:
            handle.finalize(status=status, summary=summary)
        self._prune_registry()

    def _prune_registry(self) -> None:
        """Apply the ``--keep`` retention policy after each job settles."""
        if self.registry is None or self.config.keep_runs is None:
            return
        protect = {h.run_id for h in self._job_runs.values()}
        if self.serve_run is not None:
            protect.add(self.serve_run.run_id)
        try:
            self.registry.prune(keep_last=self.config.keep_runs,
                                protect=protect)
        except OSError as exc:  # pragma: no cover - fs failure path
            logger.warning("registry prune failed: %s", exc)

    # -- request handling ----------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while True:
            try:
                client, _ = self._server.accept()
            except OSError:
                return  # server closed
            threading.Thread(
                target=self._serve_client, args=(client,),
                name="service-request", daemon=True,
            ).start()

    def _serve_client(self, client: socket.socket) -> None:
        client.settimeout(10.0)
        try:
            try:
                request = json.loads(recv_line(client).decode() or "{}")
                response = self._handle(request)
            except ServiceError as exc:
                response = {"ok": False, "error": str(exc),
                            "error_type": type(exc).__name__}
                for attr in ("depth", "max_depth"):
                    value = getattr(exc, attr, None)
                    if value is not None:
                        response[attr] = value
            except Exception as exc:
                logger.exception("request handling failed")
                response = {"ok": False, "error": str(exc) or repr(exc),
                            "error_type": type(exc).__name__}
            client.sendall((json.dumps(response) + "\n").encode())
        except OSError:
            pass  # client went away; nothing to tell it
        finally:
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass

    def _handle(self, request: dict[str, Any]) -> dict[str, Any]:
        cmd = request.get("cmd")
        if cmd == "ping":
            return {
                "ok": True,
                "pid": os.getpid(),
                "socket": str(self.socket_path),
                "depth": self.queue.depth(),
                "fleet": self.fleet.stats(),
            }
        if cmd == "submit":
            spec = JobSpec.from_dict(request.get("spec") or {})
            try:
                job = self.queue.submit(spec, trace=request.get("trace"))
            except ServiceError:
                self.overloads += 1
                self.channel.publish(
                    "service.overloaded",
                    depth=self.queue.depth()["open"],
                    max_depth=self.config.max_queue_depth,
                )
                raise
            now_pt = time.perf_counter()
            self._timing[job.id] = {
                "submit_pt": (job.client_t if job.client_t is not None
                              else now_pt),
                "ready_pt": now_pt,
                "queue_wait": 0.0,
                "run": 0.0,
            }
            self._last_active = time.monotonic()
            self.channel.publish(
                "job.submitted",
                job=job.id, tag=spec.tag, basis=spec.basis,
                algorithm=spec.algorithm, backend=spec.backend,
                trace_id=job.trace_id,
            )
            return {"ok": True, "job": job.public_dict()}
        if cmd == "status":
            job_id = request.get("id")
            if job_id is None:
                return {
                    "ok": True,
                    "jobs": [j.public_dict() for j in self.queue],
                    "depth": self.queue.depth(),
                    "fleet": self.fleet.stats(),
                    "summary": self._summary(),
                    "slo": self.slo.report() if self.slo else None,
                }
            return {"ok": True, "job": self.queue.get(job_id).public_dict()}
        if cmd == "cancel":
            job = self.queue.get(request.get("id") or "")
            was_open = job.open
            if job.state == "running":
                self.fleet.cancel_job(job.id)
                self.queue.transition(job.id, "cancelled",
                                      error="cancelled while running",
                                      error_type="JobCancelled")
            else:
                self.queue.cancel(job.id)  # idempotent on terminal jobs
            if was_open and job.state == "cancelled":
                self.jobs_cancelled += 1
                self.channel.publish("job.cancelled", job=job.id)
                self._finalize_job_run(job.id, "cancelled")
            return {"ok": True, "job": job.public_dict()}
        if cmd == "shutdown":
            self._stop.set()
            return {"ok": True, "pid": os.getpid()}
        raise ServiceError(f"unknown command {cmd!r}")


def serve(config: ServiceConfig) -> int:
    """Run a daemon to completion (the ``repro serve`` entry point)."""
    with ServiceDaemon(config) as daemon:
        daemon.install_signal_handlers()
        daemon.run_forever()
    return 0
