"""Client side of the SCF service: socket helpers + :class:`JobClient`.

The wire protocol is deliberately minimal — one NDJSON request line,
one NDJSON response line, connection per request (the request rate of
a job service is tiny; connection reuse would buy nothing but state):

    -> {"cmd": "submit", "spec": {...}}
    <- {"ok": true, "job": {...}}

    -> {"cmd": "status", "id": "j000003"}
    <- {"ok": true, "job": {...}}

    -> {"cmd": "cancel", "id": "j0000"}       # prefixes resolve
    <- {"ok": false, "error": "...", "error_type": "JobNotFound"}

Failed responses carry ``error_type``; :func:`~repro.service.errors
.error_from_response` turns them back into typed exceptions, so
``ServiceOverloaded`` is catchable on the client exactly as the daemon
raised it.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any

from repro.obs.tracer import (
    TraceContext,
    format_traceparent,
    new_span_id,
    new_trace_id,
)
from repro.service.errors import (
    JobTimeoutError,
    ServiceError,
    ServiceUnavailable,
    error_from_response,
)
from repro.service.jobs import TERMINAL_STATES, JobSpec

#: Default service state directory, relative to the working directory.
DEFAULT_SERVICE_DIR = Path(".repro") / "service"

#: sun_path budget (same guard the telemetry bus uses).
_MAX_SOCKET_PATH = 100

#: Cap on one NDJSON reply (an XYZ geometry travels inline; 8 MiB is
#: orders of magnitude above any real job, small enough to bound abuse).
MAX_LINE = 8 << 20


def service_socket_path(service_dir: str | Path) -> Path:
    """The request socket of a service directory, short enough to bind.

    Mirrors :func:`repro.obs.telemetry.default_socket_path`: when the
    directory is nested too deep for ``sun_path``, fall back to a short
    per-user name under the temp directory, keyed by a hash of the
    intended path so distinct service dirs keep distinct sockets.
    """
    candidate = Path(service_dir) / "service.sock"
    if len(str(candidate)) <= _MAX_SOCKET_PATH:
        return candidate
    import hashlib
    import tempfile

    key = hashlib.sha256(str(candidate).encode()).hexdigest()[:12]
    return Path(tempfile.gettempdir()) / f"repro-service-{key}.sock"


def recv_line(sock: socket.socket, *, max_bytes: int = MAX_LINE) -> bytes:
    """Read one newline-terminated record (or until EOF)."""
    chunks = bytearray()
    while b"\n" not in chunks:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks += chunk
        if len(chunks) > max_bytes:
            raise ServiceError("wire record exceeds the line cap")
    line, _, _ = bytes(chunks).partition(b"\n")
    return line


class JobClient:
    """Typed client for a running ``repro serve`` daemon."""

    def __init__(
        self,
        service_dir: str | Path = DEFAULT_SERVICE_DIR,
        *,
        socket_path: str | Path | None = None,
        timeout_s: float = 10.0,
    ) -> None:
        self.service_dir = Path(service_dir)
        self.socket_path = (
            Path(socket_path) if socket_path is not None
            else service_socket_path(self.service_dir)
        )
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------------

    def request(self, cmd: str, **fields: Any) -> dict[str, Any]:
        """One request/response round trip; raises typed service errors."""
        payload = json.dumps({"cmd": cmd, **fields}) + "\n"
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        try:
            try:
                sock.connect(str(self.socket_path))
            except (FileNotFoundError, ConnectionRefusedError) as exc:
                raise ServiceUnavailable(
                    f"no daemon listening at {self.socket_path} "
                    f"(start one with: repro serve)"
                ) from exc
            sock.sendall(payload.encode())
            line = recv_line(sock)
        except socket.timeout as exc:
            raise ServiceUnavailable(
                f"daemon at {self.socket_path} did not answer within "
                f"{self.timeout_s:g}s"
            ) from exc
        finally:
            sock.close()
        if not line:
            raise ServiceUnavailable(
                f"daemon at {self.socket_path} hung up without replying"
            )
        response = json.loads(line.decode())
        if not response.get("ok", False):
            raise error_from_response(response)
        return response

    # -- verbs ---------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Daemon liveness + queue/fleet statistics."""
        return self.request("ping")

    def submit(
        self,
        spec: JobSpec | dict[str, Any],
        *,
        context: TraceContext | None = None,
    ) -> dict[str, Any]:
        """Submit one job; returns its public record (with the new id).

        Every submit originates a distributed trace: a fresh W3C trace
        context (or the caller's ``context``, to join an existing
        trace) travels in the request's ``trace`` field alongside the
        client's ``perf_counter`` reading, and the returned record
        carries the job's adopted ``trace_id``.  perf_counter is
        CLOCK_MONOTONIC — shared with the daemon and its workers on
        one host — which is what lets trace assembly place the
        client-side submit on the merged timeline.
        """
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        ctx = context or TraceContext(new_trace_id(), new_span_id())
        trace = {
            "traceparent": format_traceparent(ctx),
            "client_t": time.perf_counter(),
        }
        return self.request("submit", spec=spec_dict, trace=trace)["job"]

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        """One job's record, or the full queue listing + service stats."""
        if job_id is None:
            return self.request("status")
        return self.request("status", id=job_id)["job"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.request("cancel", id=job_id)["job"]

    def result(
        self,
        job_id: str,
        *,
        wait: bool = True,
        timeout_s: float = 600.0,
        poll_s: float = 0.2,
    ) -> dict[str, Any]:
        """The job's record once terminal; polls while ``wait``.

        Raises :class:`~repro.service.errors.JobTimeoutError` when the
        *client-side* wait budget runs out (the job itself keeps
        whatever state it has — this does not cancel it).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.status(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if not wait:
                return job
            if time.monotonic() > deadline:
                raise JobTimeoutError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout_s:g}s of client-side waiting"
                )
            time.sleep(poll_s)

    def shutdown_daemon(self) -> dict[str, Any]:
        """Ask the daemon to stop gracefully (drains nothing: running
        jobs are interrupted and journal-recovered on the next start)."""
        return self.request("shutdown")


def probe_socket(path: str | Path, *, timeout_s: float = 1.0) -> bool:
    """True when something accepts connections at ``path``.

    The stale-socket test: an AF_UNIX path whose owner died still
    exists on disk but refuses connects, so a failed probe means the
    path may be unlinked and re-bound.
    """
    if not os.path.exists(path):
        return False
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout_s)
    try:
        sock.connect(str(path))
    except (ConnectionRefusedError, FileNotFoundError):
        return False
    except OSError:
        # EACCES, ETIMEDOUT, ...: someone owns it; treat as live rather
        # than yank a socket out from under a possibly-healthy daemon.
        return True
    else:
        return True
    finally:
        sock.close()
