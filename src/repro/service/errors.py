"""Typed errors of the SCF service layer.

Mirrors :mod:`repro.resilience.errors`: every failure mode a client or
the daemon can hit has its own class, so callers react programmatically
— back off and resubmit on :class:`ServiceOverloaded`, treat
:class:`JobNotFound` as a user error, keep retrying connects on
:class:`ServiceUnavailable` while a daemon restarts.

Errors cross the NDJSON wire as ``{"ok": false, "error": <message>,
"error_type": <class name>}``; :func:`error_from_response` rebuilds the
typed exception on the client side.
"""

from __future__ import annotations

from typing import Any


class ServiceError(RuntimeError):
    """Base class of all service-layer errors."""


class ServiceUnavailable(ServiceError):
    """No daemon is listening on the service socket."""


class ServiceOverloaded(ServiceError):
    """Admission control rejected a submission: queue depth at bound.

    Attributes
    ----------
    depth:
        Open jobs (pending + running + retrying) at rejection time.
    max_depth:
        The configured admission bound.
    """

    def __init__(self, message: str, *, depth: int | None = None,
                 max_depth: int | None = None) -> None:
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth


class JobNotFound(ServiceError, KeyError):
    """No job with the requested id (or ambiguous prefix)."""


class JobSpecError(ServiceError, ValueError):
    """A job specification is malformed (bad algorithm, backend, ...)."""


class ManifestError(ServiceError, ValueError):
    """A workload manifest is malformed (bad syntax, bad entry, ...).

    Messages carry ``<file>:<line>`` (NDJSON) or ``<file>: job[<k>]``
    (TOML) locators so a thousand-job manifest pinpoints its one bad
    entry.  Registered in :data:`_WIRE_TYPES`: a daemon asked to ingest
    a broken manifest rejects it with this exact type on the wire, so
    batch clients can distinguish "fix your manifest" from transient
    service trouble."""


class JobTimeoutError(ServiceError):
    """A job exceeded its wall-clock deadline and its worker was killed."""


class WorkerLostError(ServiceError):
    """A fleet worker process died while running a job."""


class DaemonAlreadyRunning(ServiceError):
    """Another live daemon already owns the service socket."""


#: Wire ``error_type`` -> exception class, for client-side rehydration.
_WIRE_TYPES: dict[str, type[ServiceError]] = {
    cls.__name__: cls
    for cls in (
        ServiceError, ServiceUnavailable, ServiceOverloaded, JobNotFound,
        JobSpecError, ManifestError, JobTimeoutError, WorkerLostError,
        DaemonAlreadyRunning,
    )
}


def error_from_response(response: dict[str, Any]) -> ServiceError:
    """Rebuild the typed exception carried by an ``{"ok": false}`` reply."""
    message = str(response.get("error", "service request failed"))
    cls = _WIRE_TYPES.get(str(response.get("error_type")), ServiceError)
    if cls is ServiceOverloaded:
        return ServiceOverloaded(
            message,
            depth=response.get("depth"),
            max_depth=response.get("max_depth"),
        )
    return cls(message)
