"""Job model of the SCF service: specs, states, and wire serialization.

A *job* is one SCF request — geometry, basis, algorithm, execution
knobs — plus the mutable bookkeeping the durable queue journals: state,
attempt count, scheduling gate, last error, result summary.  Both
halves are plain-dict serializable because they cross two boundaries:
the NDJSON client socket and the write-ahead journal.

State machine (every transition is journaled by
:class:`~repro.service.queue.DurableJobQueue`)::

    submitted (pending) -> running -> done
                              |-> retrying -> (pending again, after backoff)
                              |-> failed        (terminal classification
                              |                  or retry budget exhausted)
                              '-> cancelled
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.service.errors import JobSpecError

#: Legal algorithm / backend / schedule values (mirrors the CLI).
ALGORITHMS = ("mpi-only", "private-fock", "shared-fock")
BACKENDS = ("sim", "process")
SCHEDULES = ("dlb", "static", "guided", "steal")

#: All job states, in lifecycle order.
JOB_STATES = ("pending", "running", "retrying", "done", "failed", "cancelled")

#: States a job never leaves.  ``done`` is the *acknowledged* state:
#: the result summary is journaled (fsync'd) in the same record, so a
#: daemon SIGKILL after the transition can never lose or re-run it.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobSpec:
    """One SCF request, self-contained (the XYZ text travels inline).

    The chaos knobs (``fault_plan``, ``sleep_s``, ``cycle_delay_s``,
    ``die_on_attempt`` / ``die_after_builds``) exist for the same
    reason :class:`~repro.resilience.faults.FaultPlan` does: crash
    recovery that is only exercised by real crashes is untested crash
    recovery.  ``fault_plan`` injects *intra-run* faults (the PR-3
    machinery); ``die_on_attempt`` makes the *service worker process*
    itself ``os._exit`` mid-job on that attempt; ``sleep_s`` wedges the
    worker before any heartbeat so deadline kill-and-respawn fires.
    """

    xyz: str
    basis: str = "sto-3g"
    algorithm: str = "shared-fock"
    nranks: int = 1
    nthreads: int = 1
    backend: str = "sim"
    schedule: str = "dlb"
    charge: int = 0
    eri_cache_mb: float | None = 64.0
    incremental: bool = False
    max_iterations: int | None = None
    fault_plan: str | None = None
    tag: str | None = None
    # -- chaos/testing knobs -------------------------------------------------
    sleep_s: float = 0.0
    cycle_delay_s: float = 0.0
    die_on_attempt: int | None = None
    die_after_builds: int = 1

    def validate(self) -> None:
        """Raise :class:`JobSpecError` on any out-of-range field."""
        if not self.xyz or not self.xyz.strip():
            raise JobSpecError("spec.xyz is empty")
        if self.algorithm not in ALGORITHMS:
            raise JobSpecError(
                f"unknown algorithm {self.algorithm!r}; "
                f"choose from {ALGORITHMS}"
            )
        if self.backend not in BACKENDS:
            raise JobSpecError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.schedule not in SCHEDULES:
            raise JobSpecError(
                f"unknown schedule {self.schedule!r}; choose from {SCHEDULES}"
            )
        for name in ("nranks", "nthreads"):
            if int(getattr(self, name)) < 1:
                raise JobSpecError(f"spec.{name} must be >= 1")
        if self.algorithm == "mpi-only" and self.nthreads != 1:
            raise JobSpecError("mpi-only requires nthreads == 1")
        if self.eri_cache_mb is not None and self.eri_cache_mb <= 0:
            raise JobSpecError("spec.eri_cache_mb must be > 0 (or null)")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise JobSpecError("spec.max_iterations must be >= 1")
        for name in ("sleep_s", "cycle_delay_s"):
            if float(getattr(self, name)) < 0:
                raise JobSpecError(f"spec.{name} must be >= 0")
        if self.die_on_attempt is not None and self.die_on_attempt < 1:
            raise JobSpecError("spec.die_on_attempt must be >= 1")
        if self.die_after_builds < 0:
            raise JobSpecError("spec.die_after_builds must be >= 0")

    def setup_key(self) -> str:
        """Cache key of the expensive setup (molecule + basis + charge).

        Two jobs with the same key share integrals/Schwarz setup, which
        is what keeps a persistent worker "warm" across a stream of
        requests for the same system.
        """
        h = hashlib.sha256()
        h.update(self.xyz.encode())
        h.update(f"|{self.basis}|{self.charge}".encode())
        return h.hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise JobSpecError(f"unknown spec field(s): {sorted(unknown)}")
        if "xyz" not in data:
            raise JobSpecError("spec.xyz is required")
        return cls(**data)


@dataclass
class Job:
    """One queued job: the spec plus journaled mutable state."""

    id: str
    spec: JobSpec
    state: str = "pending"
    attempt: int = 0  # attempts *started* so far
    submitted_at: float = field(default_factory=time.time)
    not_before: float = 0.0  # wall-clock gate for retry backoff
    interrupted: bool = False  # was running when a daemon died/stopped
    degraded: bool = False  # ran (or will run) on the sim fallback
    error: str | None = None
    error_type: str | None = None
    result: dict[str, Any] | None = None
    run_id: str | None = None  # registry record of the latest attempt
    # -- distributed trace context (W3C-style, journaled at submit) ----------
    trace_id: str | None = None  # 32-hex id shared by every span of the job
    parent_span_id: str | None = None  # client-side submit span, if any
    root_span_id: str | None = None  # the job root span all attempts parent on
    client_t: float | None = None  # client's perf_counter at submit

    @property
    def open(self) -> bool:
        """True while the job still occupies queue capacity."""
        return self.state not in TERMINAL_STATES

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["spec"] = self.spec.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Job":
        data = dict(data)
        spec = JobSpec.from_dict(data.pop("spec"))
        return cls(spec=spec, **data)

    def public_dict(self) -> dict[str, Any]:
        """The client-facing view (spec reduced to its headline fields)."""
        return {
            "id": self.id,
            "state": self.state,
            "attempt": self.attempt,
            "submitted_at": self.submitted_at,
            "not_before": self.not_before,
            "interrupted": self.interrupted,
            "degraded": self.degraded,
            "error": self.error,
            "error_type": self.error_type,
            "result": self.result,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "tag": self.spec.tag,
            "basis": self.spec.basis,
            "algorithm": self.spec.algorithm,
            "backend": self.spec.backend,
            "nranks": self.spec.nranks,
            "nthreads": self.spec.nthreads,
        }


def degraded_spec(spec: JobSpec) -> JobSpec:
    """The sim-backend fallback of a process-backend spec."""
    return replace(spec, backend="sim")
