"""Seeded-deterministic retry policy: classification + capped backoff.

Two decisions live here, both pure functions of their inputs so the
whole retry behavior of a service is reproducible from its
configuration:

* **Classification** — is a failure *terminal* (retrying cannot help:
  the SCF genuinely did not converge, the spec is malformed) or
  *retryable* (infrastructure died underneath a healthy job: a worker
  process was killed, a build timed out, shared memory ran out)?
  Unknown failure types default to retryable — the crash-safe bias —
  because the retry cap bounds the damage of a wrong guess, whereas
  wrongly calling an infrastructure hiccup terminal loses the job.
* **Backoff** — capped exponential delay with *seeded* jitter: the
  jitter factor is drawn from ``default_rng([seed, crc32(job_id),
  attempt])``, so the same (seed, job, attempt) always produces the
  same delay.  Same seed => same retry schedule, which is what makes
  chaos tests assert timing-dependent behavior exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

#: Classification labels.
TERMINAL = "terminal"
RETRYABLE = "retryable"

#: Exception type names that retrying cannot fix.  Convergence failures
#: are the canonical case: the same molecule will fail the same way on
#: every attempt.  Spec/validation errors are caller bugs.
TERMINAL_TYPES = frozenset({
    "SCFConvergenceError",
    "JobSpecError",
    "FaultSpecError",
    "CheckpointError",
    "NonFiniteDensityError",
    "ValueError",
    "TypeError",
    "KeyError",
    "JobCancelled",
})

#: Exception type names that are infrastructure failures by definition.
RETRYABLE_TYPES = frozenset({
    "WorkerLostError",
    "JobTimeoutError",
    "BuildTimeoutError",
    "RankLostError",
    "CorruptContributionError",
    "OSError",
    "MemoryError",
    "ConnectionError",
    "BrokenPipeError",
    "EOFError",
})


def classify(error_type: str | BaseException | None) -> str:
    """``TERMINAL`` or ``RETRYABLE`` for an exception (or its type name).

    Accepts either a live exception — classified by its MRO so
    subclasses of known types inherit the verdict — or the bare class
    name string a worker shipped across the process boundary.
    """
    if error_type is None:
        return RETRYABLE
    if isinstance(error_type, BaseException):
        names = [cls.__name__ for cls in type(error_type).__mro__]
    else:
        names = [str(error_type)]
    for name in names:
        if name in TERMINAL_TYPES:
            return TERMINAL
        if name in RETRYABLE_TYPES:
            return RETRYABLE
    return RETRYABLE


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes
    ----------
    max_retries:
        Re-run budget *after* the first attempt (0 disables retries).
    backoff_base_s:
        Delay before the first retry; attempt ``k`` waits
        ``base * 2**(k-1)``, capped.
    backoff_cap_s:
        Upper bound on any single delay.
    jitter:
        Half-width of the multiplicative jitter band: the delay is
        scaled by a factor in ``[1 - jitter, 1 + jitter]``.
    seed:
        Jitter seed.  The same seed reproduces the same schedule for
        every (job, attempt) — seeded determinism, like ``FaultPlan``.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got "
                             f"{self.max_retries}")
        if self.backoff_base_s <= 0:
            raise ValueError(f"backoff_base_s must be > 0, got "
                             f"{self.backoff_base_s}")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delay_s(self, job_id: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of a job."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0:
            return base
        key = zlib.crc32(job_id.encode())
        rng = np.random.default_rng([self.seed, key, attempt])
        factor = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base * factor

    def schedule(self, job_id: str) -> list[float]:
        """The job's full retry-delay schedule (length ``max_retries``)."""
        return [self.delay_s(job_id, k)
                for k in range(1, self.max_retries + 1)]

    def should_retry(self, attempt: int,
                     error_type: str | BaseException | None) -> bool:
        """Whether attempt number ``attempt`` (1-based, just failed)
        earns another try."""
        if classify(error_type) == TERMINAL:
            return False
        return attempt <= self.max_retries
