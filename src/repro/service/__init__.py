"""SCF-as-a-service: durable job queue, supervised worker fleet, client.

The paper's production context — Hartree-Fock on thousands of Xeon Phi
nodes — never runs one SCF and exits; jobs stream through long-lived
allocations where node failures, stragglers, and non-convergent
systems are routine.  This package is that operational layer over the
repo's SCF stack:

* :mod:`repro.service.queue` — write-ahead-journaled job queue; a
  SIGKILL'd daemon loses nothing it acknowledged;
* :mod:`repro.service.supervisor` — persistent worker fleet with
  heartbeat liveness, per-job deadlines, kill-and-respawn;
* :mod:`repro.service.retry` — seeded-deterministic backoff and
  terminal-vs-retryable failure classification;
* :mod:`repro.service.daemon` — the ``repro serve`` process;
* :mod:`repro.service.client` — :class:`JobClient` and the CLI verbs
  ``repro submit`` / ``status`` / ``result`` / ``cancel``.
"""

from repro.service.client import (
    DEFAULT_SERVICE_DIR,
    JobClient,
    probe_socket,
    service_socket_path,
)
from repro.service.daemon import ServiceConfig, ServiceDaemon, serve
from repro.service.errors import (
    DaemonAlreadyRunning,
    JobNotFound,
    JobSpecError,
    JobTimeoutError,
    ManifestError,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
    WorkerLostError,
)
from repro.service.jobs import (
    ALGORITHMS,
    BACKENDS,
    JOB_STATES,
    SCHEDULES,
    TERMINAL_STATES,
    Job,
    JobSpec,
)
from repro.service.queue import DEFAULT_MAX_DEPTH, DurableJobQueue
from repro.service.retry import RETRYABLE, TERMINAL, RetryPolicy, classify
from repro.service.supervisor import WorkerFleet, run_job

__all__ = [
    "ALGORITHMS",
    "BACKENDS",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_SERVICE_DIR",
    "DaemonAlreadyRunning",
    "DurableJobQueue",
    "JOB_STATES",
    "Job",
    "JobClient",
    "JobNotFound",
    "JobSpec",
    "JobSpecError",
    "JobTimeoutError",
    "ManifestError",
    "RETRYABLE",
    "RetryPolicy",
    "SCHEDULES",
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnavailable",
    "TERMINAL",
    "TERMINAL_STATES",
    "WorkerFleet",
    "WorkerLostError",
    "classify",
    "probe_socket",
    "run_job",
    "serve",
    "service_socket_path",
]
