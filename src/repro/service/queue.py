"""Durable job queue: every state transition is a write-ahead journal line.

The queue's only source of truth is an append-only NDJSON journal.
Each record is written, flushed, **and fsync'd** before the in-memory
state changes, so the on-disk journal is always at least as new as
anything the daemon has acknowledged to a client:

* ``{"op": "submit", "job": {...}}``     — a new job, full spec inline
* ``{"op": "state", "id": ..., "state": ..., ...fields}`` — a transition
* ``{"op": "recover", ...}``             — a replay marker written when
  a restarted daemon adopts the journal

Crash model: a SIGKILL'd daemon loses nothing it acknowledged.
Replay (:meth:`DurableJobQueue.replay`) folds the journal back into
jobs; jobs that were ``running`` at the crash return to ``pending``
with ``interrupted=True`` (the dispatcher resumes them from their PR-3
``.npz`` checkpoint when one exists), ``retrying`` jobs keep their
backoff gate, and terminal jobs — ``done`` is the *acknowledged* state
— are preserved verbatim, never re-run.  A torn final line (the crash
hit mid-append) is tolerated and dropped: by write ordering it can only
describe a transition that was never acknowledged.

Admission control lives here too: :meth:`submit` raises
:class:`~repro.service.errors.ServiceOverloaded` once the open-job
count (pending + running + retrying) reaches ``max_depth`` — shedding
load with a typed rejection instead of letting the backlog grow
without bound.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.tracer import new_span_id, new_trace_id, parse_traceparent
from repro.service.errors import JobNotFound, ServiceOverloaded
from repro.service.jobs import Job, JobSpec, TERMINAL_STATES

logger = logging.getLogger("repro.service.queue")

#: Default admission bound on open jobs.
DEFAULT_MAX_DEPTH = 64


class DurableJobQueue:
    """FIFO job queue whose every mutation is journaled before it happens.

    Thread-safe: client handler threads submit/cancel while the
    dispatch loop claims and completes, all under one lock.  The
    journal file handle is owned by the queue; :meth:`close` releases
    it.
    """

    def __init__(
        self,
        journal: str | Path,
        *,
        max_depth: int | None = DEFAULT_MAX_DEPTH,
        fsync: bool = True,
        clock: Callable[[], float] = time.time,
        pclock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.journal_path = Path(journal)
        self.max_depth = max_depth
        self.fsync = fsync
        self.clock = clock
        self.pclock = pclock
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []  # submission order (FIFO dispatch)
        self._lock = threading.RLock()
        self._seq = 0
        self.replayed = 0  # journal lines folded in at startup
        self.recovered_jobs: list[str] = []  # running -> pending at replay
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        if self.journal_path.exists():
            self.replay()
        self._fh = open(self.journal_path, "a", encoding="utf-8")
        if self.replayed:
            self._append({"op": "recover", "jobs": len(self.jobs),
                          "resumed": list(self.recovered_jobs)})

    # -- journal -------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        """Write one journal line durably (flush + fsync) before returning."""
        record.setdefault("t", self.clock())
        # perf_counter is CLOCK_MONOTONIC — shared across processes on
        # one host, so journal transitions land on the same time base
        # as worker span NDJSON (trace assembly aligns on "pt").
        record.setdefault("pt", self.pclock())
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def replay(self) -> None:
        """Rebuild queue state from the journal (startup only)."""
        jobs: dict[str, Job] = {}
        order: list[str] = []
        lines = self.journal_path.read_text(encoding="utf-8").split("\n")
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                # A torn tail from a mid-append crash describes a
                # transition that was never acknowledged; drop it.  A
                # torn line anywhere *else* would mean journal
                # corruption, which deserves a loud warning either way.
                logger.warning(
                    "dropping malformed journal line %d of %s",
                    i + 1, self.journal_path,
                )
                continue
            op = rec.get("op")
            if op == "submit":
                job = Job.from_dict(rec["job"])
                jobs[job.id] = job
                order.append(job.id)
            elif op == "state":
                job = jobs.get(rec.get("id", ""))
                if job is None:
                    logger.warning("journal transition for unknown job %s",
                                   rec.get("id"))
                    continue
                job.state = rec["state"]
                for name in ("attempt", "not_before", "degraded", "error",
                             "error_type", "result", "run_id"):
                    if name in rec:
                        setattr(job, name, rec[name])
            elif op == "recover":
                continue
            self.replayed += 1
        # Jobs the dead daemon left in flight: back to pending, flagged
        # interrupted so the dispatcher looks for their checkpoint.
        self.recovered_jobs = []
        for job in jobs.values():
            if job.state == "running":
                job.state = "pending"
                job.interrupted = True
                self.recovered_jobs.append(job.id)
            elif job.state == "retrying":
                job.state = "pending"  # keep not_before: backoff survives
        self.jobs = jobs
        self._order = order
        self._seq = max(
            (int(j[1:]) for j in jobs if j[1:].isdigit()), default=-1
        ) + 1

    # -- admission -----------------------------------------------------------

    def depth(self) -> dict[str, int]:
        """State histogram plus the open-job total."""
        with self._lock:
            out = {s: 0 for s in
                   ("pending", "running", "retrying", "done", "failed",
                    "cancelled")}
            for job in self.jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            out["open"] = sum(out[s] for s in ("pending", "running",
                                               "retrying"))
            return out

    def submit(self, spec: JobSpec,
               trace: dict[str, Any] | None = None,
               *, enforce_depth: bool = True) -> Job:
        """Admit one job, or shed it with :class:`ServiceOverloaded`.

        ``trace`` is the optional context dict a tracing client sends
        with the submit request: ``{"traceparent": "00-…-…-01",
        "client_t": <perf_counter>}``.  The job adopts the client's
        ``trace_id`` (minting a fresh one when absent or malformed, so
        old clients still get traced jobs) and a ``root_span_id`` that
        every worker attempt parents onto; both are journaled inside
        the submit record.

        ``enforce_depth=False`` bypasses admission control — used only
        by the daemon's own manifest intake (``repro serve
        --manifest``), where the whole workload is known up front and
        shedding the tail of its own batch would be self-defeating.
        Client submissions always enforce the bound.
        """
        spec.validate()
        ctx = parse_traceparent((trace or {}).get("traceparent", ""))
        client_t = (trace or {}).get("client_t")
        with self._lock:
            open_jobs = sum(1 for j in self.jobs.values() if j.open)
            if (enforce_depth and self.max_depth is not None
                    and open_jobs >= self.max_depth):
                raise ServiceOverloaded(
                    f"queue depth {open_jobs} at the admission bound "
                    f"{self.max_depth}; resubmit after the backlog drains",
                    depth=open_jobs, max_depth=self.max_depth,
                )
            job = Job(id=f"j{self._seq:06d}", spec=spec,
                      submitted_at=self.clock(),
                      trace_id=ctx.trace_id if ctx else new_trace_id(),
                      parent_span_id=ctx.span_id if ctx else None,
                      root_span_id=new_span_id(),
                      client_t=(float(client_t)
                                if isinstance(client_t, (int, float))
                                else None))
            self._seq += 1
            self._append({"op": "submit", "job": job.to_dict()})
            self.jobs[job.id] = job
            self._order.append(job.id)
            return job

    # -- lookup --------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Resolve an exact id or unambiguous prefix."""
        with self._lock:
            if job_id in self.jobs:
                return self.jobs[job_id]
            matches = [j for j in self._order if j.startswith(job_id)]
            if len(matches) == 1:
                return self.jobs[matches[0]]
            if not matches:
                raise JobNotFound(f"no job matches {job_id!r}")
            raise JobNotFound(
                f"{job_id!r} is ambiguous: matches {', '.join(matches[:5])}"
            )

    def __iter__(self) -> Iterator[Job]:
        with self._lock:
            return iter([self.jobs[j] for j in self._order])

    def __len__(self) -> int:
        with self._lock:
            return len(self.jobs)

    # -- transitions ---------------------------------------------------------

    def transition(self, job_id: str, state: str, **fields: Any) -> Job:
        """Journal then apply one state transition (plus field updates)."""
        with self._lock:
            job = self.get(job_id)
            self._append({"op": "state", "id": job.id, "state": state,
                          **fields})
            job.state = state
            for name, value in fields.items():
                setattr(job, name, value)
            return job

    def claim_next(self, now: float | None = None) -> Job | None:
        """Atomically move the first dispatchable job to ``running``.

        FIFO over submission order, gated by each job's ``not_before``
        (the retry backoff); ``retrying`` jobs become dispatchable the
        moment their gate passes.  Returns ``None`` when nothing is
        ready.
        """
        now = self.clock() if now is None else now
        with self._lock:
            for job_id in self._order:
                job = self.jobs[job_id]
                if job.state not in ("pending", "retrying"):
                    continue
                if job.not_before > now:
                    continue
                return self.transition(
                    job.id, "running", attempt=job.attempt + 1
                )
            return None

    def next_wakeup(self) -> float | None:
        """Earliest ``not_before`` among pending jobs still gated."""
        now = self.clock()
        with self._lock:
            gated = [j.not_before for j in self.jobs.values()
                     if j.state in ("pending", "retrying")
                     and j.not_before > now]
            return min(gated) if gated else None

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending/retrying job; running jobs raise (the daemon
        kills the worker first, then records the transition itself)."""
        with self._lock:
            job = self.get(job_id)
            if job.state in TERMINAL_STATES:
                return job  # idempotent
            if job.state == "running":
                raise ValueError(f"job {job.id} is running; the daemon "
                                 "must kill its worker before cancelling")
            return self.transition(job.id, "cancelled")

    def fileno(self) -> int:
        """The journal's fd (daemons exclude it from forked workers)."""
        return self._fh.fileno()

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    def __enter__(self) -> "DurableJobQueue":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
