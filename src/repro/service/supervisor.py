"""Supervised worker fleet: persistent processes that run SCF jobs.

The fleet is the service's execution layer.  Each *slot* owns one
long-lived forked worker process running :func:`_service_worker_loop`:
jobs arrive over a per-slot command queue, results and heartbeats come
back over one shared outcome queue.  Workers persist across jobs, so a
stream of requests for the same system reuses the warm
molecule/basis/Schwarz setup (:func:`run_job`'s ``setup_cache``) —
the job-level analogue of the paper's persistent MPI fleet amortizing
setup across Fock builds.

Supervision reuses the PR-6 :class:`~repro.parallel.backend.heartbeat
.HeartbeatMonitor` verbatim — one "rank" per slot, one "cycle" per job
attempt: workers beat at job start and at every Fock-build boundary
(rate-limited), a busy slot silent past the deadline turns ``suspect``
and emits ``worker.hung``, a dead process is marked ``lost``.  On top
of liveness the fleet enforces **per-job deadlines**: a job running
past ``job_timeout_s`` has its worker SIGKILLed and respawned, and the
outcome surfaces as a retryable :class:`~repro.service.errors
.JobTimeoutError`.

Graceful degradation: the fleet carries a *process budget* — the
number of real backend worker processes it may run concurrently.  A
job that asks for ``backend: process`` beyond the budget (or whose
process backend fails to come up, e.g. shared memory exhaustion) is
executed on the sim backend instead, flagged ``degraded`` — the
service answers slowly rather than failing loudly.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.parallel.backend.heartbeat import HeartbeatMonitor, make_beat
from repro.service.errors import JobSpecError
from repro.service.jobs import Job, JobSpec
from repro.service.retry import classify

logger = logging.getLogger("repro.service.supervisor")

#: Exit code of a chaos-killed service worker (mirrors the backend's).
KILLED_EXIT_CODE = 17

#: Per-worker warm-setup cache entries (molecule + basis pairs).
SETUP_CACHE_SIZE = 8

#: Default job wall-clock deadline.
DEFAULT_JOB_TIMEOUT_S = 120.0

#: Default heartbeat-silence deadline before a busy slot turns suspect.
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0

#: Default worker beat rate limit.
DEFAULT_BEAT_INTERVAL_S = 0.25


def run_job(
    spec: JobSpec,
    *,
    attempt: int = 1,
    checkpoint: str | Path | None = None,
    restart: str | Path | None = None,
    checkpoint_every: int = 1,
    beat: Callable[[int, str], None] | None = None,
    setup_cache: dict[str, Any] | None = None,
    eri_cache_pool: dict[Any, Any] | None = None,
    force_backend: str | None = None,
    allow_exit: bool = False,
) -> dict[str, Any]:
    """Execute one SCF job; returns the acknowledgeable result summary.

    Used by the fleet's worker processes and — for the degraded inline
    path — by the daemon itself, which is why the chaos ``os._exit``
    knob is gated on ``allow_exit`` (a worker may die for the chaos
    suite; the daemon must not).

    ``checkpoint`` / ``restart`` are the PR-3 ``.npz`` mechanics: the
    job checkpoints every ``checkpoint_every`` cycles, and a retry or a
    journal-replayed job resumes from the last checkpoint bitwise
    identically instead of recomputing converged cycles.

    ``eri_cache_pool`` is the cross-*job* analogue of ``setup_cache``:
    a per-worker pool of :class:`~repro.integrals.cache.QuartetCache`
    instances keyed by ``(setup_key, eri_cache_mb)``.  A sim-backend
    job whose system was run before on this worker starts with every
    surviving quartet block already cached — its first Fock build hits
    instead of recomputing, which is what makes batching many small
    jobs of the same system pay (cached blocks are read-only, so reuse
    cannot change the energy).  Process-backend jobs skip the pool:
    their Fock builds happen in forked ranks whose cache fills would
    be lost on exit.
    """
    from repro.chem.basis import BasisSet
    from repro.chem.molecule import Molecule
    from repro.core.scf_driver import ParallelSCF
    from repro.integrals.cache import QuartetCache
    from repro.resilience import CheckpointManager, FaultPlan
    from repro.scf.convergence import ConvergenceCriteria

    spec.validate()
    backend = force_backend or spec.backend
    degraded = backend != spec.backend

    warm_setup = False
    key = spec.setup_key()
    if setup_cache is not None and key in setup_cache:
        mol, basis = setup_cache[key]
        warm_setup = True
    else:
        mol = Molecule.from_xyz(spec.xyz, charge=spec.charge)
        basis = BasisSet(mol, spec.basis)
        if setup_cache is not None:
            if len(setup_cache) >= SETUP_CACHE_SIZE:
                setup_cache.pop(next(iter(setup_cache)))
            setup_cache[key] = (mol, basis)

    plan = (
        FaultPlan.from_spec(spec.fault_plan, nranks=spec.nranks)
        if spec.fault_plan else None
    )
    criteria = (
        ConvergenceCriteria(max_iterations=spec.max_iterations)
        if spec.max_iterations is not None else None
    )

    pooled_cache: QuartetCache | None = None
    eri_preloaded = False
    eri_stats_before: dict[str, Any] | None = None

    def build_scf(backend_name: str) -> ParallelSCF:
        nonlocal pooled_cache, eri_preloaded, eri_stats_before
        kwargs: dict[str, Any] = {"eri_cache_mb": spec.eri_cache_mb}
        pooled_cache = None
        if (eri_cache_pool is not None and backend_name == "sim"
                and spec.eri_cache_mb is not None):
            pool_key = (key, float(spec.eri_cache_mb))
            pooled_cache = eri_cache_pool.get(pool_key)
            if pooled_cache is None:
                pooled_cache = QuartetCache.from_mb(spec.eri_cache_mb)
                if len(eri_cache_pool) >= SETUP_CACHE_SIZE:
                    eri_cache_pool.pop(next(iter(eri_cache_pool)))
                eri_cache_pool[pool_key] = pooled_cache
            eri_stats_before = pooled_cache.stats()
            eri_preloaded = eri_stats_before["entries"] > 0
            kwargs = {"eri_cache": pooled_cache}
        return ParallelSCF(
            basis, spec.algorithm,
            nranks=spec.nranks, nthreads=spec.nthreads,
            criteria=criteria, backend=backend_name,
            fault_plan=plan,
            schedule=spec.schedule, incremental=spec.incremental,
            **kwargs,
        )

    try:
        scf = build_scf(backend)
    except OSError as exc:
        if backend != "process":
            raise
        # Real worker processes could not come up (fork limit, shared
        # memory exhaustion): degrade to the sim backend rather than
        # failing the job.
        logger.warning("process backend unavailable (%s); degrading "
                       "job to sim backend", exc)
        backend, degraded = "sim", True
        scf = build_scf(backend)

    die_here = (
        allow_exit
        and spec.die_on_attempt is not None
        and attempt == spec.die_on_attempt
    )
    orig_builder = scf.rhf.fock_builder
    builds = 0

    def wrapped_builder(D):
        nonlocal builds
        if die_here and builds >= spec.die_after_builds:
            # Chaos: this *service worker* dies for real, mid-job —
            # no result message, a half-finished SCF, a journal entry
            # stuck at "running".  The supervisor must notice, respawn,
            # and the retry must resume from the checkpoint.
            os._exit(KILLED_EXIT_CODE)
        if spec.cycle_delay_s > 0:
            time.sleep(spec.cycle_delay_s)
        if beat is not None:
            beat(builds, "build")
        F, stats = orig_builder(D)
        builds += 1
        return F, stats

    scf.rhf.fock_builder = wrapped_builder

    run_kwargs: dict[str, Any] = {}
    if checkpoint is not None:
        run_kwargs["checkpoint"] = CheckpointManager(
            checkpoint, every=checkpoint_every
        )
    if restart is not None and Path(restart).exists():
        run_kwargs["restart"] = restart

    try:
        res = scf.run(**run_kwargs)
    finally:
        scf.shutdown()

    eri_hits = eri_misses = None
    if pooled_cache is not None and eri_stats_before is not None:
        after = pooled_cache.stats()
        eri_hits = int(after["hits"] - eri_stats_before["hits"])
        eri_misses = int(after["misses"] - eri_stats_before["misses"])

    return {
        "energy": float(res.energy),
        "converged": bool(res.converged),
        "iterations": len(res.scf.iterations),
        "quartets_computed": int(res.total_quartets_computed),
        "backend": backend,
        "degraded": degraded,
        "warm_setup": warm_setup,
        "eri_cache_preloaded": eri_preloaded,
        "eri_cache_hits": eri_hits,
        "eri_cache_misses": eri_misses,
        "resumed": "restart" in run_kwargs,
    }


def _service_worker_loop(slot: int, cmd: Any, out: Any,
                         cfg: dict[str, Any]) -> None:
    """One persistent fleet worker: serve job commands until ``stop``.

    Forked from the daemon, so the first order of business is shedding
    inherited parent state: the daemon's listening sockets (a child
    holding the listen fd would make a dead daemon's socket accept
    connections forever) and the parent's global telemetry/event/metric
    instruments (publishing from here would interleave onto the
    parent's subscriber sockets).
    """
    from repro.obs.events import set_event_log
    from repro.obs.export import span_line
    from repro.obs.logctl import set_log_context
    from repro.obs.metrics import MetricsRegistry, set_metrics
    from repro.obs.stream import NDJSONStreamWriter
    from repro.obs.telemetry import set_telemetry
    from repro.obs.tracer import TraceContext, Tracer, set_tracer

    for fd in cfg.get("close_fds", ()):
        try:
            os.close(fd)
        except OSError:
            pass
    set_telemetry(None)
    set_event_log(None)
    set_metrics(MetricsRegistry())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # daemon handles ^C

    pid = os.getpid()
    interval = cfg.get("beat_interval_s", DEFAULT_BEAT_INTERVAL_S)
    setup_cache: dict[str, Any] = {}
    # Cross-job ERI block pool (see run_job): persists with the worker,
    # so a batch of same-system jobs computes its quartets exactly once.
    eri_cache_pool: dict[Any, Any] = {}

    while True:
        msg = cmd.get()
        if msg[0] == "stop":
            return
        job = msg[1]
        spec = JobSpec.from_dict(job["spec"])
        job_id, attempt = job["id"], int(job["attempt"])
        last_beat = 0.0

        def beat(builds: int, phase: str) -> None:
            """Rate-limited in-band heartbeat (never blocks, never raises)."""
            nonlocal last_beat
            now = time.monotonic()
            if phase == "build" and now - last_beat < interval:
                return
            last_beat = now
            try:
                out.put_nowait(("beat", make_beat(
                    slot, pid, attempt, phase,
                    t=time.perf_counter(), claimed=builds,
                )))
            except Exception:  # pragma: no cover - full queue
                pass

        # Distributed trace plumbing: when the daemon handed us a trace
        # context, install a live tracer parented on the job's root span
        # and stream every completed span to a per-attempt NDJSON file.
        # Line-buffered appends survive the chaos os._exit, and one file
        # per attempt keeps a SIGKILL'd attempt's spans separable from
        # its retry's during assembly.
        trace = job.get("trace") or {}
        span_writer = None
        attempt_span = None
        if trace.get("trace_id") and trace.get("obs_dir"):
            try:
                span_writer = NDJSONStreamWriter(
                    Path(trace["obs_dir"]) /
                    f"attempt-{attempt:03d}.spans.ndjson")
                writer = span_writer
                tracer = Tracer(
                    context=TraceContext(trace["trace_id"],
                                         trace["root_span_id"]),
                    # t0=0.0: absolute perf_counter timestamps, the
                    # cross-process time base assembly aligns on.
                    on_close=lambda s: writer.write_line(span_line(s, 0.0)),
                )
                set_tracer(tracer)
                attempt_span = tracer.span(
                    "job/attempt", job=job_id, attempt=attempt,
                    slot=slot, worker_pid=pid,
                )
                attempt_span.__enter__()
            except OSError:
                span_writer = None
                attempt_span = None
        set_log_context(job_id=job_id, trace_id=trace.get("trace_id"))

        beat(0, "start")
        if spec.sleep_s > 0:
            # The wedge knob: silence after the start beat is exactly
            # what the hung-job detector is built to catch.
            time.sleep(spec.sleep_s)
        try:
            result = run_job(
                spec,
                attempt=attempt,
                checkpoint=job.get("checkpoint"),
                restart=job.get("restart"),
                checkpoint_every=cfg.get("checkpoint_every", 1),
                beat=beat,
                setup_cache=setup_cache,
                eri_cache_pool=eri_cache_pool,
                force_backend=job.get("force_backend"),
                allow_exit=True,
            )
        except Exception as exc:
            out.put(("failed", slot, job_id, {
                "error": str(exc) or type(exc).__name__,
                "error_type": type(exc).__name__,
                "classification": classify(exc),
            }))
        else:
            beat(result.get("iterations", 0), "done")
            out.put(("done", slot, job_id, result))
        finally:
            if attempt_span is not None:
                attempt_span.__exit__(None, None, None)
            set_tracer(None)
            if span_writer is not None:
                span_writer.close()
            set_log_context(job_id=None, trace_id=None)


@dataclass
class WorkerSlot:
    """Parent-side record of one fleet worker."""

    index: int
    proc: Any = None
    cmd: Any = None
    job_id: str | None = None
    attempt: int = 0
    process_ranks: int = 0  # real backend workers this job consumes
    deadline: float | None = None
    started: float | None = None
    respawns: int = 0

    @property
    def busy(self) -> bool:
        return self.job_id is not None


@dataclass
class JobOutcome:
    """One terminal fleet event the daemon must act on."""

    kind: str  # done | failed | lost | timeout
    slot: int
    job_id: str
    payload: dict[str, Any] = field(default_factory=dict)


class WorkerFleet:
    """Fixed-size supervised pool of persistent job workers."""

    def __init__(
        self,
        size: int,
        *,
        job_timeout_s: float = DEFAULT_JOB_TIMEOUT_S,
        heartbeat_interval_s: float = DEFAULT_BEAT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        process_budget: int = 4,
        checkpoint_every: int = 1,
        close_fds: tuple[int, ...] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        if job_timeout_s <= 0:
            raise ValueError(f"job_timeout_s must be > 0, got {job_timeout_s}")
        if process_budget < 0:
            raise ValueError("process_budget must be >= 0")
        self.size = size
        self.job_timeout_s = job_timeout_s
        self.process_budget = process_budget
        self.clock = clock
        self._ctx = mp.get_context("fork")
        self._out = self._ctx.Queue()
        self._cfg = {
            "beat_interval_s": heartbeat_interval_s,
            "checkpoint_every": checkpoint_every,
            "close_fds": tuple(close_fds),
        }
        self.slots = [WorkerSlot(index=i) for i in range(size)]
        self.monitor = HeartbeatMonitor(size, timeout_s=heartbeat_timeout_s)
        self.degraded_jobs = 0
        self.timeouts = 0
        self.lost_workers = 0
        self._closed = False
        for slot in self.slots:
            self._spawn(slot)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, slot: WorkerSlot) -> None:
        slot.cmd = self._ctx.Queue()
        slot.proc = self._ctx.Process(
            target=_service_worker_loop,
            args=(slot.index, slot.cmd, self._out, self._cfg),
            name=f"scf-job-worker-{slot.index}",
            daemon=False,  # must be able to fork process-backend workers
        )
        slot.proc.start()

    def _ensure_alive(self, slot: WorkerSlot) -> None:
        if slot.proc is None or not slot.proc.is_alive():
            if slot.proc is not None:
                slot.proc.join(timeout=1)
                slot.respawns += 1
            self._spawn(slot)

    def _kill(self, slot: WorkerSlot) -> None:
        """SIGKILL a slot's worker (deadline breach or cancel)."""
        proc = slot.proc
        if proc is not None and proc.is_alive():
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (OSError, TypeError):  # pragma: no cover - racing exit
                pass
            proc.join(timeout=5)
        slot.proc = None

    # -- dispatch ------------------------------------------------------------

    def idle_slots(self) -> list[WorkerSlot]:
        return [s for s in self.slots if not s.busy]

    def busy_slots(self) -> list[WorkerSlot]:
        return [s for s in self.slots if s.busy]

    def process_ranks_in_use(self) -> int:
        return sum(s.process_ranks for s in self.slots)

    def dispatch(
        self,
        job: Job,
        *,
        checkpoint: str | Path | None = None,
        restart: str | Path | None = None,
        trace: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Hand one claimed job to an idle slot.

        Returns ``{"slot": i, "degraded": bool}``.  Raises
        ``RuntimeError`` when no slot is idle (the daemon checks
        first).  The degrade decision happens here: a process-backend
        job that would push the fleet past its process budget runs on
        the sim backend instead.

        ``trace`` carries the job's distributed-trace context down to
        the worker: ``{"trace_id": …, "root_span_id": …, "obs_dir": …}``
        — the worker installs a tracer parented on ``root_span_id`` and
        streams its per-attempt span NDJSON under ``obs_dir``.
        """
        idle = self.idle_slots()
        if not idle:
            raise RuntimeError("no idle worker slot")
        slot = idle[0]
        self._ensure_alive(slot)

        force_backend = None
        degraded = False
        process_ranks = 0
        if job.spec.backend == "process":
            if (self.process_ranks_in_use() + job.spec.nranks
                    > self.process_budget):
                force_backend = "sim"
                degraded = True
                self.degraded_jobs += 1
            else:
                process_ranks = job.spec.nranks

        slot.job_id = job.id
        slot.attempt = job.attempt
        slot.process_ranks = process_ranks
        slot.started = self.clock()
        slot.deadline = slot.started + self.job_timeout_s
        # Arm the liveness reference beat: a worker that never says
        # anything at all still times out.
        self.monitor.record(make_beat(
            slot.index, slot.proc.pid, job.attempt, "dispatched",
            t=time.perf_counter(),
        ))
        slot.cmd.put(("job", {
            "id": job.id,
            "attempt": job.attempt,
            "spec": job.spec.to_dict(),
            "checkpoint": None if checkpoint is None else str(checkpoint),
            "restart": None if restart is None else str(restart),
            "force_backend": force_backend,
            "trace": trace,
        }))
        return {"slot": slot.index, "degraded": degraded}

    # -- supervision ---------------------------------------------------------

    def _free(self, slot: WorkerSlot) -> None:
        slot.job_id = None
        slot.attempt = 0
        slot.process_ranks = 0
        slot.deadline = None
        slot.started = None

    def poll(self) -> list[JobOutcome]:
        """Drain beats/results, enforce deadlines, detect dead workers.

        Returns the terminal outcomes the daemon must fold into the
        durable queue.  Called from the dispatch loop every tick.
        """
        import queue as queue_mod

        outcomes: list[JobOutcome] = []
        while True:
            try:
                msg = self._out.get_nowait()
            except queue_mod.Empty:
                break
            except (OSError, EOFError):  # pragma: no cover - teardown race
                break
            if msg[0] == "beat":
                self.monitor.record(msg[1])
                continue
            kind, slot_idx, job_id, payload = msg
            slot = self.slots[slot_idx]
            if slot.job_id != job_id:
                continue  # stale result from a killed-then-replaced job
            self.monitor.mark_done(slot_idx)
            self._free(slot)
            outcomes.append(JobOutcome(kind=kind, slot=slot_idx,
                                       job_id=job_id, payload=payload))

        now = self.clock()
        for slot in self.slots:
            if not slot.busy:
                continue
            if slot.deadline is not None and now > slot.deadline:
                # Deadline breach: kill-and-respawn, surface a
                # retryable timeout.
                job_id = slot.job_id
                elapsed = now - (slot.started or now)
                self._kill(slot)
                self.monitor.mark_lost(slot.index)
                self.timeouts += 1
                self._free(slot)
                self._ensure_alive(slot)
                outcomes.append(JobOutcome(
                    kind="timeout", slot=slot.index, job_id=job_id,
                    payload={
                        "error": (f"job exceeded its {self.job_timeout_s:g}s "
                                  f"deadline (ran {elapsed:.1f}s)"),
                        "error_type": "JobTimeoutError",
                    },
                ))
            elif slot.proc is None or not slot.proc.is_alive():
                # The worker died underneath the job (chaos kill, OOM
                # kill, crash): retryable, respawn the slot.
                job_id = slot.job_id
                exitcode = None if slot.proc is None else slot.proc.exitcode
                if slot.proc is not None:
                    slot.proc.join(timeout=1)
                slot.proc = None
                self.monitor.mark_lost(slot.index)
                self.lost_workers += 1
                self._free(slot)
                self._ensure_alive(slot)
                outcomes.append(JobOutcome(
                    kind="lost", slot=slot.index, job_id=job_id,
                    payload={
                        "error": (f"worker process died "
                                  f"(exit code {exitcode})"),
                        "error_type": "WorkerLostError",
                    },
                ))
        # Busy-but-silent slots turn suspect here (worker.hung events).
        self.monitor.check({s.index for s in self.slots if s.busy})
        return outcomes

    def cancel_job(self, job_id: str) -> bool:
        """Kill the worker running ``job_id``; True when one was found."""
        for slot in self.slots:
            if slot.job_id == job_id:
                self._kill(slot)
                self.monitor.mark_lost(slot.index)
                self._free(slot)
                self._ensure_alive(slot)
                return True
        return False

    def stats(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "busy": len(self.busy_slots()),
            "process_budget": self.process_budget,
            "process_ranks_in_use": self.process_ranks_in_use(),
            "degraded_jobs": self.degraded_jobs,
            "timeouts": self.timeouts,
            "lost_workers": self.lost_workers,
            "respawns": sum(s.respawns for s in self.slots),
            "suspects": self.monitor.suspects(),
        }

    # -- teardown ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop idle workers politely, kill busy/stuck ones."""
        if self._closed:
            return
        self._closed = True
        for slot in self.slots:
            if slot.proc is None or not slot.proc.is_alive():
                continue
            if slot.busy:
                self._kill(slot)
                continue
            try:
                slot.cmd.put(("stop",))
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for slot in self.slots:
            proc = slot.proc
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - teardown best effort
                proc.terminate()
                proc.join(timeout=5)
            slot.proc = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass
