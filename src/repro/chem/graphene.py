"""Bilayer-graphene benchmark datasets (paper Figure 2 / Table 4).

The paper benchmarks five AB-stacked bilayer graphene patches, labelled
by their approximate in-plane extent:

========  =======  ========  ==================
dataset   # atoms  # shells  # basis functions
========  =======  ========  ==================
0.5 nm         44       176                 660
1.0 nm        120       480               1,800
1.5 nm        220       880               3,300
2.0 nm        356     1,424               5,340
5.0 nm      2,016     8,064              30,240
========  =======  ========  ==================

With the 6-31G(d) basis and GAMESS shell conventions each carbon atom
contributes 4 shells (S, L, L, D where L is a composite SP shell) and
15 basis functions (1 + 4 + 4 + 6 Cartesian d), so shells = 4 * atoms
and basis functions = 15 * atoms, exactly matching the table.

The generator builds an infinite honeycomb lattice (C-C bond 1.42 A,
interlayer spacing 3.35 A, AB Bernal stacking) and selects, per layer,
the ``n`` lattice sites closest to the patch center.  The selection is
deterministic (distance with site-index tie-break), produces compact
round patches whose diameter matches the dataset label, and most
importantly reproduces the exact index-space sizes and the realistic
spatial decay of integral screening -- the two properties the paper's
parallel algorithms actually interact with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.molecule import Molecule

#: In-plane carbon-carbon bond length, Angstrom.
CC_BOND: float = 1.42

#: Interlayer separation of Bernal-stacked bilayer graphene, Angstrom.
INTERLAYER: float = 3.35


@dataclass(frozen=True)
class GrapheneSpec:
    """Size characteristics of one benchmark dataset.

    ``atoms_per_layer`` fixes the geometry; the shell / basis-function
    counts follow from the 6-31G(d)/GAMESS conventions above and are
    stored redundantly for direct comparison against the paper's table.
    """

    label: str
    atoms_per_layer: int

    @property
    def natoms(self) -> int:
        """Total atoms in the bilayer."""
        return 2 * self.atoms_per_layer

    @property
    def nshells(self) -> int:
        """Composite-shell count (4 per carbon, GAMESS convention)."""
        return 4 * self.natoms

    @property
    def nbf(self) -> int:
        """Basis-function count (15 per carbon with Cartesian d)."""
        return 15 * self.natoms


#: The paper's five datasets (Table 2 / Table 4).
PAPER_DATASETS: dict[str, GrapheneSpec] = {
    "0.5nm": GrapheneSpec("0.5nm", 22),
    "1.0nm": GrapheneSpec("1.0nm", 60),
    "1.5nm": GrapheneSpec("1.5nm", 110),
    "2.0nm": GrapheneSpec("2.0nm", 178),
    "5.0nm": GrapheneSpec("5.0nm", 1008),
}


def _honeycomb_sites(n_target: int) -> np.ndarray:
    """Return the ``n_target`` honeycomb lattice sites closest to the origin.

    The honeycomb lattice is generated from the triangular Bravais
    lattice with two-atom basis; enough unit cells are enumerated to
    guarantee the requested site count, then sites are sorted by
    (distance**2, x, y) for a deterministic compact patch.
    """
    if n_target < 1:
        raise ValueError("need at least one site")
    a = CC_BOND * np.sqrt(3.0)  # lattice constant
    a1 = np.array([a, 0.0])
    a2 = np.array([a / 2.0, a * np.sqrt(3.0) / 2.0])
    basis = np.array([[0.0, 0.0], [0.0, CC_BOND]])

    # Generous cell radius: area per atom is (sqrt(3)/4) * a^2 * ... use
    # the honeycomb areal density 4 / (sqrt(3) * a^2) atoms per unit area.
    density = 4.0 / (np.sqrt(3.0) * a * a)
    radius = np.sqrt(n_target / (np.pi * density)) + 3.0 * a
    nmax = int(np.ceil(radius / (a / 2.0))) + 2

    ii, jj = np.meshgrid(np.arange(-nmax, nmax + 1), np.arange(-nmax, nmax + 1))
    cells = ii.ravel()[:, None] * a1[None, :] + jj.ravel()[:, None] * a2[None, :]
    sites = (cells[:, None, :] + basis[None, :, :]).reshape(-1, 2)

    d2 = np.einsum("ij,ij->i", sites, sites)
    order = np.lexsort((sites[:, 1], sites[:, 0], np.round(d2, 9)))
    chosen = sites[order[:n_target]]
    if chosen.shape[0] < n_target:
        raise RuntimeError("lattice enumeration window too small")
    return chosen


def bilayer_graphene(atoms_per_layer: int, *, name: str = "") -> Molecule:
    """Build an AB-stacked bilayer graphene patch.

    Parameters
    ----------
    atoms_per_layer:
        Number of carbon atoms in each of the two layers.
    name:
        Optional molecule label.

    Returns
    -------
    Molecule
        ``2 * atoms_per_layer`` carbon atoms; layer A at z = 0 and layer
        B at z = 3.35 A shifted by one bond vector (Bernal stacking).
    """
    layer = _honeycomb_sites(atoms_per_layer)
    shift = np.array([0.0, CC_BOND])  # B-layer AB offset

    coords = np.zeros((2 * atoms_per_layer, 3))
    coords[:atoms_per_layer, :2] = layer
    coords[atoms_per_layer:, :2] = layer + shift
    coords[atoms_per_layer:, 2] = INTERLAYER

    symbols = ["C"] * (2 * atoms_per_layer)
    return Molecule(
        symbols,
        coords,
        units="angstrom",
        name=name or f"bilayer-graphene-{2 * atoms_per_layer}C",
    )


def paper_dataset(label: str) -> Molecule:
    """Build one of the paper's five named datasets (e.g. ``"2.0nm"``).

    Raises
    ------
    KeyError
        For labels outside the paper's set; see :data:`PAPER_DATASETS`.
    """
    try:
        spec = PAPER_DATASETS[label]
    except KeyError:
        raise KeyError(
            f"unknown dataset {label!r}; choose from {sorted(PAPER_DATASETS)}"
        ) from None
    return bilayer_graphene(spec.atoms_per_layer, name=f"graphene-{label}")
