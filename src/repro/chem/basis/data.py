"""Built-in Gaussian basis-set data (EMSL Basis Set Exchange values).

Three Pople family basis sets are provided for H, C, N, O — enough for
the paper's graphene datasets (carbon only, 6-31G(d)) plus the small
molecules used in tests and examples:

* ``sto-3g``
* ``6-31g``
* ``6-31g(d)`` (alias ``6-31g*``): 6-31G plus one Cartesian d shell on
  heavy atoms (exponent 0.8), the basis used throughout the paper.

Shell entries are ``(type, primitives)`` where ``type`` is ``"S"``,
``"L"`` (fused SP) or ``"D"`` and each primitive row is
``(exponent, coef)`` for pure shells or ``(exponent, s_coef, p_coef)``
for L shells.  Raw (unnormalized) coefficients are stored; shell
construction normalizes them.
"""

from __future__ import annotations

from typing import Sequence

ShellEntry = tuple[str, tuple[tuple[float, ...], ...]]
ElementBasis = tuple[ShellEntry, ...]

_STO3G_S_COEFS = (0.1543289673, 0.5353281423, 0.4446345422)
_STO3G_SP_S = (-0.09996722919, 0.3995128261, 0.7001154689)
_STO3G_SP_P = (0.1559162750, 0.6076837186, 0.3919573931)


def _sto3g_s(e1: float, e2: float, e3: float) -> ShellEntry:
    return ("S", tuple(zip((e1, e2, e3), _STO3G_S_COEFS)))


def _sto3g_l(e1: float, e2: float, e3: float) -> ShellEntry:
    return ("L", tuple(zip((e1, e2, e3), _STO3G_SP_S, _STO3G_SP_P)))


_STO3G: dict[str, ElementBasis] = {
    "H": (_sto3g_s(3.425250914, 0.6239137298, 0.1688554040),),
    "C": (
        _sto3g_s(71.61683735, 13.04509632, 3.530512160),
        _sto3g_l(2.941249355, 0.6834830964, 0.2222899159),
    ),
    "N": (
        _sto3g_s(99.10616896, 18.05231239, 4.885660238),
        _sto3g_l(3.780455879, 0.8784966449, 0.2857143744),
    ),
    "O": (
        _sto3g_s(130.7093214, 23.80886605, 6.443608313),
        _sto3g_l(5.033151319, 1.169596125, 0.3803889600),
    ),
}


_631G: dict[str, ElementBasis] = {
    "H": (
        (
            "S",
            (
                (18.73113696, 0.03349460434),
                (2.825394365, 0.2347269535),
                (0.6401216923, 0.8137573261),
            ),
        ),
        ("S", ((0.1612777588, 1.0),)),
    ),
    "C": (
        (
            "S",
            (
                (3047.524880, 0.001834737132),
                (457.3695180, 0.01403732281),
                (103.9486850, 0.06884262226),
                (29.21015530, 0.2321844432),
                (9.286662960, 0.4679413484),
                (3.163926960, 0.3623119853),
            ),
        ),
        (
            "L",
            (
                (7.868272350, -0.1193324198, 0.06899906659),
                (1.881288540, -0.1608541517, 0.3164239610),
                (0.5442492580, 1.143456438, 0.7443082909),
            ),
        ),
        ("L", ((0.1687144782, 1.0, 1.0),)),
    ),
    "N": (
        (
            "S",
            (
                (4173.511460, 0.001834772160),
                (627.4579110, 0.01399462700),
                (142.9020930, 0.06858655181),
                (40.23432930, 0.2322408730),
                (13.03269600, 0.4690699481),
                (4.603370450, 0.3604551991),
            ),
        ),
        (
            "L",
            (
                (11.62636186, -0.1149611817, 0.06757974388),
                (2.716279807, -0.1691174786, 0.3239072959),
                (0.7722183966, 1.145851947, 0.7408951398),
            ),
        ),
        ("L", ((0.2120314975, 1.0, 1.0),)),
    ),
    "O": (
        (
            "S",
            (
                (5484.671660, 0.001831074430),
                (825.2349460, 0.01395017220),
                (188.0469580, 0.06844507810),
                (52.96450000, 0.2327143360),
                (16.89757040, 0.4701928980),
                (5.799635340, 0.3585208530),
            ),
        ),
        (
            "L",
            (
                (15.53961625, -0.1107775495, 0.07087426823),
                (3.599933586, -0.1480262627, 0.3397528391),
                (1.013761750, 1.130767015, 0.7271585773),
            ),
        ),
        ("L", ((0.2700058226, 1.0, 1.0),)),
    ),
}


def _with_d(base: ElementBasis, d_exp: float) -> ElementBasis:
    """Append one uncontracted Cartesian d shell to an element basis."""
    return base + (("D", ((d_exp, 1.0),)),)


_631GD: dict[str, ElementBasis] = {
    # 6-31G(d) adds d polarization to heavy atoms only; H is plain 6-31G.
    "H": _631G["H"],
    "C": _with_d(_631G["C"], 0.8),
    "N": _with_d(_631G["N"], 0.8),
    "O": _with_d(_631G["O"], 0.8),
}


_BASIS_LIBRARY: dict[str, dict[str, ElementBasis]] = {
    "sto-3g": _STO3G,
    "6-31g": _631G,
    "6-31g(d)": _631GD,
}

_ALIASES: dict[str, str] = {
    "sto3g": "sto-3g",
    "631g": "6-31g",
    "6-31g*": "6-31g(d)",
    "631g*": "6-31g(d)",
    "631gd": "6-31g(d)",
    "6-31gd": "6-31g(d)",
}


def _canonical(name: str) -> str:
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in _BASIS_LIBRARY:
        raise KeyError(
            f"unknown basis set {name!r}; available: {sorted(_BASIS_LIBRARY)}"
        )
    return key


def available_basis_sets() -> tuple[str, ...]:
    """Names of the built-in basis sets."""
    return tuple(sorted(_BASIS_LIBRARY))


def basis_definition(basis_name: str, element_symbol: str) -> ElementBasis:
    """Raw shell entries for one element in one basis set.

    Raises
    ------
    KeyError
        If the basis set is unknown or lacks data for the element.
    """
    lib = _BASIS_LIBRARY[_canonical(basis_name)]
    sym = element_symbol.strip().capitalize()
    try:
        return lib[sym]
    except KeyError:
        raise KeyError(
            f"basis {basis_name!r} has no data for element {element_symbol!r}"
        ) from None
