"""Gaussian basis sets with GAMESS-style composite shells.

The paper counts *composite* shells: an SP ("L") shell — an s and a p
contraction sharing the same primitive exponents — counts as one shell.
That convention matters because the parallel algorithms distribute work
over shell indices; with 6-31G(d) each carbon atom has exactly 4 shells
(S, L, L, D) and 15 Cartesian basis functions, reproducing the paper's
Table 4 sizes.

Two layers are exposed:

* :class:`~repro.chem.basis.shell.Shell` — a pure-angular-momentum
  contracted shell; the unit of integral evaluation.
* :class:`~repro.chem.basis.shell.CompositeShell` — a GAMESS shell
  (possibly fused SP); the unit of work distribution and screening.
* :class:`~repro.chem.basis.basisset.BasisSet` — molecule x basis-name,
  provides both views plus basis-function indexing.
"""

from repro.chem.basis.shell import (
    CART_COMPONENTS,
    CompositeShell,
    Shell,
    ncart,
)
from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.data import available_basis_sets, basis_definition

__all__ = [
    "Shell",
    "CompositeShell",
    "BasisSet",
    "CART_COMPONENTS",
    "ncart",
    "available_basis_sets",
    "basis_definition",
]
