"""Parser for GAMESS-US formatted basis-set text.

Lets users bring their own basis sets in the format the Basis Set
Exchange exports for GAMESS:

.. code-block:: text

    HYDROGEN
    S   3
      1     3.42525091         0.15432897
      2     0.62391373         0.53532814
      3     0.16885540         0.44463454

    CARBON
    S   6
      ...
    L   3
      1     2.94124940        -0.09996723   0.15591627
      ...

Shell type letters: ``S P D F`` plus the composite ``L`` (SP) shell
with two coefficient columns.  Parsed data plugs into the same shell
construction path as the built-in sets.
"""

from __future__ import annotations

from repro.chem.basis.data import ElementBasis, ShellEntry

_ELEMENT_NAMES = {
    "HYDROGEN": "H", "HELIUM": "He", "LITHIUM": "Li", "BERYLLIUM": "Be",
    "BORON": "B", "CARBON": "C", "NITROGEN": "N", "OXYGEN": "O",
    "FLUORINE": "F", "NEON": "Ne", "SODIUM": "Na", "MAGNESIUM": "Mg",
    "ALUMINUM": "Al", "ALUMINIUM": "Al", "SILICON": "Si",
    "PHOSPHORUS": "P", "SULFUR": "S", "CHLORINE": "Cl", "ARGON": "Ar",
}

_SHELL_LETTERS = {"S", "P", "D", "F", "L"}


class BasisParseError(ValueError):
    """Malformed GAMESS basis text."""


def _element_symbol(token: str) -> str:
    key = token.strip().upper()
    if key in _ELEMENT_NAMES:
        return _ELEMENT_NAMES[key]
    if key.capitalize() in _ELEMENT_NAMES.values():
        return key.capitalize()
    raise BasisParseError(f"unknown element header: {token!r}")


def parse_gamess_basis(text: str) -> dict[str, ElementBasis]:
    """Parse GAMESS-US basis text into per-element shell entries.

    Returns
    -------
    dict
        Element symbol -> tuple of ``(shell_type, primitive_rows)``
        entries, the same structure :mod:`repro.chem.basis.data` uses.
    """
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.strip().startswith(("!", "$"))
    ]
    out: dict[str, ElementBasis] = {}
    pos = 0
    while pos < len(lines):
        symbol = _element_symbol(lines[pos])
        pos += 1
        shells: list[ShellEntry] = []
        while pos < len(lines):
            parts = lines[pos].split()
            head = parts[0].upper()
            if head not in _SHELL_LETTERS or len(parts) != 2:
                break  # next element header
            stype = head
            try:
                nprim = int(parts[1])
            except ValueError as exc:
                raise BasisParseError(
                    f"bad primitive count on line: {lines[pos]!r}"
                ) from exc
            pos += 1
            rows: list[tuple[float, ...]] = []
            want = 4 if stype == "L" else 3
            for _ in range(nprim):
                if pos >= len(lines):
                    raise BasisParseError(
                        f"unexpected end of input inside a {stype} shell"
                    )
                cols = lines[pos].split()
                if len(cols) != want:
                    raise BasisParseError(
                        f"expected {want} columns, got {len(cols)}: "
                        f"{lines[pos]!r}"
                    )
                values = [float(c) for c in cols[1:]]
                rows.append(tuple(values))
                pos += 1
            shells.append((stype, tuple(rows)))
        if not shells:
            raise BasisParseError(f"element {symbol} has no shells")
        out[symbol] = tuple(shells)
    if not out:
        raise BasisParseError("no basis data found")
    return out


def register_basis(name: str, definitions: dict[str, ElementBasis]) -> None:
    """Install a parsed basis set under ``name`` for BasisSet to use."""
    from repro.chem.basis import data as _data

    key = name.strip().lower()
    _data._BASIS_LIBRARY[key] = dict(definitions)


def load_gamess_basis(name: str, text: str) -> None:
    """Parse GAMESS basis text and register it in one step."""
    register_basis(name, parse_gamess_basis(text))
