"""Shell data structures.

A :class:`Shell` is a contracted Cartesian Gaussian shell of pure
angular momentum: the unit at which the integral kernels operate.  A
:class:`CompositeShell` is the GAMESS scheduling unit — one or more
pure shells on the same center sharing primitive exponents (the fused
SP "L" shell of Pople basis sets being the important case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Cartesian component exponent triples per angular momentum, in the
#: canonical order used across the integral engine (lexicographic in
#: (lx, ly, lz) descending on lx then ly).
CART_COMPONENTS: dict[int, tuple[tuple[int, int, int], ...]] = {
    0: ((0, 0, 0),),
    1: ((1, 0, 0), (0, 1, 0), (0, 0, 1)),
    2: ((2, 0, 0), (1, 1, 0), (1, 0, 1), (0, 2, 0), (0, 1, 1), (0, 0, 2)),
    3: (
        (3, 0, 0), (2, 1, 0), (2, 0, 1), (1, 2, 0), (1, 1, 1), (1, 0, 2),
        (0, 3, 0), (0, 2, 1), (0, 1, 2), (0, 0, 3),
    ),
}

#: Spectroscopic letters for angular momenta.
AM_LETTERS = "spdf"


def ncart(l: int) -> int:
    """Number of Cartesian components of angular momentum ``l``."""
    return (l + 1) * (l + 2) // 2


def _double_factorial(n: int) -> int:
    """(2n-1)!! style double factorial; ``_double_factorial(-1) == 1``."""
    out = 1
    while n > 1:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, lx: int, ly: int, lz: int) -> float:
    """Normalization constant of a primitive Cartesian Gaussian.

    N such that the primitive ``N * x^lx y^ly z^lz exp(-alpha r^2)``
    has unit self-overlap.
    """
    l = lx + ly + lz
    num = (2.0 * alpha / math.pi) ** 0.75 * (4.0 * alpha) ** (l / 2.0)
    den = math.sqrt(
        _double_factorial(2 * lx - 1)
        * _double_factorial(2 * ly - 1)
        * _double_factorial(2 * lz - 1)
    )
    return num / den


@dataclass(frozen=True)
class Shell:
    """A contracted Cartesian Gaussian shell of pure angular momentum.

    Attributes
    ----------
    l:
        Angular momentum (0 = s, 1 = p, 2 = d, ...).
    exps:
        Primitive exponents, shape ``(nprim,)``.
    coefs:
        Contraction coefficients *after* normalization, shape
        ``(nprim,)``.  These absorb both the primitive normalization of
        the ``(l, 0, 0)`` component and the contracted normalization, so
        integral kernels use them directly.
    center:
        Cartesian origin in Bohr.
    atom_index:
        Index of the parent atom in the molecule.
    bf_offset:
        Index of this shell's first basis function in the full basis
        (assigned by :class:`~repro.chem.basis.basisset.BasisSet`).
    """

    l: int
    exps: np.ndarray
    coefs: np.ndarray
    center: np.ndarray
    atom_index: int = -1
    bf_offset: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "exps", np.asarray(self.exps, dtype=np.float64))
        object.__setattr__(self, "coefs", np.asarray(self.coefs, dtype=np.float64))
        object.__setattr__(self, "center", np.asarray(self.center, dtype=np.float64))
        if self.exps.shape != self.coefs.shape:
            raise ValueError("exps and coefs must have the same shape")
        if self.center.shape != (3,):
            raise ValueError("center must be a 3-vector")

    @property
    def nprim(self) -> int:
        """Number of primitives in the contraction."""
        return self.exps.size

    @property
    def nfunc(self) -> int:
        """Number of Cartesian basis functions carried by this shell."""
        return ncart(self.l)

    @property
    def components(self) -> tuple[tuple[int, int, int], ...]:
        """Cartesian exponent triples in canonical order."""
        return CART_COMPONENTS[self.l]

    @property
    def letter(self) -> str:
        """Spectroscopic letter of the angular momentum."""
        return AM_LETTERS[self.l]

    def min_exponent(self) -> float:
        """Smallest (most diffuse) primitive exponent — drives screening decay."""
        return float(self.exps.min())


def normalize_contracted(l: int, exps: np.ndarray, coefs: np.ndarray) -> np.ndarray:
    """Return contraction coefficients normalized for angular momentum ``l``.

    Each raw coefficient is first multiplied by the norm of its primitive
    (using the ``(l, 0, 0)`` Cartesian component), then the whole
    contraction is rescaled to unit self-overlap.  The resulting shell's
    ``(l, 0, 0)`` component is exactly normalized; other components of a
    d/f shell differ by a constant factor, which leaves the variational
    space — and hence all SCF energies — unchanged.
    """
    exps = np.asarray(exps, dtype=np.float64)
    coefs = np.asarray(coefs, dtype=np.float64)
    prim_norms = np.array([primitive_norm(a, l, 0, 0) for a in exps])
    c = coefs * prim_norms

    # Self-overlap of the contracted (l,0,0) component.
    ee = exps[:, None] + exps[None, :]
    df = _double_factorial(2 * l - 1)
    s = np.sum(
        c[:, None]
        * c[None, :]
        * df
        * (math.pi / ee) ** 1.5
        / (2.0 * ee) ** l
    )
    return c / math.sqrt(s)


@dataclass(frozen=True)
class CompositeShell:
    """A GAMESS scheduling shell: one or more pure shells on one center.

    For Pople basis sets the composite is either a single pure shell
    (type ``"S"``, ``"D"``, ...) or a fused SP pair (type ``"L"``).  The
    parallel Fock algorithms iterate over composite shells; the integral
    engine expands each into its :attr:`subshells`.
    """

    subshells: tuple[Shell, ...]
    atom_index: int
    index: int = -1

    @property
    def stype(self) -> str:
        """Shell type label: ``"S"``, ``"P"``, ``"D"``, or ``"L"`` for SP."""
        ls = tuple(s.l for s in self.subshells)
        if ls == (0, 1):
            return "L"
        if len(ls) == 1:
            return AM_LETTERS[ls[0]].upper()
        return "+".join(AM_LETTERS[l].upper() for l in ls)

    @property
    def center(self) -> np.ndarray:
        """Common Cartesian origin (Bohr)."""
        return self.subshells[0].center

    @property
    def nfunc(self) -> int:
        """Total basis functions across the fused sub-shells."""
        return sum(s.nfunc for s in self.subshells)

    @property
    def bf_offset(self) -> int:
        """First basis-function index of the composite block."""
        return self.subshells[0].bf_offset

    @property
    def bf_range(self) -> range:
        """Contiguous basis-function index range of the composite block."""
        start = self.bf_offset
        return range(start, start + self.nfunc)

    @property
    def max_l(self) -> int:
        """Highest angular momentum among the fused sub-shells."""
        return max(s.l for s in self.subshells)

    def min_exponent(self) -> float:
        """Most diffuse primitive exponent in the composite."""
        return min(s.min_exponent() for s in self.subshells)
