"""BasisSet: a molecule paired with a Gaussian basis.

Provides the two shell views the rest of the library consumes:

* ``shells`` — pure-angular-momentum :class:`Shell` objects in basis
  order (the unit of integral evaluation);
* ``composite_shells`` — GAMESS-style :class:`CompositeShell` objects
  (the unit of work distribution in Algorithms 1-3 and of Schwarz
  screening), with fused SP ("L") shells counted once, matching the
  paper's shell counts.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.chem.basis.data import basis_definition
from repro.chem.basis.shell import (
    CompositeShell,
    Shell,
    normalize_contracted,
)
from repro.chem.molecule import Molecule

_TYPE_TO_L = {"S": 0, "P": 1, "D": 2, "F": 3}


class BasisSet:
    """The atomic-orbital basis of a molecule.

    Parameters
    ----------
    molecule:
        Target molecule.
    basis_name:
        Name of a built-in basis set (``"sto-3g"``, ``"6-31g"``,
        ``"6-31g(d)"``; see :func:`repro.chem.basis.data.available_basis_sets`).
    """

    def __init__(self, molecule: Molecule, basis_name: str) -> None:
        self.molecule = molecule
        self.name = basis_name

        shells: list[Shell] = []
        composites: list[CompositeShell] = []
        offset = 0

        for atom_index, atom in enumerate(molecule.atoms):
            center = np.asarray(atom.xyz, dtype=np.float64)
            for stype, prims in basis_definition(basis_name, atom.symbol):
                rows = np.asarray(prims, dtype=np.float64)
                exps = rows[:, 0]
                if stype == "L":
                    sub: list[Shell] = []
                    for l, col in ((0, 1), (1, 2)):
                        coefs = normalize_contracted(l, exps, rows[:, col])
                        sh = Shell(l, exps, coefs, center, atom_index, offset)
                        offset += sh.nfunc
                        sub.append(sh)
                        shells.append(sh)
                    composites.append(
                        CompositeShell(tuple(sub), atom_index, len(composites))
                    )
                else:
                    l = _TYPE_TO_L[stype]
                    coefs = normalize_contracted(l, exps, rows[:, 1])
                    sh = Shell(l, exps, coefs, center, atom_index, offset)
                    offset += sh.nfunc
                    shells.append(sh)
                    composites.append(
                        CompositeShell((sh,), atom_index, len(composites))
                    )

        self._shells: tuple[Shell, ...] = tuple(shells)
        self._composites: tuple[CompositeShell, ...] = tuple(composites)
        self._nbf = offset

    # -- sizes -------------------------------------------------------------

    @property
    def nbf(self) -> int:
        """Total number of (Cartesian) basis functions."""
        return self._nbf

    @property
    def nshells(self) -> int:
        """Number of GAMESS composite shells (the paper's ``NShells``)."""
        return len(self._composites)

    @property
    def n_pure_shells(self) -> int:
        """Number of pure-angular-momentum shells (integral units)."""
        return len(self._shells)

    # -- views ---------------------------------------------------------------

    @property
    def shells(self) -> tuple[Shell, ...]:
        """Pure shells in basis order."""
        return self._shells

    @property
    def composite_shells(self) -> tuple[CompositeShell, ...]:
        """GAMESS composite shells in basis order."""
        return self._composites

    def shell_centers(self) -> np.ndarray:
        """``(nshells, 3)`` composite-shell centers in Bohr."""
        return np.array([cs.center for cs in self._composites])

    def shell_bf_offsets(self) -> np.ndarray:
        """First basis-function index of each composite shell."""
        return np.array([cs.bf_offset for cs in self._composites], dtype=np.int64)

    def shell_nfuncs(self) -> np.ndarray:
        """Basis-function count of each composite shell."""
        return np.array([cs.nfunc for cs in self._composites], dtype=np.int64)

    def shell_types(self) -> tuple[str, ...]:
        """Type label (``"S"``, ``"L"``, ``"D"``, ...) per composite shell."""
        return tuple(cs.stype for cs in self._composites)

    def max_shell_nfunc(self) -> int:
        """Largest composite-shell block size (the paper's ``shellSize``)."""
        return max(cs.nfunc for cs in self._composites)

    def __len__(self) -> int:
        return self.nshells

    def __iter__(self) -> Iterator[CompositeShell]:
        return iter(self._composites)

    def __repr__(self) -> str:
        return (
            f"BasisSet({self.name!r}, molecule={self.molecule.name!r}, "
            f"nshells={self.nshells}, nbf={self.nbf})"
        )

    # -- labels ---------------------------------------------------------------

    def bf_labels(self) -> list[str]:
        """Human-readable label per basis function (atom, shell, component)."""
        labels: list[str] = []
        for sh in self._shells:
            sym = self.molecule.atoms[sh.atom_index].symbol
            for (lx, ly, lz) in sh.components:
                comp = "x" * lx + "y" * ly + "z" * lz or "s"
                labels.append(f"{sym}{sh.atom_index}:{sh.letter}{comp}")
        return labels
