"""Molecule container: atoms, geometry, nuclear repulsion, XYZ I/O.

Geometries are stored internally in Bohr.  Constructors accept either
unit; the benchmark dataset builders in :mod:`repro.chem.graphene`
produce Angstrom geometries and convert here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR, BOHR_TO_ANGSTROM
from repro.chem.elements import Element, element_by_symbol, element_by_z


@dataclass(frozen=True)
class Atom:
    """A single atom: element plus Cartesian position in Bohr."""

    element: Element
    xyz: tuple[float, float, float]

    @property
    def z(self) -> int:
        """Nuclear charge."""
        return self.element.z

    @property
    def symbol(self) -> str:
        """Element symbol."""
        return self.element.symbol


class Molecule:
    """An immutable molecular geometry.

    Parameters
    ----------
    symbols:
        Element symbols (or atomic numbers) for each atom.
    coords:
        ``(natoms, 3)`` Cartesian coordinates.
    units:
        ``"bohr"`` (default) or ``"angstrom"``; coordinates are converted
        to Bohr on construction.
    charge:
        Total molecular charge; together with the nuclear charges this
        determines the electron count.
    name:
        Optional human-readable label (used in reports).
    """

    def __init__(
        self,
        symbols: Sequence[str | int],
        coords: Iterable[Sequence[float]],
        *,
        units: str = "bohr",
        charge: int = 0,
        name: str = "",
    ) -> None:
        xyz = np.asarray(list(coords), dtype=np.float64)
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError(f"coords must be (natoms, 3); got {xyz.shape}")
        if len(symbols) != xyz.shape[0]:
            raise ValueError(
                f"{len(symbols)} symbols but {xyz.shape[0]} coordinate rows"
            )
        units = units.lower()
        if units in ("angstrom", "ang", "a"):
            xyz = xyz * ANGSTROM_TO_BOHR
        elif units not in ("bohr", "au"):
            raise ValueError(f"unknown units: {units!r}")

        elements = [
            element_by_z(s) if isinstance(s, (int, np.integer)) else element_by_symbol(s)
            for s in symbols
        ]
        self._atoms: tuple[Atom, ...] = tuple(
            Atom(e, (float(x), float(y), float(z))) for e, (x, y, z) in zip(elements, xyz)
        )
        self._coords = xyz
        self._coords.setflags(write=False)
        self.charge = int(charge)
        self.name = name or "molecule"

    # -- basic accessors -------------------------------------------------

    @property
    def natoms(self) -> int:
        """Number of atoms."""
        return len(self._atoms)

    @property
    def atoms(self) -> tuple[Atom, ...]:
        """Tuple of :class:`Atom` records."""
        return self._atoms

    @property
    def coords(self) -> np.ndarray:
        """Read-only ``(natoms, 3)`` array of positions in Bohr."""
        return self._coords

    @property
    def charges(self) -> np.ndarray:
        """Nuclear charges as a float array."""
        return np.array([a.z for a in self._atoms], dtype=np.float64)

    @property
    def symbols(self) -> tuple[str, ...]:
        """Element symbols in atom order."""
        return tuple(a.symbol for a in self._atoms)

    @property
    def nelectrons(self) -> int:
        """Total electron count (nuclear charges minus molecular charge)."""
        return int(sum(a.z for a in self._atoms) - self.charge)

    def __len__(self) -> int:
        return self.natoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __repr__(self) -> str:
        return f"Molecule({self.name!r}, natoms={self.natoms}, charge={self.charge})"

    # -- derived quantities ----------------------------------------------

    def nuclear_repulsion(self) -> float:
        """Coulomb repulsion energy of the nuclei in Hartree.

        Vectorized over atom pairs; O(natoms^2) memory which is fine for
        every dataset in this package (the largest has 2,016 atoms).
        """
        z = self.charges
        r = self._coords
        diff = r[:, None, :] - r[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        zz = np.outer(z, z)
        iu = np.triu_indices(self.natoms, k=1)
        return float(np.sum(zz[iu] / dist[iu]))

    def distance_matrix(self) -> np.ndarray:
        """Pairwise atom distances in Bohr, shape ``(natoms, natoms)``."""
        r = self._coords
        diff = r[:, None, :] - r[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def center_of_mass(self) -> np.ndarray:
        """Center of mass in Bohr."""
        m = np.array([a.element.mass for a in self._atoms])
        return m @ self._coords / m.sum()

    # -- I/O ---------------------------------------------------------------

    def to_xyz(self, comment: str = "") -> str:
        """Serialize to XYZ file format (Angstrom)."""
        lines = [str(self.natoms), comment or self.name]
        for a in self._atoms:
            x, y, z = (c * BOHR_TO_ANGSTROM for c in a.xyz)
            lines.append(f"{a.symbol:<2s} {x:18.10f} {y:18.10f} {z:18.10f}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_xyz(cls, text: str, *, charge: int = 0, name: str = "") -> "Molecule":
        """Parse an XYZ-format string (Angstrom coordinates)."""
        lines = [ln for ln in text.strip().splitlines()]
        if len(lines) < 2:
            raise ValueError("XYZ input too short")
        natoms = int(lines[0].split()[0])
        body = lines[2 : 2 + natoms]
        if len(body) != natoms:
            raise ValueError(
                f"XYZ header declares {natoms} atoms but {len(body)} rows found"
            )
        symbols: list[str] = []
        coords: list[list[float]] = []
        for ln in body:
            parts = ln.split()
            symbols.append(parts[0])
            coords.append([float(parts[1]), float(parts[2]), float(parts[3])])
        return cls(symbols, coords, units="angstrom", charge=charge,
                   name=name or (lines[1].strip() or "molecule"))


# -- stock geometries used in tests and examples --------------------------


def water(name: str = "water") -> Molecule:
    """Gas-phase water at the standard Crawford-project geometry (Bohr)."""
    return Molecule(
        ["O", "H", "H"],
        [
            (0.000000000000, -0.143225816552, 0.000000000000),
            (1.638036840407, 1.136548822547, 0.000000000000),
            (-1.638036840407, 1.136548822547, 0.000000000000),
        ],
        units="bohr",
        name=name,
    )


def hydrogen_molecule(r_bohr: float = 1.4) -> Molecule:
    """H2 at a given bond length in Bohr (default 1.4, near equilibrium)."""
    return Molecule(["H", "H"], [(0.0, 0.0, 0.0), (0.0, 0.0, r_bohr)], name="H2")


def methane() -> Molecule:
    """Methane with tetrahedral geometry, C-H = 1.089 Angstrom."""
    d = 1.089 / np.sqrt(3.0)
    return Molecule(
        ["C", "H", "H", "H", "H"],
        [
            (0.0, 0.0, 0.0),
            (d, d, d),
            (d, -d, -d),
            (-d, d, -d),
            (-d, -d, d),
        ],
        units="angstrom",
        name="methane",
    )
