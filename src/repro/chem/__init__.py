"""Chemical-system substrate: elements, molecules, basis sets, datasets.

This subpackage provides everything the Hartree-Fock engine consumes:

* :mod:`repro.chem.elements` -- periodic-table data.
* :mod:`repro.chem.molecule` -- the :class:`~repro.chem.molecule.Molecule`
  container (geometry in Bohr, nuclear repulsion, XYZ I/O).
* :mod:`repro.chem.basis` -- Gaussian basis sets with GAMESS-style
  composite L (SP) shells, as used by the paper's shell counting.
* :mod:`repro.chem.graphene` -- the bilayer-graphene benchmark datasets
  of the paper (Figure 2 / Table 4).
"""

from repro.chem.elements import Element, element_by_symbol, element_by_z
from repro.chem.molecule import Atom, Molecule
from repro.chem.graphene import (
    GrapheneSpec,
    PAPER_DATASETS,
    bilayer_graphene,
    paper_dataset,
)

__all__ = [
    "Element",
    "element_by_symbol",
    "element_by_z",
    "Atom",
    "Molecule",
    "GrapheneSpec",
    "PAPER_DATASETS",
    "bilayer_graphene",
    "paper_dataset",
]
