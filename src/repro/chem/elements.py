"""Periodic-table data for the elements the built-in basis sets cover.

Only a light subset of element properties is needed by the HF engine:
atomic number (nuclear charge), symbol, and atomic mass (for center-of-
mass utilities).  The table covers H through Ar which is more than the
built-in basis data requires.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Element:
    """A chemical element.

    Attributes
    ----------
    z:
        Atomic number, equal to the nuclear charge in atomic units.
    symbol:
        IUPAC element symbol (e.g. ``"C"``).
    name:
        English element name.
    mass:
        Standard atomic weight in unified atomic mass units.
    """

    z: int
    symbol: str
    name: str
    mass: float


_ELEMENTS: tuple[Element, ...] = (
    Element(1, "H", "hydrogen", 1.00794),
    Element(2, "He", "helium", 4.002602),
    Element(3, "Li", "lithium", 6.941),
    Element(4, "Be", "beryllium", 9.012182),
    Element(5, "B", "boron", 10.811),
    Element(6, "C", "carbon", 12.0107),
    Element(7, "N", "nitrogen", 14.0067),
    Element(8, "O", "oxygen", 15.9994),
    Element(9, "F", "fluorine", 18.9984032),
    Element(10, "Ne", "neon", 20.1797),
    Element(11, "Na", "sodium", 22.98976928),
    Element(12, "Mg", "magnesium", 24.3050),
    Element(13, "Al", "aluminium", 26.9815386),
    Element(14, "Si", "silicon", 28.0855),
    Element(15, "P", "phosphorus", 30.973762),
    Element(16, "S", "sulfur", 32.065),
    Element(17, "Cl", "chlorine", 35.453),
    Element(18, "Ar", "argon", 39.948),
)

_BY_SYMBOL: dict[str, Element] = {e.symbol.upper(): e for e in _ELEMENTS}
_BY_Z: dict[int, Element] = {e.z: e for e in _ELEMENTS}


def element_by_symbol(symbol: str) -> Element:
    """Look an element up by (case-insensitive) symbol.

    Raises
    ------
    KeyError
        If the symbol is not in the supported H..Ar range.
    """
    key = symbol.strip().upper()
    try:
        return _BY_SYMBOL[key]
    except KeyError:
        raise KeyError(f"unknown element symbol: {symbol!r}") from None


def element_by_z(z: int) -> Element:
    """Look an element up by atomic number.

    Raises
    ------
    KeyError
        If ``z`` is outside the supported 1..18 range.
    """
    try:
        return _BY_Z[int(z)]
    except KeyError:
        raise KeyError(f"unknown atomic number: {z}") from None


def all_elements() -> tuple[Element, ...]:
    """Return the full supported element table (H..Ar)."""
    return _ELEMENTS
