"""Persistent run registry: every run leaves a queryable record.

Before this module, a finished ``repro scf`` left nothing behind but
stdout; profile output landed wherever ``--output-dir`` pointed and
benchmark JSON wherever ``--output`` said.  The registry gives all of
them one home::

    .repro/runs/<run_id>/
        run.json          # id, kind, config, status, timings, summary
        metrics.json      # final metrics snapshot (flat, diffable)
        events.ndjson     # structured event log (when captured)
        telemetry.ndjson  # live telemetry stream (when --telemetry)
        telemetry.sock    # unix socket, while the run is live

``run_id`` is ``<UTC stamp>-<pid>-<entropy>`` — sortable by start time
and collision-free across concurrent runs.  ``repro runs list`` /
``show`` / ``diff`` read this layout; ``diff`` hands the two runs'
``metrics.json`` to the PR-4 comparison engine
(:func:`repro.obs.analysis.compare.compare_runs`), so run-to-run
regressions gate exactly like benchmark baselines.

The registry root resolves from (in order) an explicit argument, the
``REPRO_RUNS_DIR`` environment variable, then ``.repro/runs`` under
the current directory.  Writes are best-effort: a read-only filesystem
degrades registration to a warning, never a crashed SCF.
"""

from __future__ import annotations

import datetime as _dt
import itertools
import json
import logging
import os
import secrets
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

logger = logging.getLogger("repro.obs.registry")

#: Environment override for the registry root (tests point it at tmp).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default registry root, relative to the working directory.
DEFAULT_ROOT = Path(".repro") / "runs"

_RUN_FILE = "run.json"
_METRICS_FILE = "metrics.json"


def runs_root(root: str | Path | None = None) -> Path:
    """Resolve the registry root: argument > env var > default."""
    if root is not None:
        return Path(root)
    env = os.environ.get(RUNS_DIR_ENV)
    return Path(env) if env else DEFAULT_ROOT


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


_run_id_counter = itertools.count()


def new_run_id(clock: _dt.datetime | None = None) -> str:
    """Sortable, collision-free run id: UTC stamp + pid + entropy.

    A per-process counter folds into the entropy so ids minted in the
    same second by the same process can never collide (two random hex
    chars alone have ~1/65k pair odds — too flaky for a busy daemon).
    """
    now = clock or _dt.datetime.now(_dt.timezone.utc)
    seq = next(_run_id_counter) & 0xFFF
    entropy = secrets.token_hex(1)[0]
    return (
        f"{now.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}-{seq:03x}{entropy}"
    )


@dataclass
class RunHandle:
    """One registered run: its id, directory, and mutable record."""

    run_id: str
    directory: Path
    record: dict[str, Any]

    @property
    def ok(self) -> bool:
        """Whether the registry write path is usable."""
        return self.directory is not None

    def path(self, name: str) -> Path:
        """A file path inside the run directory."""
        return self.directory / name

    def save(self) -> None:
        """Persist ``run.json`` (best effort)."""
        try:
            self.path(_RUN_FILE).write_text(
                json.dumps(_json_safe(self.record), indent=2, sort_keys=True)
                + "\n"
            )
        except OSError as exc:  # pragma: no cover - fs failure path
            logger.warning("run registry write failed: %s", exc)

    def add_artifact(self, name: str, path: str | Path) -> None:
        """Record an artifact path produced by this run."""
        self.record.setdefault("artifacts", {})[name] = str(path)

    def finalize(
        self,
        *,
        status: str,
        metrics: dict[str, Any] | None = None,
        summary: dict[str, Any] | None = None,
        event_counts: dict[str, int] | None = None,
    ) -> None:
        """Close the record: status, wall time, final metrics snapshot."""
        now = _dt.datetime.now(_dt.timezone.utc)
        self.record["status"] = status
        self.record["finished_at"] = now.isoformat()
        if summary:
            self.record.setdefault("summary", {}).update(_json_safe(summary))
        if event_counts is not None:
            self.record["event_counts"] = dict(event_counts)
        if metrics is not None:
            try:
                self.path(_METRICS_FILE).write_text(
                    json.dumps(_json_safe(metrics), indent=2, sort_keys=True)
                    + "\n"
                )
            except OSError as exc:  # pragma: no cover - fs failure path
                logger.warning("metrics snapshot write failed: %s", exc)
        self.save()


class RunRegistry:
    """Registry over one root directory of run records."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = runs_root(root)

    # -- writing -------------------------------------------------------------

    def register(
        self, kind: str, *, config: dict[str, Any] | None = None
    ) -> RunHandle | None:
        """Open a new run record; returns ``None`` when the fs refuses."""
        run_id = new_run_id()
        directory = self.root / run_id
        try:
            directory.mkdir(parents=True, exist_ok=False)
        except OSError as exc:
            logger.warning("cannot register run under %s: %s", self.root, exc)
            return None
        record = {
            "run_id": run_id,
            "kind": kind,
            "config": _json_safe(config or {}),
            "status": "running",
            "started_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "artifacts": {},
        }
        handle = RunHandle(run_id=run_id, directory=directory, record=record)
        handle.save()
        logger.info("registered %s run %s", kind, run_id)
        return handle

    # -- reading -------------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All registered run ids, oldest first (ids sort by start time)."""
        if not self.root.is_dir():
            return []
        return sorted(
            d.name for d in self.root.iterdir()
            if d.is_dir() and (d / _RUN_FILE).exists()
        )

    def load(self, run_id: str) -> dict[str, Any]:
        """The ``run.json`` record of one run (exact id)."""
        return json.loads((self.root / run_id / _RUN_FILE).read_text())

    def find(self, needle: str) -> str:
        """Resolve an id prefix or ``"latest"`` to an exact run id.

        Raises ``KeyError`` with a helpful message when the needle
        matches zero or several runs.
        """
        ids = self.run_ids()
        if not ids:
            raise KeyError(f"no runs registered under {self.root}")
        if needle in ("latest", ""):
            return ids[-1]
        matches = [i for i in ids if i.startswith(needle)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run matches {needle!r} under {self.root}")
        raise KeyError(
            f"{needle!r} is ambiguous: matches {', '.join(matches[-5:])}"
        )

    def metrics_path(self, run_id: str) -> Path:
        return self.root / run_id / _METRICS_FILE

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    # -- retention -----------------------------------------------------------

    def _dir_bytes(self, run_id: str) -> int:
        total = 0
        for p in self.run_dir(run_id).rglob("*"):
            try:
                if p.is_file():
                    total += p.stat().st_size
            except OSError:  # pragma: no cover - races with deletion
                continue
        return total

    def prune(
        self,
        *,
        keep_last: int | None = None,
        max_age_s: float | None = None,
        max_bytes: int | None = None,
        protect: set[str] | frozenset[str] | None = None,
        now: float | None = None,
        dry_run: bool = False,
    ) -> list[str]:
        """Retention GC: delete old run directories, oldest first.

        Three independent policies compose (a run violating any one is
        removed): ``keep_last`` keeps only the newest N runs,
        ``max_age_s`` drops runs whose ``run.json`` is older than the
        cutoff, and ``max_bytes`` deletes oldest-first until the
        registry fits the byte budget.  Runs whose record still says
        ``status: "running"`` and ids in ``protect`` are never
        touched (the serving daemon protects its own live jobs this
        way).  Returns the removed ids, oldest first; deletion is
        best-effort and a failed ``rmtree`` is logged, not raised.
        With ``dry_run`` nothing is deleted — the victim list is
        returned for preview.
        """
        ids = self.run_ids()  # oldest first
        protected = set(protect or ())
        candidates = []
        for run_id in ids:
            if run_id in protected:
                continue
            try:
                if self.load(run_id).get("status") == "running":
                    continue
            except (OSError, json.JSONDecodeError):
                pass  # unreadable record: still eligible
            candidates.append(run_id)

        victims: set[str] = set()
        if max_age_s is not None:
            cutoff = (time.time() if now is None else now) - max_age_s
            for run_id in candidates:
                try:
                    mtime = (self.run_dir(run_id) / _RUN_FILE).stat().st_mtime
                except OSError:
                    mtime = 0.0
                if mtime < cutoff:
                    victims.add(run_id)
        if keep_last is not None and keep_last >= 0:
            survivors = [i for i in candidates if i not in victims]
            # keep_last counts *all* retained runs, protected included.
            retained = len(ids) - len(victims)
            excess = retained - keep_last
            for run_id in survivors:
                if excess <= 0:
                    break
                victims.add(run_id)
                excess -= 1
        if max_bytes is not None:
            survivors = [i for i in ids if i not in victims]
            sizes = {i: self._dir_bytes(i) for i in survivors}
            total = sum(sizes.values())
            for run_id in survivors:
                if total <= max_bytes:
                    break
                if run_id not in candidates:
                    continue
                victims.add(run_id)
                total -= sizes[run_id]

        removed = [i for i in ids if i in victims]
        if dry_run:
            return removed
        for run_id in removed:
            try:
                shutil.rmtree(self.run_dir(run_id))
            except OSError as exc:  # pragma: no cover - fs failure path
                logger.warning("prune failed for %s: %s", run_id, exc)
        if removed:
            logger.info("pruned %d run(s) under %s", len(removed), self.root)
        return removed

    # -- rendering -----------------------------------------------------------

    def list_table(self) -> str:
        """Human-readable table of all runs, newest last."""
        rows = []
        for run_id in self.run_ids():
            try:
                rec = self.load(run_id)
            except (OSError, json.JSONDecodeError):
                continue
            summary = rec.get("summary", {})
            energy = summary.get("energy")
            rows.append(
                (
                    run_id,
                    rec.get("kind", "?"),
                    rec.get("status", "?"),
                    rec.get("config", {}).get("algorithm", "-"),
                    f"{energy:.6f}" if isinstance(energy, float) else "-",
                )
            )
        if not rows:
            return f"(no runs registered under {self.root})"
        header = ("run", "kind", "status", "algorithm", "energy/Eh")
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        lines = [fmt.format(*header)]
        lines += [fmt.format(*row) for row in rows]
        return "\n".join(lines)

    def show(self, run_id: str) -> str:
        """Full dump of one run: record, event counts, artifact paths."""
        rec = self.load(run_id)
        lines = [f"run {run_id} ({rec.get('kind', '?')})"]
        lines.append(json.dumps(rec, indent=2, sort_keys=True))
        events = self.run_dir(run_id) / "events.ndjson"
        if "event_counts" not in rec and events.exists():
            counts: dict[str, int] = {}
            for line in filter(
                None, (ln.strip() for ln in events.read_text().splitlines())
            ):
                try:
                    kind = json.loads(line).get("event", "?")
                except json.JSONDecodeError:
                    continue
                counts[kind] = counts.get(kind, 0) + 1
            if counts:
                lines.append("events:")
                for kind in sorted(counts):
                    lines.append(f"  {kind}: {counts[kind]}")
        return "\n".join(lines)
