"""Persistent run registry: every run leaves a queryable record.

Before this module, a finished ``repro scf`` left nothing behind but
stdout; profile output landed wherever ``--output-dir`` pointed and
benchmark JSON wherever ``--output`` said.  The registry gives all of
them one home::

    .repro/runs/<run_id>/
        run.json          # id, kind, config, status, timings, summary
        metrics.json      # final metrics snapshot (flat, diffable)
        events.ndjson     # structured event log (when captured)
        telemetry.ndjson  # live telemetry stream (when --telemetry)
        telemetry.sock    # unix socket, while the run is live

``run_id`` is ``<UTC stamp>-<pid>-<entropy>`` — sortable by start time
and collision-free across concurrent runs.  ``repro runs list`` /
``show`` / ``diff`` read this layout; ``diff`` hands the two runs'
``metrics.json`` to the PR-4 comparison engine
(:func:`repro.obs.analysis.compare.compare_runs`), so run-to-run
regressions gate exactly like benchmark baselines.

The registry root resolves from (in order) an explicit argument, the
``REPRO_RUNS_DIR`` environment variable, then ``.repro/runs`` under
the current directory.  Writes are best-effort: a read-only filesystem
degrades registration to a warning, never a crashed SCF.
"""

from __future__ import annotations

import datetime as _dt
import json
import logging
import os
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Any

logger = logging.getLogger("repro.obs.registry")

#: Environment override for the registry root (tests point it at tmp).
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default registry root, relative to the working directory.
DEFAULT_ROOT = Path(".repro") / "runs"

_RUN_FILE = "run.json"
_METRICS_FILE = "metrics.json"


def runs_root(root: str | Path | None = None) -> Path:
    """Resolve the registry root: argument > env var > default."""
    if root is not None:
        return Path(root)
    env = os.environ.get(RUNS_DIR_ENV)
    return Path(env) if env else DEFAULT_ROOT


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def new_run_id(clock: _dt.datetime | None = None) -> str:
    """Sortable, collision-free run id: UTC stamp + pid + entropy."""
    now = clock or _dt.datetime.now(_dt.timezone.utc)
    return (
        f"{now.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}-{secrets.token_hex(2)}"
    )


@dataclass
class RunHandle:
    """One registered run: its id, directory, and mutable record."""

    run_id: str
    directory: Path
    record: dict[str, Any]

    @property
    def ok(self) -> bool:
        """Whether the registry write path is usable."""
        return self.directory is not None

    def path(self, name: str) -> Path:
        """A file path inside the run directory."""
        return self.directory / name

    def save(self) -> None:
        """Persist ``run.json`` (best effort)."""
        try:
            self.path(_RUN_FILE).write_text(
                json.dumps(_json_safe(self.record), indent=2, sort_keys=True)
                + "\n"
            )
        except OSError as exc:  # pragma: no cover - fs failure path
            logger.warning("run registry write failed: %s", exc)

    def add_artifact(self, name: str, path: str | Path) -> None:
        """Record an artifact path produced by this run."""
        self.record.setdefault("artifacts", {})[name] = str(path)

    def finalize(
        self,
        *,
        status: str,
        metrics: dict[str, Any] | None = None,
        summary: dict[str, Any] | None = None,
        event_counts: dict[str, int] | None = None,
    ) -> None:
        """Close the record: status, wall time, final metrics snapshot."""
        now = _dt.datetime.now(_dt.timezone.utc)
        self.record["status"] = status
        self.record["finished_at"] = now.isoformat()
        if summary:
            self.record.setdefault("summary", {}).update(_json_safe(summary))
        if event_counts is not None:
            self.record["event_counts"] = dict(event_counts)
        if metrics is not None:
            try:
                self.path(_METRICS_FILE).write_text(
                    json.dumps(_json_safe(metrics), indent=2, sort_keys=True)
                    + "\n"
                )
            except OSError as exc:  # pragma: no cover - fs failure path
                logger.warning("metrics snapshot write failed: %s", exc)
        self.save()


class RunRegistry:
    """Registry over one root directory of run records."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = runs_root(root)

    # -- writing -------------------------------------------------------------

    def register(
        self, kind: str, *, config: dict[str, Any] | None = None
    ) -> RunHandle | None:
        """Open a new run record; returns ``None`` when the fs refuses."""
        run_id = new_run_id()
        directory = self.root / run_id
        try:
            directory.mkdir(parents=True, exist_ok=False)
        except OSError as exc:
            logger.warning("cannot register run under %s: %s", self.root, exc)
            return None
        record = {
            "run_id": run_id,
            "kind": kind,
            "config": _json_safe(config or {}),
            "status": "running",
            "started_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "artifacts": {},
        }
        handle = RunHandle(run_id=run_id, directory=directory, record=record)
        handle.save()
        logger.info("registered %s run %s", kind, run_id)
        return handle

    # -- reading -------------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All registered run ids, oldest first (ids sort by start time)."""
        if not self.root.is_dir():
            return []
        return sorted(
            d.name for d in self.root.iterdir()
            if d.is_dir() and (d / _RUN_FILE).exists()
        )

    def load(self, run_id: str) -> dict[str, Any]:
        """The ``run.json`` record of one run (exact id)."""
        return json.loads((self.root / run_id / _RUN_FILE).read_text())

    def find(self, needle: str) -> str:
        """Resolve an id prefix or ``"latest"`` to an exact run id.

        Raises ``KeyError`` with a helpful message when the needle
        matches zero or several runs.
        """
        ids = self.run_ids()
        if not ids:
            raise KeyError(f"no runs registered under {self.root}")
        if needle in ("latest", ""):
            return ids[-1]
        matches = [i for i in ids if i.startswith(needle)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise KeyError(f"no run matches {needle!r} under {self.root}")
        raise KeyError(
            f"{needle!r} is ambiguous: matches {', '.join(matches[-5:])}"
        )

    def metrics_path(self, run_id: str) -> Path:
        return self.root / run_id / _METRICS_FILE

    def run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    # -- rendering -----------------------------------------------------------

    def list_table(self) -> str:
        """Human-readable table of all runs, newest last."""
        rows = []
        for run_id in self.run_ids():
            try:
                rec = self.load(run_id)
            except (OSError, json.JSONDecodeError):
                continue
            summary = rec.get("summary", {})
            energy = summary.get("energy")
            rows.append(
                (
                    run_id,
                    rec.get("kind", "?"),
                    rec.get("status", "?"),
                    rec.get("config", {}).get("algorithm", "-"),
                    f"{energy:.6f}" if isinstance(energy, float) else "-",
                )
            )
        if not rows:
            return f"(no runs registered under {self.root})"
        header = ("run", "kind", "status", "algorithm", "energy/Eh")
        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows))
            for c in range(len(header))
        ]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        lines = [fmt.format(*header)]
        lines += [fmt.format(*row) for row in rows]
        return "\n".join(lines)

    def show(self, run_id: str) -> str:
        """Full dump of one run: record, event counts, artifact paths."""
        rec = self.load(run_id)
        lines = [f"run {run_id} ({rec.get('kind', '?')})"]
        lines.append(json.dumps(rec, indent=2, sort_keys=True))
        events = self.run_dir(run_id) / "events.ndjson"
        if "event_counts" not in rec and events.exists():
            counts: dict[str, int] = {}
            for line in filter(
                None, (ln.strip() for ln in events.read_text().splitlines())
            ):
                try:
                    kind = json.loads(line).get("event", "?")
                except json.JSONDecodeError:
                    continue
                counts[kind] = counts.get(kind, 0) + 1
            if counts:
                lines.append("events:")
                for kind in sorted(counts):
                    lines.append(f"  {kind}: {counts[kind]}")
        return "\n".join(lines)
