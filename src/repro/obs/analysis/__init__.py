"""repro.obs.analysis — turn raw telemetry into the paper's analyses.

PR 1's observability layer *exports* spans and metrics; this package
*consumes* them:

* :mod:`repro.obs.analysis.timeline` — per-rank/per-thread
  busy/idle/wait breakdowns, DLB-grant Gantt, critical-path extraction,
  load-imbalance decomposition, and merged multi-run Chrome traces
  (the paper's Figures 3–6 discussion, from real span data).
* :mod:`repro.obs.analysis.compare` — a diff engine over benchmark
  records and NDJSON metric dumps with configurable noise tolerance;
  the ``repro compare`` CLI and the CI ``bench-regress`` gate sit on
  top of it.
"""

from repro.obs.analysis.compare import (
    KeyDelta,
    RunComparison,
    RunRecord,
    compare_runs,
    flatten_record,
    load_run,
)
from repro.obs.analysis.timeline import (
    RankBreakdown,
    ThreadBreakdown,
    TimelineAnalysis,
    TimelineSpan,
    analyze_timeline,
    analyze_tracer,
    ascii_gantt,
    chrome_events_from_spans,
    critical_path,
    merged_chrome_trace,
    spans_from_ndjson,
    timeline_report,
    timeline_spans,
)

__all__ = [
    "KeyDelta",
    "RankBreakdown",
    "RunComparison",
    "RunRecord",
    "ThreadBreakdown",
    "TimelineAnalysis",
    "TimelineSpan",
    "analyze_timeline",
    "analyze_tracer",
    "ascii_gantt",
    "chrome_events_from_spans",
    "compare_runs",
    "critical_path",
    "flatten_record",
    "load_run",
    "merged_chrome_trace",
    "spans_from_ndjson",
    "timeline_report",
    "timeline_spans",
]
