"""Timeline analytics over the tracer's span forest.

The paper's profiling discussion (Figures 3–6) is not about raw timers
— it is about *where the parallel time goes*: how busy each MPI rank
and OpenMP thread is, how much of the Fock build is synchronization
(flushes, ``gsumf``), how well the dynamic load balancer equalizes the
per-rank work, and which call chain bounds the time to solution.  This
module computes exactly those quantities from recorded spans
(:class:`~repro.obs.tracer.Tracer` or a ``spans_ndjson`` dump) plus an
optional structured event log, and renders them as:

* per-rank and per-thread **busy/idle/wait breakdowns** (interval-union
  based, so nested instrumentation is never double counted);
* a **load-imbalance decomposition** — max/mean busy time per rank
  (the paper's load-balance metric) and the DLB efficiency it implies;
* a **DLB-grant Gantt** — an ASCII per-rank timeline with injected
  faults, checkpoints, and recovery events overlaid;
* the **critical path** — the chain of longest spans from the root;
* a **merged multi-run Chrome trace** for side-by-side inspection of
  several runs (e.g. the three Fock algorithms) in one Perfetto tab.

Span classification is by name: quartet/diagonalization work counts as
*busy*, flush/reduction spans as *wait*, structural spans (``scf/run``,
``fock/build``) as neither.  Everything is computed on the recorded
wall clock, so the same analysis applies to live tracers and to NDJSON
files read back days later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.events import Event
from repro.obs.export import _json_safe
from repro.obs.tracer import Tracer

_MICRO = 1e6

#: Span names that represent computational work (busy time).
WORK_SPANS = frozenset(
    {
        "fock/kl",
        "fock/jk",
        "fock/quartets",
        "eri/quartet_batch",
        "scf/diagonalize",
        "scf/diis",
        "perfsim/assign_dynamic",
    }
)

#: Span names that represent synchronization / reduction (wait time).
WAIT_SPANS = frozenset(
    {
        "fock/gsumf",
        "fock/flush_fi",
        "fock/flush_fj",
        "fock/thread_reduce",
    }
)

#: Work spans that carry an explicit OpenMP thread context.
THREAD_WORK_SPANS = frozenset({"fock/kl", "fock/jk"})

#: Event kinds shown on the Gantt, with their marker characters.
EVENT_MARKERS = {
    "fault.kill": "K",
    "dlb.rank_failed": "K",
    "fault.delay": "D",
    "fault.corrupt": "C",
    "fault.corrupt_rejected": "C",
    "scf.recovery": "R",
    "scf.checkpoint": "S",
    "scf.restart": "^",
    "scf.converged": "*",
    "worker.hung": "!",
    "worker.recovered": "+",
    "process.worker_lost": "L",
}


@dataclass(frozen=True)
class TimelineSpan:
    """One completed span, flattened for analysis (attrs resolved)."""

    name: str
    start: float
    end: float
    depth: int
    rank: int
    thread: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        """``work`` / ``wait`` / ``other`` classification of this span."""
        if self.name in WORK_SPANS:
            return "work"
        if self.name in WAIT_SPANS:
            return "wait"
        return "other"


def _as_int(value: Any, default: int = 0) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def timeline_spans(tracer: Tracer) -> list[TimelineSpan]:
    """Flatten a tracer's completed spans (absolute timestamps kept)."""
    out: list[TimelineSpan] = []
    for s in tracer.walk():
        if s.end is None:
            continue
        thread = s.effective_attr("thread", None)
        out.append(
            TimelineSpan(
                name=s.name,
                start=s.start,
                end=s.end,
                depth=s.depth,
                rank=_as_int(s.effective_attr("rank", 0)),
                thread=None if thread is None else _as_int(thread),
                attrs=dict(s.attrs),
            )
        )
    return out


def spans_from_ndjson(text: str) -> list[TimelineSpan]:
    """Parse a ``spans_ndjson`` dump back into :class:`TimelineSpan` records."""
    out: list[TimelineSpan] = []
    for line in filter(None, (ln.strip() for ln in text.splitlines())):
        rec = json.loads(line)
        start = float(rec["start_s"])
        attrs = rec.get("attrs", {})
        out.append(
            TimelineSpan(
                name=rec["span"],
                start=start,
                end=start + float(rec["dur_s"]),
                depth=int(rec.get("depth", 0)),
                rank=_as_int(rec.get("rank", 0)),
                thread=_as_int(rec["thread"]) if "thread" in rec else None,
                attrs=attrs,
            )
        )
    return out


# -- interval arithmetic -----------------------------------------------------


def _merge_intervals(
    intervals: Iterable[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Union of half-open intervals as a sorted, disjoint list."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _union_seconds(intervals: Iterable[tuple[float, float]]) -> float:
    return sum(hi - lo for lo, hi in _merge_intervals(intervals))


def _overlap_seconds(
    merged: list[tuple[float, float]], lo: float, hi: float
) -> float:
    """Seconds of ``[lo, hi)`` covered by a merged interval list."""
    total = 0.0
    for a, b in merged:
        if b <= lo:
            continue
        if a >= hi:
            break
        total += min(b, hi) - max(a, lo)
    return total


#: Public aliases: the live ``repro monitor`` dashboard draws its
#: per-rank activity lanes with the same interval-union arithmetic the
#: post-hoc breakdowns use.
merge_intervals = _merge_intervals
union_seconds = _union_seconds
overlap_seconds = _overlap_seconds


# -- breakdowns --------------------------------------------------------------


@dataclass
class RankBreakdown:
    """Busy/wait/idle decomposition of one rank's active window."""

    rank: int
    busy_s: float
    wait_s: float
    first: float
    last: float
    nspans: int
    work_intervals: list[tuple[float, float]] = field(repr=False)
    wait_intervals: list[tuple[float, float]] = field(repr=False)

    @property
    def active_s(self) -> float:
        """The rank's span window (first start to last end)."""
        return max(self.last - self.first, 0.0)

    @property
    def idle_s(self) -> float:
        """Window time covered by neither work nor wait spans."""
        covered = _union_seconds(self.work_intervals + self.wait_intervals)
        return max(self.active_s - covered, 0.0)

    @property
    def busy_fraction(self) -> float:
        return self.busy_s / self.active_s if self.active_s > 0 else 0.0


@dataclass
class ThreadBreakdown:
    """Busy time of one (rank, thread) OpenMP lane."""

    rank: int
    thread: int
    busy_s: float
    nspans: int


@dataclass
class CriticalPathEntry:
    """One hop of the longest-span chain from the root."""

    name: str
    rank: int
    total_s: float
    self_s: float


@dataclass
class TimelineAnalysis:
    """Everything :func:`timeline_report` renders, machine-readable."""

    t_end: float
    ranks: list[RankBreakdown]
    threads: list[ThreadBreakdown]
    path: list[CriticalPathEntry]
    events: list[Event]
    nspans: int

    @property
    def rank_busy(self) -> list[float]:
        return [r.busy_s for r in self.ranks]

    @property
    def rank_imbalance(self) -> float:
        """max/mean busy seconds per rank (1.0 = perfectly balanced)."""
        return _ratio_imbalance(self.rank_busy)

    @property
    def thread_imbalance(self) -> float:
        """max/mean busy seconds per (rank, thread) lane."""
        return _ratio_imbalance([t.busy_s for t in self.threads])

    @property
    def dlb_efficiency(self) -> float:
        """mean/max busy per rank — the DLB's balancing efficiency."""
        busy = self.rank_busy
        mx = max(busy, default=0.0)
        return (sum(busy) / len(busy)) / mx if busy and mx > 0 else 1.0

    @property
    def imbalance_loss_s(self) -> float:
        """Parallel seconds lost to imbalance (max - mean busy)."""
        busy = self.rank_busy
        if not busy:
            return 0.0
        return max(busy) - sum(busy) / len(busy)

    @property
    def recovery_events(self) -> list[Event]:
        """Fault / recovery / checkpoint events (the resilience overlay)."""
        return [
            ev
            for ev in self.events
            if ev.kind.startswith(("fault.", "scf.recovery", "scf.checkpoint",
                                   "scf.restart")) or ev.kind == "dlb.rank_failed"
        ]

    @property
    def schedule(self) -> str:
        """Distribution strategy observed in the run's ``dlb.reset`` events."""
        for ev in self.events:
            if ev.kind == "dlb.reset":
                return str(ev.fields.get("schedule", "dlb"))
        return "unknown"

    @property
    def schedule_advice(self) -> dict[str, str]:
        """Winning-strategy recommendation for this workload's imbalance.

        A near-flat per-rank busy profile means the grant traffic of a
        dynamic counter buys nothing — static wins; mild skew is
        absorbed by guided chunks at a fraction of the counter
        round-trips; heavy skew needs per-task balancing (dlb or
        steal — steal when counter latency dominates, i.e. off-node).
        """
        imb = self.rank_imbalance
        observed = self.schedule
        if imb <= 1.05:
            recommended = "static"
            reason = (
                f"rank imbalance {imb:.3f} <= 1.05: pre-partitioning "
                "matches the dynamic balance with zero counter traffic"
            )
        elif imb <= 1.20:
            recommended = "guided"
            reason = (
                f"rank imbalance {imb:.3f} <= 1.20: shrinking chunks "
                "absorb the skew with one fetch per chunk"
            )
        else:
            recommended = "steal" if observed == "steal" else "dlb"
            reason = (
                f"rank imbalance {imb:.3f} > 1.20: per-task balancing "
                "needed (dlb; steal when counter latency dominates)"
            )
        return {
            "observed": observed,
            "recommended": recommended,
            "reason": reason,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the machine-readable timeline verdict)."""
        return {
            "t_end_s": self.t_end,
            "nspans": self.nspans,
            "rank_imbalance": self.rank_imbalance,
            "thread_imbalance": self.thread_imbalance,
            "dlb_efficiency": self.dlb_efficiency,
            "imbalance_loss_s": self.imbalance_loss_s,
            "schedule": self.schedule,
            "schedule_advice": self.schedule_advice,
            "ranks": [
                {
                    "rank": r.rank,
                    "busy_s": r.busy_s,
                    "wait_s": r.wait_s,
                    "idle_s": r.idle_s,
                    "active_s": r.active_s,
                    "spans": r.nspans,
                }
                for r in self.ranks
            ],
            "threads": [
                {
                    "rank": t.rank,
                    "thread": t.thread,
                    "busy_s": t.busy_s,
                    "spans": t.nspans,
                }
                for t in self.threads
            ],
            "critical_path": [
                {"span": p.name, "rank": p.rank, "total_s": p.total_s,
                 "self_s": p.self_s}
                for p in self.path
            ],
            "events": [
                {"event": ev.kind, "t_s": ev.t, "rank": ev.rank,
                 **{k: _json_safe(v) for k, v in ev.fields.items()}}
                for ev in self.events
            ],
        }


def _ratio_imbalance(values: Sequence[float]) -> float:
    vals = [v for v in values]
    if not vals:
        return 1.0
    mean = sum(vals) / len(vals)
    return max(vals) / mean if mean > 0 else 1.0


def critical_path(spans: Sequence[TimelineSpan]) -> list[CriticalPathEntry]:
    """The chain of longest-duration spans from the longest root down.

    The parent/child structure is reconstructed from the recorded
    depths and intervals (spans nest strictly in the simulated runtime),
    so the extraction works identically on live tracers and NDJSON
    dumps.
    """
    ordered = sorted(spans, key=lambda s: (s.start, s.depth))
    children: dict[int, list[TimelineSpan]] = {}
    last_at_depth: dict[tuple[int, int], TimelineSpan] = {}
    last_at_depth_any: dict[int, TimelineSpan] = {}
    roots: list[TimelineSpan] = []
    for s in ordered:
        # Ranks run concurrently, so several spans at depth-1 may contain
        # this interval; prefer the same-rank candidate (its true parent
        # in the original tree) over the most recent one from any rank.
        parent = last_at_depth.get((s.depth - 1, s.rank))
        if parent is None or parent.end < s.end or parent.start > s.start:
            parent = last_at_depth_any.get(s.depth - 1)
        if (
            s.depth > 0
            and parent is not None
            and parent.start <= s.start
            and parent.end >= s.end
        ):
            children.setdefault(id(parent), []).append(s)
        else:
            roots.append(s)
        last_at_depth[(s.depth, s.rank)] = s
        last_at_depth_any[s.depth] = s

    path: list[CriticalPathEntry] = []
    node = max(roots, key=lambda s: s.duration, default=None)
    while node is not None:
        kids = children.get(id(node), [])
        self_s = node.duration - sum(c.duration for c in kids)
        path.append(
            CriticalPathEntry(
                name=node.name,
                rank=node.rank,
                total_s=node.duration,
                self_s=max(self_s, 0.0),
            )
        )
        node = max(kids, key=lambda s: s.duration, default=None)
    return path


def analyze_timeline(
    spans: Sequence[TimelineSpan],
    events: Sequence[Event] = (),
) -> TimelineAnalysis:
    """Compute the full timeline analysis from flattened spans + events.

    Spans and events must share a time base (they do when both come
    from one traced run, live or via the NDJSON files the profile CLI
    writes); timestamps are re-normalized to the earliest span start.
    """
    spans = list(spans)
    events = list(events)
    if spans:
        t0 = min(s.start for s in spans)
    elif events:
        t0 = min(ev.t for ev in events)
    else:
        t0 = 0.0
    spans = [
        TimelineSpan(
            name=s.name, start=s.start - t0, end=s.end - t0, depth=s.depth,
            rank=s.rank, thread=s.thread, attrs=s.attrs,
        )
        for s in spans
    ]
    events = [
        Event(kind=ev.kind, t=ev.t - t0, rank=ev.rank, fields=ev.fields)
        for ev in events
    ]
    t_end = max((s.end for s in spans), default=0.0)

    by_rank: dict[int, list[TimelineSpan]] = {}
    for s in spans:
        by_rank.setdefault(s.rank, []).append(s)

    ranks: list[RankBreakdown] = []
    for rank in sorted(by_rank):
        rspans = by_rank[rank]
        work = _merge_intervals(
            (s.start, s.end) for s in rspans if s.category == "work"
        )
        wait = _merge_intervals(
            (s.start, s.end) for s in rspans if s.category == "wait"
        )
        ranks.append(
            RankBreakdown(
                rank=rank,
                busy_s=sum(hi - lo for lo, hi in work),
                wait_s=sum(hi - lo for lo, hi in wait),
                first=min(s.start for s in rspans),
                last=max(s.end for s in rspans),
                nspans=len(rspans),
                work_intervals=work,
                wait_intervals=wait,
            )
        )

    lanes: dict[tuple[int, int], list[TimelineSpan]] = {}
    for s in spans:
        if s.name in THREAD_WORK_SPANS and s.thread is not None:
            lanes.setdefault((s.rank, s.thread), []).append(s)
    threads = [
        ThreadBreakdown(
            rank=rank,
            thread=thread,
            busy_s=_union_seconds((s.start, s.end) for s in lspans),
            nspans=len(lspans),
        )
        for (rank, thread), lspans in sorted(lanes.items())
    ]

    return TimelineAnalysis(
        t_end=t_end,
        ranks=ranks,
        threads=threads,
        path=critical_path(spans),
        events=events,
        nspans=len(spans),
    )


def analyze_tracer(
    tracer: Tracer, events: Iterable[Event] | None = None
) -> TimelineAnalysis:
    """:func:`analyze_timeline` straight from a live tracer + event log."""
    return analyze_timeline(
        timeline_spans(tracer), list(events) if events is not None else ()
    )


# -- rendering ---------------------------------------------------------------


def ascii_gantt(analysis: TimelineAnalysis, *, width: int = 64) -> str:
    """Per-rank ASCII Gantt: ``#`` busy, ``~`` wait, ``.`` idle.

    Fault/recovery/checkpoint events are overlaid with single-character
    markers (``K`` kill, ``C`` corrupt, ``R`` recovery stage, ``S``
    checkpoint, ``D`` straggler delay) at their time bucket; run-global
    events go on a separate ``events`` row.
    """
    t1 = analysis.t_end
    if t1 <= 0 or not analysis.ranks:
        return "(no timeline data)"

    def col(t: float) -> int:
        return min(max(int(t / t1 * width), 0), width - 1)

    lines = [f"DLB Gantt — 1 column ≈ {t1 / width:.6f} s "
             f"(# busy, ~ wait, . idle)"]
    rows: dict[int, list[str]] = {}
    for rb in analysis.ranks:
        row = []
        for c in range(width):
            lo, hi = c * t1 / width, (c + 1) * t1 / width
            if not (rb.first < hi and rb.last > lo):
                row.append(" ")
                continue
            w = _overlap_seconds(rb.work_intervals, lo, hi)
            v = _overlap_seconds(rb.wait_intervals, lo, hi)
            row.append("#" if w >= v and w > 0 else "~" if v > 0 else ".")
        rows[rb.rank] = row

    global_row = [" "] * width
    for ev in analysis.events:
        marker = EVENT_MARKERS.get(ev.kind)
        if marker is None:
            continue
        target = rows.get(ev.rank) if ev.rank is not None else None
        (target if target is not None else global_row)[col(ev.t)] = marker

    for rank in sorted(rows):
        lines.append(f"rank {rank:>3d} |{''.join(rows[rank])}|")
    if any(ch != " " for ch in global_row):
        lines.append(f"events   |{''.join(global_row)}|")
    return "\n".join(lines)


def timeline_report(
    analysis: TimelineAnalysis, *, title: str = "timeline"
) -> str:
    """Human-readable timeline analysis (the ``--timeline`` report)."""
    lines = [
        f"{title} — {analysis.nspans} spans over {analysis.t_end:.6f} s",
        "",
        "per-rank breakdown (busy = quartets/diag, wait = flush/reduce):",
        f"{'rank':>6s} {'busy(s)':>10s} {'wait(s)':>10s} {'idle(s)':>10s} "
        f"{'busy%':>7s} {'spans':>7s}",
    ]
    for r in analysis.ranks:
        lines.append(
            f"{r.rank:>6d} {r.busy_s:>10.6f} {r.wait_s:>10.6f} "
            f"{r.idle_s:>10.6f} {100 * r.busy_fraction:>6.1f}% "
            f"{r.nspans:>7d}"
        )
    lines += [
        "",
        "load-imbalance decomposition:",
        f"  rank imbalance (max/mean busy) : {analysis.rank_imbalance:.3f}",
        f"  DLB efficiency (mean/max busy) : "
        f"{100 * analysis.dlb_efficiency:.1f}%",
        f"  imbalance loss                 : "
        f"{analysis.imbalance_loss_s:.6f} s",
        f"  thread imbalance (max/mean)    : {analysis.thread_imbalance:.3f}",
    ]
    advice = analysis.schedule_advice
    lines += [
        f"  schedule (observed)            : {advice['observed']}",
        f"  schedule (recommended)         : {advice['recommended']} "
        f"— {advice['reason']}",
    ]
    if analysis.threads:
        lines += [
            "",
            "per-thread busy time (OpenMP lanes):",
            f"{'rank':>6s} {'thread':>7s} {'busy(s)':>10s} {'spans':>7s}",
        ]
        for t in analysis.threads:
            lines.append(
                f"{t.rank:>6d} {t.thread:>7d} {t.busy_s:>10.6f} "
                f"{t.nspans:>7d}"
            )
    if analysis.path:
        lines += ["", "critical path (longest span chain):"]
        for depth, p in enumerate(analysis.path):
            label = "  " * depth + p.name
            lines.append(
                f"  {label:<40s} rank {p.rank} "
                f"total {p.total_s:>10.6f} s  self {p.self_s:>10.6f} s"
            )
    lines += ["", ascii_gantt(analysis)]
    recov = analysis.recovery_events
    if recov:
        lines += ["", f"resilience events ({len(recov)}):"]
        for ev in recov:
            where = "global" if ev.rank is None else f"rank {ev.rank}"
            detail = " ".join(f"{k}={_json_safe(v)}" for k, v in ev.fields.items())
            lines.append(
                f"  t={ev.t:>10.6f}s {where:<8s} {ev.kind:<24s} {detail}"
            )
    return "\n".join(lines)


# -- merged Chrome traces ----------------------------------------------------

#: pid stride between runs in a merged trace (ranks per run < stride).
_PID_STRIDE = 1000


def chrome_events_from_spans(
    spans: Sequence[TimelineSpan], *, pid_offset: int = 0
) -> list[dict[str, Any]]:
    """Chrome ``"ph": "X"`` events from flattened spans (NDJSON-sourced)."""
    if not spans:
        return []
    t0 = min(s.start for s in spans)
    events = []
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.name.split("/", 1)[0],
                "ph": "X",
                "ts": (s.start - t0) * _MICRO,
                "dur": s.duration * _MICRO,
                "pid": pid_offset + s.rank,
                "tid": s.thread or 0,
                "args": {k: _json_safe(v) for k, v in s.attrs.items()},
            }
        )
    return events


def merged_chrome_trace(
    runs: Sequence[tuple[str, Sequence[TimelineSpan], Sequence[Event]]],
) -> dict[str, Any]:
    """Merge several runs into one Chrome trace document.

    ``runs`` is a sequence of ``(label, spans, events)`` triples; each
    run's ranks are placed on their own pid block (``run_index * 1000 +
    rank``) with the process tracks named ``"<label> rank <r>"``, so
    e.g. all three Fock algorithms can be inspected side by side in a
    single Perfetto tab.
    """
    from repro.obs.export import event_instants

    all_events: list[dict[str, Any]] = []
    meta: list[dict[str, Any]] = []
    for idx, (label, spans, events) in enumerate(runs):
        offset = idx * _PID_STRIDE
        span_events = chrome_events_from_spans(spans, pid_offset=offset)
        all_events += span_events
        if events:
            t0 = min((s.start for s in spans), default=min(ev.t for ev in events))
            all_events += event_instants(events, t0, pid_offset=offset)
        for pid in sorted({e["pid"] for e in span_events}):
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} rank {pid - offset}"},
                }
            )
    return {
        "traceEvents": meta + all_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.analysis"},
    }
