"""Run comparison and benchmark-regression gating.

The diff engine behind ``repro compare`` and the CI ``bench-regress``
job: load two or more machine-readable run records — ``BENCH_*.json``
benchmark records or NDJSON metric dumps (``metrics.ndjson`` from
``repro profile``) — flatten them to ``{key: number}`` mappings, and
diff them under a configurable noise tolerance.

Every key gets a *direction* inferred from its name (``*_per_s`` and
``*hit_rate*`` are higher-better; ``*wall_s``, ``*bytes*`` and
``*imbalance*`` are lower-better; everything else is a neutral
contract value whose change in either direction beyond tolerance is a
regression).  The overall verdict is ``pass`` only when no non-ignored
key regressed, changed, or disappeared — which is what lets CI fail
the build on a real regression while tolerating shared-runner noise
via ``--tolerance`` / ``--ignore``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.metrics import _format_key

#: Name patterns → direction, first match wins (order matters:
#: ``*_per_s`` must shadow the lower-better ``*_s`` suffix).
_DIRECTION_PATTERNS: tuple[tuple[str, str], ...] = (
    ("*_per_s", "higher"),
    ("*speedup*", "higher"),
    ("*hit_rate*", "higher"),
    ("*efficiency*", "higher"),
    ("*_s", "lower"),
    ("*wall*", "lower"),
    ("*seconds*", "lower"),
    ("*bytes*", "lower"),
    ("*imbalance*", "lower"),
    ("*misses*", "lower"),
    ("*evictions*", "lower"),
    ("*races*", "lower"),
    ("*failures*", "lower"),
)


def key_direction(key: str) -> str:
    """``higher`` / ``lower`` / ``neutral`` preference for a metric key."""
    for pattern, direction in _DIRECTION_PATTERNS:
        if fnmatch(key, pattern):
            return direction
    return "neutral"


# -- loading -----------------------------------------------------------------


def flatten_record(obj: Any, prefix: str = "") -> dict[str, float]:
    """Recursively flatten JSON into ``{dotted.key[i]: number}``.

    Strings, booleans, and nulls are dropped — the diff engine compares
    numbers only.
    """
    out: dict[str, float] = {}
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return out
    if isinstance(obj, (int, float)):
        out[prefix or "value"] = float(obj)
        return out
    if isinstance(obj, dict):
        for k, v in obj.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten_record(v, key))
        return out
    if isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(flatten_record(v, f"{prefix}[{i}]"))
        return out
    return out


@dataclass
class RunRecord:
    """A loaded run: a label plus its flat numeric metric mapping."""

    label: str
    values: dict[str, float]

    def __len__(self) -> int:
        return len(self.values)


def _flatten_ndjson_line(rec: dict[str, Any]) -> dict[str, float]:
    if "metric" in rec and "value" in rec:
        base = _format_key(
            rec["metric"], tuple(sorted(rec.get("labels", {}).items()))
        )
        return flatten_record(rec["value"], base)
    if "fock_build" in rec:
        build = rec["fock_build"]
        return flatten_record(
            {k: v for k, v in rec.items() if k != "fock_build"},
            f"fock_build[{build}]",
        )
    if "event" in rec:
        return {}  # event logs are not comparable metrics
    return flatten_record(rec)


def load_run(path: str | Path, *, label: str | None = None) -> RunRecord:
    """Load a ``BENCH_*.json`` record or an NDJSON metrics dump.

    A file whose whole body parses as one JSON object is treated as a
    benchmark record; otherwise each line is parsed as one NDJSON
    metric / fock-build record.
    """
    path = Path(path)
    text = path.read_text()
    label = label if label is not None else path.name
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict) and "metric" not in whole:
        return RunRecord(label=label, values=flatten_record(whole))
    values: dict[str, float] = {}
    for line in filter(None, (ln.strip() for ln in text.splitlines())):
        values.update(_flatten_ndjson_line(json.loads(line)))
    return RunRecord(label=label, values=values)


# -- diffing -----------------------------------------------------------------

#: Statuses that fail the gate.
_FAILING = ("regressed", "changed", "removed")


@dataclass
class KeyDelta:
    """The comparison outcome of one metric key."""

    key: str
    baseline: float | None
    candidate: float | None
    direction: str
    status: str  # ok | improved | regressed | changed | added | removed

    @property
    def rel_change(self) -> float | None:
        """(candidate - baseline) / |baseline|, None when undefined."""
        if self.baseline is None or self.candidate is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else math.inf
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class RunComparison:
    """Baseline-vs-candidate diff with a pass/fail verdict."""

    baseline_label: str
    candidate_label: str
    deltas: list[KeyDelta]
    tolerance: float
    abs_tolerance: float
    ignored: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.deltas:
            out[d.status] = out.get(d.status, 0) + 1
        return out

    @property
    def failures(self) -> list[KeyDelta]:
        return [d for d in self.deltas if d.status in _FAILING]

    @property
    def verdict(self) -> str:
        return "fail" if self.failures else "pass"

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable verdict (the ``--json`` output unit)."""
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "tolerance": self.tolerance,
            "abs_tolerance": self.abs_tolerance,
            "ignored_keys": len(self.ignored),
            "verdict": self.verdict,
            "counts": self.counts,
            "deltas": [
                {
                    "key": d.key,
                    "baseline": d.baseline,
                    "candidate": d.candidate,
                    "rel_change": (
                        None
                        if d.rel_change is None or math.isinf(d.rel_change)
                        else d.rel_change
                    ),
                    "direction": d.direction,
                    "status": d.status,
                }
                for d in self.deltas
            ],
        }

    def report(self) -> str:
        """Human-readable comparison report."""
        lines = [
            f"run comparison — baseline: {self.baseline_label}, "
            f"candidate: {self.candidate_label}",
            f"tolerance: ±{100 * self.tolerance:.1f}% relative "
            f"(abs {self.abs_tolerance:g}); "
            f"{len(self.ignored)} key(s) ignored",
            "",
            f"  {'status':<10s} {'key':<44s} {'baseline':>14s} "
            f"{'candidate':>14s} {'Δ%':>8s}",
        ]
        interesting = [d for d in self.deltas if d.status != "ok"]
        shown = interesting if interesting else self.deltas
        for d in sorted(shown, key=lambda d: (d.status, d.key)):
            base = "-" if d.baseline is None else f"{d.baseline:.6g}"
            cand = "-" if d.candidate is None else f"{d.candidate:.6g}"
            rel = d.rel_change
            pct = (
                "-" if rel is None
                else "inf" if math.isinf(rel)
                else f"{100 * rel:+.1f}%"
            )
            lines.append(
                f"  {d.status:<10s} {d.key:<44s} {base:>14s} "
                f"{cand:>14s} {pct:>8s}"
            )
        if not interesting:
            lines.append("  (all keys within tolerance)")
        counts = self.counts
        summary = ", ".join(
            f"{counts.get(k, 0)} {k}"
            for k in ("ok", "improved", "regressed", "changed", "added",
                      "removed")
            if counts.get(k, 0) or k in ("ok", "regressed")
        )
        lines += ["", f"summary: {summary}",
                  f"verdict: {self.verdict.upper()}"]
        return "\n".join(lines)


def _status(
    base: float, cand: float, direction: str, tol: float, abs_tol: float
) -> str:
    delta = cand - base
    if abs(delta) <= abs_tol:
        return "ok"
    rel = abs(delta) / abs(base) if base != 0 else math.inf
    if rel <= tol:
        return "ok"
    if direction == "neutral":
        return "changed"
    better = cand > base if direction == "higher" else cand < base
    return "improved" if better else "regressed"


def compare_runs(
    baseline: RunRecord,
    candidate: RunRecord,
    *,
    tolerance: float = 0.05,
    abs_tolerance: float = 1e-9,
    ignore: Iterable[str] = (),
    only: Iterable[str] = (),
    allow_missing: bool = False,
) -> RunComparison:
    """Diff ``candidate`` against ``baseline`` under a noise tolerance.

    Parameters
    ----------
    tolerance:
        Relative change treated as noise (0.05 = ±5%).
    abs_tolerance:
        Absolute change treated as noise (guards zero baselines).
    ignore / only:
        Glob patterns selecting the keys to skip / to keep.
    allow_missing:
        Downgrade keys missing from the candidate from ``removed``
        (a gate failure) to ``ok``.
    """
    ignore = tuple(ignore)
    only = tuple(only)

    def selected(key: str) -> bool:
        if only and not any(fnmatch(key, pat) for pat in only):
            return False
        return not any(fnmatch(key, pat) for pat in ignore)

    ignored = sorted(
        k
        for k in set(baseline.values) | set(candidate.values)
        if not selected(k)
    )
    deltas: list[KeyDelta] = []
    for key in sorted(set(baseline.values) | set(candidate.values)):
        if not selected(key):
            continue
        base = baseline.values.get(key)
        cand = candidate.values.get(key)
        direction = key_direction(key)
        if base is None:
            status = "added"
        elif cand is None:
            status = "ok" if allow_missing else "removed"
        else:
            status = _status(base, cand, direction, tolerance, abs_tolerance)
        deltas.append(
            KeyDelta(
                key=key, baseline=base, candidate=cand,
                direction=direction, status=status,
            )
        )
    return RunComparison(
        baseline_label=baseline.label,
        candidate_label=candidate.label,
        deltas=deltas,
        tolerance=tolerance,
        abs_tolerance=abs_tolerance,
        ignored=ignored,
    )
