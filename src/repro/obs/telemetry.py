"""Live telemetry bus: push-based streaming records for running SCFs.

Everything else in :mod:`repro.obs` is *post-hoc* — spans, events, and
metric snapshots are exported after the run finishes.  The telemetry
channel is the *streaming* counterpart: instrumented code publishes
small sampled records (worker heartbeats, SCF cycle summaries, periodic
:class:`~repro.obs.metrics.MetricsRegistry` snapshots) while the run is
in flight, and consumers — the ``repro monitor`` dashboard, the run
registry's NDJSON sink, an external scraper — subscribe to the stream:

* **in-process** via :meth:`TelemetryChannel.subscribe` (a callable per
  record, used by the NDJSON sink and the tests);
* **out-of-process** via a local unix-domain socket
  (:meth:`TelemetryChannel.serve`): any process may connect *mid-run*,
  receives the channel's buffered backlog first, then the live stream,
  one JSON object per line.

Like the tracer / metrics registry / event log, the channel is
installed globally (:func:`use_telemetry`) and defaults to *off*:
publishers pay one :func:`get_telemetry` call and an ``is None`` test
per sample.  Timestamps come from ``time.perf_counter`` — the same
clock the tracer and the event log use, and the clock the process
backend shares across workers — so telemetry records line up with
spans and events on one time base.

Records transported over the worker pipe (heartbeats) are re-published
by the driver-side monitor onto this channel; workers never talk to
the socket directly.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

logger = logging.getLogger("repro.obs.telemetry")

#: Default in-memory backlog (records) replayed to late subscribers.
DEFAULT_BUFFER = 4096

#: Per-socket-client pending-bytes cap before a slow subscriber is
#: dropped.  Sends are non-blocking (the publisher must never stall on
#: a reader); bytes the kernel buffer will not take queue here first.
CLIENT_BUFFER_CAP = 1 << 20


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class TelemetryRecord:
    """One published telemetry sample.

    Attributes
    ----------
    kind:
        Dotted record name (``"worker.heartbeat"``, ``"scf.cycle"``,
        ``"metrics.snapshot"``, ``"worker.hung"``, ...).
    t:
        Clock reading at publication (``perf_counter`` seconds).
    source:
        Who produced it: ``"driver"`` or ``"rank<N>"``.
    payload:
        Arbitrary JSON-able fields.
    """

    kind: str
    t: float
    source: str = "driver"
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        rec = {"kind": self.kind, "t_s": self.t, "source": self.source}
        rec.update({k: _json_safe(v) for k, v in self.payload.items()})
        return json.dumps(rec)


def record_from_json(line: str) -> TelemetryRecord:
    """Parse one :meth:`TelemetryRecord.to_json` line back."""
    rec = json.loads(line)
    return TelemetryRecord(
        kind=rec.pop("kind"),
        t=float(rec.pop("t_s", 0.0)),
        source=rec.pop("source", "driver"),
        payload=rec,
    )


def records_from_ndjson(text: str) -> list[TelemetryRecord]:
    """Parse a telemetry NDJSON dump (e.g. the registry's sink file)."""
    return [
        record_from_json(line)
        for line in filter(None, (ln.strip() for ln in text.splitlines()))
    ]


class TelemetryChannel:
    """Publish/subscribe fan-out for live run telemetry.

    Thread-safe: the process backend's collector publishes from the
    driver thread while the socket server broadcasts from its accept
    thread; all shared state sits behind one lock.  Slow or dead socket
    subscribers are dropped, never waited on — telemetry must not be
    able to stall the SCF.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        buffer: int = DEFAULT_BUFFER,
    ) -> None:
        self.clock = clock
        self.records: deque[TelemetryRecord] = deque(maxlen=buffer)
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[TelemetryRecord], None]] = []
        self._clients: dict[socket.socket, bytearray] = {}
        self._server: socket.socket | None = None
        self._server_thread: threading.Thread | None = None
        self._flush_thread: threading.Thread | None = None
        self._socket_path: Path | None = None
        self._closed = False
        self.published = 0

    # -- publishing ----------------------------------------------------------

    def publish(
        self,
        kind: str,
        *,
        source: str = "driver",
        t: float | None = None,
        **payload: Any,
    ) -> TelemetryRecord:
        """Publish one record to every subscriber; returns the record."""
        rec = TelemetryRecord(
            kind=kind,
            t=self.clock() if t is None else t,
            source=source,
            payload=payload,
        )
        self.publish_record(rec)
        return rec

    def publish_record(self, rec: TelemetryRecord) -> None:
        """Publish an already-built record (heartbeat re-publication)."""
        line = (rec.to_json() + "\n").encode()
        with self._lock:
            if self._closed:
                return
            self.records.append(rec)
            self.published += 1
            subscribers = list(self._subscribers)
            for client in list(self._clients):
                self._send(client, line)
        for fn in subscribers:
            try:
                fn(rec)
            except Exception:  # pragma: no cover - subscriber bug guard
                logger.exception("telemetry subscriber failed; detaching")
                self.unsubscribe(fn)

    # -- in-process subscription ---------------------------------------------

    def subscribe(self, fn: Callable[[TelemetryRecord], None]) -> None:
        """Register ``fn`` to be called once per published record."""
        with self._lock:
            self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TelemetryRecord], None]) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

    # -- unix-socket subscription --------------------------------------------

    @property
    def socket_path(self) -> Path | None:
        """Where :meth:`serve` is listening, or ``None``."""
        return self._socket_path

    def server_fileno(self) -> int | None:
        """The listening socket's fd, or ``None`` when not serving.

        Exposed so daemons that fork worker processes can close the
        inherited listen fd in the child — a child holding it would
        keep the socket accepting connections after the parent dies,
        defeating stale-socket liveness probes.
        """
        with self._lock:
            return None if self._server is None else self._server.fileno()

    def serve(self, path: str | Path) -> Path | None:
        """Listen on a unix socket; subscribers may connect mid-run.

        Each accepted client first receives the buffered backlog, then
        every subsequent record as it is published.  Returns the socket
        path, or ``None`` when the socket could not be created (too-long
        path, unsupported platform) — telemetry degrades, never raises.
        """
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            server.bind(str(path))
            server.listen(8)
        except OSError as exc:
            logger.warning("telemetry socket %s unavailable: %s", path, exc)
            return None
        self._server = server
        self._socket_path = path
        self._server_thread = threading.Thread(
            target=self._accept_loop, name="telemetry-accept", daemon=True
        )
        self._server_thread.start()
        self._flush_thread = threading.Thread(
            target=self._flush_loop, name="telemetry-flush", daemon=True
        )
        self._flush_thread.start()
        logger.info("telemetry socket listening at %s", path)
        return path

    def _accept_loop(self) -> None:
        assert self._server is not None
        while True:
            try:
                client, _ = self._server.accept()
            except OSError:
                return  # server closed
            client.setblocking(False)
            with self._lock:
                if self._closed:
                    client.close()
                    return
                self._clients[client] = bytearray()
                backlog = b"".join(
                    (r.to_json() + "\n").encode() for r in self.records
                )
                if backlog:
                    self._send(client, backlog)

    def _flush_loop(self) -> None:
        # Retry clients' queued bytes even when nothing new is being
        # published, so a reader that drains the kernel buffer between
        # publishes still receives the rest of the stream.
        while True:
            with self._lock:
                if self._closed:
                    return
                for client in list(self._clients):
                    if self._clients.get(client):
                        self._send(client, b"")
            time.sleep(0.05)

    def _send(self, client: socket.socket, data: bytes) -> None:
        # caller holds the lock.  Non-blocking: whatever the kernel
        # buffer refuses queues per-client and is retried on the next
        # publish; a subscriber more than CLIENT_BUFFER_CAP behind is
        # dropped rather than allowed to stall or bloat the run.
        pending = self._clients.get(client)
        if pending is None:
            return
        pending += data
        if not pending:
            return
        try:
            sent = client.send(pending)
            del pending[:sent]
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._drop_client(client)
            return
        if len(pending) > CLIENT_BUFFER_CAP:
            logger.warning("dropping telemetry subscriber %d bytes behind",
                           len(pending))
            self._drop_client(client)

    def _drop_client(self, client: socket.socket) -> None:
        # caller holds the lock
        try:
            client.close()
        finally:
            self._clients.pop(client, None)

    # -- teardown ------------------------------------------------------------

    @property
    def nclients(self) -> int:
        with self._lock:
            return len(self._clients)

    def close(self) -> None:
        """Stop serving, drop clients, refuse further publishes."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            clients = dict(self._clients)
            self._clients.clear()
            server, self._server = self._server, None
        for client, pending in clients.items():
            try:
                if pending:
                    # Bounded final flush so live monitors see the tail
                    # (run.end, the last heartbeats) before the hangup.
                    client.settimeout(1.0)
                    client.sendall(bytes(pending))
            except OSError:
                pass
            finally:
                try:
                    client.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass
        if server is not None:
            try:
                server.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for attr in ("_server_thread", "_flush_thread"):
            thread = getattr(self, attr)
            if thread is not None:
                thread.join(timeout=2)
                setattr(self, attr, None)
        if self._socket_path is not None:
            try:
                self._socket_path.unlink()
            except OSError:
                pass
            self._socket_path = None

    def __enter__(self) -> "TelemetryChannel":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class TelemetryClient:
    """Line-buffered reader attached to a channel's unix socket.

    Used by ``repro monitor`` to follow a live run: :meth:`poll`
    returns whatever complete records arrived within ``max_wait``
    seconds (possibly none), so the dashboard can redraw on its own
    cadence.  ``eof`` turns true once the server hangs up.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.connect(str(self.path))
        self._buf = b""
        self.eof = False

    def poll(self, max_wait: float = 0.5) -> list[TelemetryRecord]:
        """Drain records available within ``max_wait`` seconds."""
        if self.eof:
            return []
        self._sock.settimeout(max_wait)
        try:
            chunk = self._sock.recv(65536)
            if not chunk:
                self.eof = True
            self._buf += chunk
        except socket.timeout:
            pass
        except OSError:
            self.eof = True
        out: list[TelemetryRecord] = []
        while b"\n" in self._buf:
            line, self._buf = self._buf.split(b"\n", 1)
            if line.strip():
                try:
                    out.append(record_from_json(line.decode()))
                except (json.JSONDecodeError, KeyError):
                    logger.debug("skipping malformed telemetry line")
        return out

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    def __enter__(self) -> "TelemetryClient":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


def follow_telemetry(
    path: str | Path, *, poll_s: float = 0.5
) -> Iterator[TelemetryRecord]:
    """Generator over a live socket's records until the server closes."""
    with TelemetryClient(path) as client:
        while not client.eof:
            yield from client.poll(poll_s)


class NDJSONTelemetrySink:
    """Channel subscriber that appends every record to an NDJSON file.

    Line-buffered append: each record is durable as soon as it is
    published, so the file survives a crashed driver and can be
    replayed through ``repro monitor --replay`` or the run registry.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", buffering=1)
        self.written = 0

    def __call__(self, rec: TelemetryRecord) -> None:
        try:
            self._fh.write(rec.to_json() + "\n")
            self.written += 1
        except ValueError:  # pragma: no cover - closed-file race
            pass

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass


#: Worker-count guard for unix socket paths (sun_path is ~107 bytes).
_MAX_SOCKET_PATH = 100


def default_socket_path(run_dir: str | Path) -> Path:
    """A socket path for a run directory, short enough to bind.

    ``sun_path`` is limited to ~107 bytes; when the run directory is
    too deep the socket falls back to an abstract-ish short name under
    the default temp directory, keyed by pid so concurrent runs do not
    collide.
    """
    candidate = Path(run_dir) / "telemetry.sock"
    if len(str(candidate)) <= _MAX_SOCKET_PATH:
        return candidate
    import tempfile

    return Path(tempfile.gettempdir()) / f"repro-telemetry-{os.getpid()}.sock"


_current_channel: TelemetryChannel | None = None


def get_telemetry() -> TelemetryChannel | None:
    """The globally installed channel, or ``None`` (telemetry off)."""
    return _current_channel


def set_telemetry(channel: TelemetryChannel | None) -> None:
    """Install a global channel; ``None`` disables telemetry."""
    global _current_channel
    _current_channel = channel


@contextmanager
def use_telemetry(channel: TelemetryChannel) -> Iterator[TelemetryChannel]:
    """Install ``channel`` for the duration of a ``with`` block."""
    previous = _current_channel
    set_telemetry(channel)
    try:
        yield channel
    finally:
        set_telemetry(previous)
