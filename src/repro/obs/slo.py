"""SLO engine: latency quantile digests, targets, and error-budget burn.

The service-level layer on top of the distributed trace: every job the
daemon completes contributes one observation of its **queue-wait**,
**run**, and **total** latency (seconds, on the shared ``perf_counter``
time base) to a streaming quantile digest per *job class* (algorithm ×
backend — the axes the paper's benchmarks vary).  Against those digests
the engine evaluates declarative :class:`SLOTarget` rules::

    total:p95<30        # 95% of jobs finish within 30 s
    queue_wait:p99<5    # 99% wait under 5 s before a worker picks them up
    error_rate<0.1      # at most 10% of jobs may fail

Each rule carries an implicit *error budget* — the fraction of jobs
allowed to violate it (``1 - q`` for a latency rule, the threshold for
an error-rate rule).  The **burn rate** is the observed violating
fraction divided by that budget: 1.0 means the budget is being consumed
exactly as fast as it accrues; above 1.0 the SLO is being breached.
The engine publishes ``slo.burn_rate`` telemetry on every evaluation
and an edge-triggered ``slo.breach`` when a (class, target) pair first
crosses 1.0 — the signals ``repro monitor`` surfaces live and the
ROADMAP-1 autoscaler will act on.

Everything is streaming and O(buckets): the digests are the
fixed-boundary :class:`~repro.obs.metrics.Histogram` quantile
estimators, so a month of traffic costs the same memory as a minute.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetryChannel

#: Latency metrics every job observation carries.
LATENCY_METRICS = ("queue_wait", "run", "total")

#: Quantiles the reports table (the paper-style p50/p95/p99 columns).
REPORT_QUANTILES = (0.5, 0.95, 0.99)

#: Bucket ladder for service latencies (10 ms … 10 min).
SERVICE_LATENCY_BUCKETS: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    20.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)

#: Default SLO targets a daemon enforces when the CLI passes none.
DEFAULT_SLO_TARGETS = (
    "total:p95<60",
    "queue_wait:p95<30",
    "error_rate<0.25",
)

_LATENCY_RE = re.compile(
    r"^(?P<metric>queue_wait|run|total)\s*:\s*p(?P<q>\d{1,2}(?:\.\d+)?)\s*"
    r"<\s*(?P<threshold>\d+(?:\.\d+)?)$"
)
_ERROR_RE = re.compile(
    r"^error_rate\s*<\s*(?P<threshold>0?\.\d+|0|1(?:\.0*)?)$"
)


class SLOTargetError(ValueError):
    """A malformed SLO target spec string."""


class SLOTarget:
    """One declarative SLO rule, parsed from its spec string."""

    __slots__ = ("spec", "metric", "quantile", "threshold")

    def __init__(self, spec: str, metric: str,
                 quantile: float | None, threshold: float) -> None:
        self.spec = spec
        self.metric = metric  # a latency metric, or "error_rate"
        self.quantile = quantile  # None for error-rate rules
        self.threshold = threshold

    @classmethod
    def parse(cls, spec: str) -> "SLOTarget":
        text = spec.strip()
        m = _LATENCY_RE.match(text)
        if m:
            q = float(m.group("q")) / 100.0
            if not 0.0 < q < 1.0:
                raise SLOTargetError(
                    f"quantile p{m.group('q')} out of range in {spec!r}")
            return cls(text, m.group("metric"), q,
                       float(m.group("threshold")))
        m = _ERROR_RE.match(text)
        if m:
            threshold = float(m.group("threshold"))
            if not 0.0 < threshold <= 1.0:
                raise SLOTargetError(
                    f"error-rate threshold must be in (0, 1] in {spec!r}")
            return cls(text, "error_rate", None, threshold)
        raise SLOTargetError(
            f"cannot parse SLO target {spec!r}; expected forms like "
            "'total:p95<30', 'queue_wait:p99<5', or 'error_rate<0.1'")

    @property
    def budget(self) -> float:
        """Allowed violating fraction (the error budget per observation)."""
        if self.quantile is not None:
            return 1.0 - self.quantile
        return self.threshold

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SLOTarget({self.spec!r})"


def job_class(spec: Any) -> str:
    """The SLO aggregation class of a job spec (dict or JobSpec-like)."""
    if isinstance(spec, dict):
        algorithm = spec.get("algorithm", "?")
        backend = spec.get("backend", "?")
    else:
        algorithm = getattr(spec, "algorithm", "?")
        backend = getattr(spec, "backend", "?")
    return f"{algorithm}/{backend}"


class ClassStats:
    """Streaming latency + outcome digests for one job class."""

    __slots__ = ("job_class", "hists", "done", "failed", "violations")

    def __init__(self, name: str) -> None:
        self.job_class = name
        self.hists = {
            metric: Histogram(f"slo.{metric}", (("job_class", name),),
                              buckets=SERVICE_LATENCY_BUCKETS)
            for metric in LATENCY_METRICS
        }
        self.done = 0
        self.failed = 0
        self.violations: dict[str, int] = {}

    @property
    def total(self) -> int:
        return self.done + self.failed

    def observe(self, latencies: dict[str, float], *, failed: bool,
                targets: Iterable[SLOTarget]) -> None:
        if failed:
            self.failed += 1
        else:
            self.done += 1
        for metric, hist in self.hists.items():
            value = latencies.get(metric)
            if value is not None:
                hist.observe(max(float(value), 0.0))
        for target in targets:
            if target.metric == "error_rate":
                continue
            value = latencies.get(target.metric)
            if value is not None and float(value) > target.threshold:
                self.violations[target.spec] = (
                    self.violations.get(target.spec, 0) + 1)

    def burn_rate(self, target: SLOTarget) -> float | None:
        """Observed violating fraction over the allowed fraction."""
        if not self.total:
            return None
        if target.metric == "error_rate":
            observed = self.failed / self.total
        else:
            observed = self.violations.get(target.spec, 0) / self.total
        return observed / target.budget

    def quantiles(self) -> dict[str, dict[str, float | None]]:
        return {
            metric: {
                f"p{round(q * 100):d}": hist.quantile(q)
                for q in REPORT_QUANTILES
            }
            for metric, hist in self.hists.items()
        }


class SLOEngine:
    """Evaluate SLO targets over a stream of terminal job observations."""

    def __init__(
        self,
        targets: Iterable[str | SLOTarget] | None = None,
        *,
        channel: "TelemetryChannel | None" = None,
    ) -> None:
        specs = DEFAULT_SLO_TARGETS if targets is None else targets
        self.targets = [
            t if isinstance(t, SLOTarget) else SLOTarget.parse(t)
            for t in specs
        ]
        self.channel = channel
        self.classes: dict[str, ClassStats] = {}
        self.breaches = 0
        self._breached: set[tuple[str, str]] = set()

    def observe_job(
        self,
        cls: str,
        *,
        queue_wait_s: float | None,
        run_s: float | None,
        total_s: float | None,
        failed: bool = False,
        job_id: str | None = None,
    ) -> list[dict[str, Any]]:
        """Fold one terminal job in; returns the per-target evaluations.

        Publishes one ``slo.burn_rate`` telemetry record per evaluated
        target and an ``slo.breach`` the first time a (class, target)
        pair's burn rate crosses 1.0 (re-armed when it recovers).
        """
        stats = self.classes.get(cls)
        if stats is None:
            stats = self.classes[cls] = ClassStats(cls)
        stats.observe(
            {"queue_wait": queue_wait_s, "run": run_s, "total": total_s},
            failed=failed, targets=self.targets,
        )
        evaluations: list[dict[str, Any]] = []
        for target in self.targets:
            burn = stats.burn_rate(target)
            if burn is None:
                continue
            evaluations.append({
                "job_class": cls,
                "target": target.spec,
                "burn_rate": burn,
                "budget": target.budget,
                "observations": stats.total,
            })
            key = (cls, target.spec)
            breached = burn >= 1.0
            if self.channel is not None:
                self.channel.publish(
                    "slo.burn_rate",
                    job_class=cls, target=target.spec,
                    burn_rate=round(burn, 4), breached=breached,
                    observations=stats.total,
                )
            if breached and key not in self._breached:
                self._breached.add(key)
                self.breaches += 1
                if self.channel is not None:
                    self.channel.publish(
                        "slo.breach",
                        job_class=cls, target=target.spec,
                        burn_rate=round(burn, 4),
                        observations=stats.total,
                        job=job_id,
                    )
            elif not breached:
                self._breached.discard(key)
        return evaluations

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """JSON-ready report: per-class quantiles + per-target burn."""
        classes: dict[str, Any] = {}
        for name in sorted(self.classes):
            stats = self.classes[name]
            classes[name] = {
                "done": stats.done,
                "failed": stats.failed,
                "error_rate": (stats.failed / stats.total
                               if stats.total else None),
                "latency": stats.quantiles(),
                "targets": [
                    {
                        "target": t.spec,
                        "burn_rate": stats.burn_rate(t),
                        "breached": (stats.burn_rate(t) or 0.0) >= 1.0,
                    }
                    for t in self.targets
                ],
            }
        return {
            "targets": [t.spec for t in self.targets],
            "classes": classes,
            "breaches": self.breaches,
        }

    def report_text(self) -> str:
        """Human-readable SLO report table."""
        return render_slo_report(self.report())


def render_slo_report(rep: dict[str, Any]) -> str:
    """Render a :meth:`SLOEngine.report` dict (local or from a live
    daemon's status response) as the ``repro slo`` text table."""
    lines = [f"SLO targets: {', '.join(rep['targets']) or '(none)'}"]
    if not rep["classes"]:
        lines.append("(no terminal jobs observed)")
        return "\n".join(lines)
    header = (f"{'class':<24s} {'jobs':>5s} {'fail':>5s} "
              f"{'metric':<10s} {'p50':>9s} {'p95':>9s} {'p99':>9s}")
    lines.append(header)
    for name, cls in rep["classes"].items():
        first = True
        for metric in LATENCY_METRICS:
            qs = cls["latency"][metric]
            cells = [
                f"{qs[f'p{round(q * 100):d}']:>9.3f}"
                if qs[f"p{round(q * 100):d}"] is not None else f"{'-':>9s}"
                for q in REPORT_QUANTILES
            ]
            prefix = (f"{name:<24s} {cls['done'] + cls['failed']:>5d} "
                      f"{cls['failed']:>5d}" if first
                      else f"{'':<24s} {'':>5s} {'':>5s}")
            lines.append(f"{prefix} {metric:<10s} {' '.join(cells)}")
            first = False
        for target in cls["targets"]:
            burn = target["burn_rate"]
            if burn is None:
                continue
            flag = "  << BREACH" if target["breached"] else ""
            lines.append(
                f"{'':<24s} {'':>5s} {'':>5s} "
                f"{target['target']:<28s} burn={burn:.2f}{flag}")
    lines.append(f"breaches fired: {rep['breaches']}")
    return "\n".join(lines)


def engine_from_telemetry(
    records: Iterable[Any],
    targets: Iterable[str | SLOTarget] | None = None,
) -> SLOEngine:
    """Replay ``job.done`` / ``job.failed`` telemetry into a fresh engine.

    The offline half of ``repro slo``: the daemon publishes terminal
    job records with ``queue_wait_s`` / ``run_s`` / ``total_s`` /
    ``job_class`` fields, and this folds a recorded stream (a run's
    ``telemetry.ndjson``) back through the same evaluation logic.
    """
    engine = SLOEngine(targets)
    for rec in records:
        kind = getattr(rec, "kind", None) or rec.get("kind")
        if kind not in ("job.done", "job.failed"):
            continue
        payload = getattr(rec, "payload", None)
        if payload is None and isinstance(rec, dict):
            payload = rec.get("payload")
        if payload is None:
            payload = rec
        cls = payload.get("job_class")
        if cls is None:
            continue
        engine.observe_job(
            cls,
            queue_wait_s=payload.get("queue_wait_s"),
            run_s=payload.get("run_s"),
            total_s=payload.get("total_s"),
            failed=kind == "job.failed",
            job_id=payload.get("job"),
        )
    return engine
