"""Live run dashboard: render telemetry streams as a terminal view.

``repro monitor`` attaches to a running SCF through the telemetry
channel's unix socket (or replays a recorded ``telemetry.ndjson``) and
redraws a compact dashboard:

* **per-rank activity lanes** — each worker's heartbeat trail drawn as
  a busy/quiet strip, computed with the same interval-union arithmetic
  (:func:`repro.obs.analysis.timeline.merge_intervals`) the post-hoc
  timeline breakdowns use, so the live picture and the ``--timeline``
  report agree about where the time went;
* an **energy-convergence sparkline** — ``log10 |dE|`` per SCF cycle,
  the convergence trajectory at a glance;
* the **DLB counter rate** — aggregate and per-rank claims/s from the
  heartbeat stream, the live analogue of the paper's dynamic
  load-balance discussion (Fig. 4);
* a **worker health column** — ``ok`` / ``suspect`` / ``lost`` /
  ``recovered`` per rank from the heartbeat monitor's state machine,
  plus a tail of notable events (``worker.hung``, ``process.replay``,
  checkpoints).

The module is pure state + rendering: :class:`MonitorState` folds
records, :meth:`MonitorState.render` returns text.  The CLI layer owns
the refresh loop and the screen clearing, which keeps everything here
unit-testable without a terminal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.analysis.timeline import merge_intervals, overlap_seconds
from repro.obs.metrics import Histogram
from repro.obs.slo import LATENCY_METRICS, SERVICE_LATENCY_BUCKETS
from repro.obs.telemetry import TelemetryRecord, records_from_ndjson

#: Unicode sparkline ramp, quietest to loudest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: How long (s) one heartbeat keeps a rank's lane lit when the next
#: beat has not arrived yet; matches the default beat rate-limit.
LANE_GLOW_S = 0.3

#: Record kinds surfaced in the event tail.
NOTABLE_KINDS = frozenset(
    {
        "worker.hung",
        "worker.lost",
        "worker.recovered",
        "process.replay",
        "scf.converged",
        "scf.checkpoint",
        "scf.restart",
        "run.start",
        "run.end",
        # SCF-as-a-service job lifecycle (repro serve).
        "job.submitted",
        "job.dispatched",
        "job.done",
        "job.failed",
        "job.retrying",
        "job.cancelled",
        "service.start",
        "service.stop",
        "service.overloaded",
        "service.degraded",
        "service.recovered",
        # SLO engine signals.
        "slo.breach",
    }
)


def sparkline(values: Iterable[float], *, width: int = 32) -> str:
    """Map a numeric series onto :data:`SPARK_CHARS` (last ``width``)."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return SPARK_CHARS[0] * len(vals)
    span = hi - lo
    return "".join(
        SPARK_CHARS[
            min(int((v - lo) / span * len(SPARK_CHARS)), len(SPARK_CHARS) - 1)
        ]
        for v in vals
    )


@dataclass
class RankView:
    """Everything the dashboard knows about one worker rank."""

    rank: int
    pid: int | None = None
    state: str = "idle"
    phase: str | None = None
    span: str | None = None
    cycle: int | None = None
    beats: int = 0
    claimed: int = 0
    claim_rate: float = 0.0
    suspect_count: int = 0
    last_t: float | None = None
    #: Raw (start, end) activity windows; merged lazily at render time.
    intervals: list[tuple[float, float]] = field(default_factory=list)
    _open: float | None = None

    def observe_beat(self, t: float, phase: str | None) -> None:
        if (
            self._open is not None
            and self.last_t is not None
            and t - self.last_t > LANE_GLOW_S
        ):
            # Silence longer than the glow window: the trail went dark;
            # do NOT bridge the gap — a hang must show as a dark lane.
            self._open = None
        if phase == "start" or (phase != "done" and self._open is None):
            self._open = t
        if self._open is not None:
            self.intervals.append((self._open, max(t, self._open)))
        if phase == "done":
            self._open = None
        else:
            # Between beats the lane stays lit for one beat interval;
            # a hung worker's trail visibly goes dark.
            self.intervals.append((t, t + LANE_GLOW_S))
            self._open = t
        self.last_t = t

    def lane(self, t0: float, t1: float, *, width: int) -> str:
        """Activity strip over ``[t0, t1]``: ``█`` beating, ``·`` quiet."""
        if t1 <= t0 or not self.intervals:
            return "·" * width
        merged = merge_intervals(self.intervals)
        cells = []
        for c in range(width):
            lo = t0 + c * (t1 - t0) / width
            hi = t0 + (c + 1) * (t1 - t0) / width
            frac = overlap_seconds(merged, lo, hi) / max(hi - lo, 1e-12)
            cells.append("█" if frac > 0.5 else "▌" if frac > 0.0 else "·")
        return "".join(cells)


@dataclass
class CycleView:
    """One SCF cycle's convergence sample."""

    cycle: int
    energy: float | None
    delta_e: float | None
    t: float


class MonitorState:
    """Fold telemetry records into a renderable dashboard state."""

    def __init__(self) -> None:
        self.ranks: dict[int, RankView] = {}
        self.cycles: list[CycleView] = []
        self.events: list[TelemetryRecord] = []
        self.counters: dict[str, float] = {}
        self.run_info: dict[str, Any] = {}
        self.nrecords = 0
        self.t_first: float | None = None
        self.t_last: float | None = None
        self.converged: bool | None = None
        self._dlb_samples: list[tuple[float, float]] = []  # (t, total claims)
        # Service latency digests per job class (fed by job.done/failed).
        self.latency: dict[str, dict[str, Histogram]] = {}
        self.slo_burn: dict[tuple[str, str], float] = {}
        self.slo_breaches = 0

    # -- folding -------------------------------------------------------------

    def apply(self, rec: TelemetryRecord) -> None:
        self.nrecords += 1
        self.t_first = rec.t if self.t_first is None else min(self.t_first, rec.t)
        self.t_last = rec.t if self.t_last is None else max(self.t_last, rec.t)
        kind, p = rec.kind, rec.payload
        if kind == "worker.heartbeat":
            self._rank(p).observe_beat(rec.t, p.get("phase"))
            self._fold_health(p)
            self._sample_dlb(rec.t)
        elif kind in ("worker.hung", "worker.lost", "worker.recovered"):
            self._fold_health(p)
            self.events.append(rec)
        elif kind == "scf.cycle":
            self.cycles.append(
                CycleView(
                    cycle=int(p.get("cycle", len(self.cycles))),
                    energy=_maybe_float(p.get("energy")),
                    delta_e=_maybe_float(p.get("delta_e")),
                    t=rec.t,
                )
            )
            if p.get("converged"):
                self.converged = True
        elif kind == "metrics.snapshot":
            counters = p.get("counters")
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, (int, float)):
                        self.counters[name] = float(value)
        elif kind in ("run.start", "run.end"):
            self.run_info.update(
                {k: v for k, v in p.items() if not isinstance(v, dict)}
            )
            if kind == "run.end" and "converged" in p:
                self.converged = bool(p["converged"])
            self.events.append(rec)
        elif kind == "slo.burn_rate":
            cls, target = p.get("job_class"), p.get("target")
            burn = p.get("burn_rate")
            if cls and target and isinstance(burn, (int, float)):
                self.slo_burn[(cls, target)] = float(burn)
        elif kind in NOTABLE_KINDS:
            if kind == "slo.breach":
                self.slo_breaches += 1
            self.events.append(rec)
        if kind in ("job.done", "job.failed"):
            self._fold_latency(p)

    def _fold_latency(self, payload: dict[str, Any]) -> None:
        cls = payload.get("job_class")
        if not cls:
            return
        hists = self.latency.get(cls)
        if hists is None:
            hists = self.latency[cls] = {
                metric: Histogram(f"latency.{metric}",
                                  (("job_class", cls),),
                                  buckets=SERVICE_LATENCY_BUCKETS)
                for metric in LATENCY_METRICS
            }
        for metric in LATENCY_METRICS:
            value = payload.get(f"{metric}_s")
            if isinstance(value, (int, float)):
                hists[metric].observe(max(float(value), 0.0))

    def apply_all(self, records: Iterable[TelemetryRecord]) -> None:
        for rec in records:
            self.apply(rec)

    def _rank(self, payload: dict[str, Any]) -> RankView:
        rank = int(payload.get("rank", -1))
        view = self.ranks.get(rank)
        if view is None:
            view = self.ranks[rank] = RankView(rank=rank)
        return view

    def _fold_health(self, payload: dict[str, Any]) -> None:
        if "rank" not in payload:
            return
        view = self._rank(payload)
        for attr in ("pid", "state", "phase", "span", "cycle",
                     "beats", "claimed", "suspect_count"):
            if payload.get(attr) is not None:
                setattr(view, attr, payload[attr])
        if isinstance(payload.get("claim_rate"), (int, float)):
            view.claim_rate = float(payload["claim_rate"])

    def _sample_dlb(self, t: float) -> None:
        total = float(sum(v.claimed for v in self.ranks.values()))
        if not self._dlb_samples or total != self._dlb_samples[-1][1]:
            self._dlb_samples.append((t, total))

    # -- derived quantities ---------------------------------------------------

    @property
    def dlb_rate(self) -> float:
        """Aggregate DLB claims/s over the sampled heartbeat window."""
        if len(self._dlb_samples) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self._dlb_samples[0], self._dlb_samples[-1]
        return (c1 - c0) / (t1 - t0) if t1 > t0 else 0.0

    def convergence_series(self) -> list[float]:
        """``log10 |dE|`` per cycle (clamped), the sparkline's series."""
        out = []
        for c in self.cycles:
            if c.delta_e is None:
                continue
            mag = abs(c.delta_e)
            out.append(math.log10(mag) if mag > 0 else -16.0)
        return out

    @property
    def last_energy(self) -> float | None:
        for c in reversed(self.cycles):
            if c.energy is not None:
                return c.energy
        return None

    @property
    def health_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.ranks.values():
            out[v.state] = out.get(v.state, 0) + 1
        return out

    # -- rendering ------------------------------------------------------------

    def render(self, *, width: int = 72, lane_width: int = 28) -> str:
        """The dashboard as plain text (one frame)."""
        lines: list[str] = []
        elapsed = (
            (self.t_last - self.t_first)
            if self.t_first is not None and self.t_last is not None
            else 0.0
        )
        title = (
            self.run_info.get("algorithm")
            or self.run_info.get("run_kind")
            or self.run_info.get("molecule")
        )
        head = f"repro monitor — {self.nrecords} records, {elapsed:.1f} s"
        if title:
            head += f" [{title}]"
        lines.append(head)
        lines.append("=" * min(len(head), width))

        # -- convergence ------------------------------------------------------
        if self.cycles:
            last = self.cycles[-1]
            status = (
                "converged" if self.converged
                else "running" if self.converged is None else "not converged"
            )
            energy = self.last_energy
            lines.append(
                f"cycle {last.cycle:>3d}  "
                + (f"E = {energy:+.10f} Eh  " if energy is not None else "")
                + f"({status})"
            )
            series = self.convergence_series()
            if series:
                lines.append(
                    f"log10|dE|  {sparkline(series)}  "
                    f"[{series[0]:+.1f} → {series[-1]:+.1f}]"
                )
        dlb = self.dlb_rate
        claimed = sum(v.claimed for v in self.ranks.values())
        if self.ranks:
            lines.append(
                f"DLB: {claimed} claims, {dlb:.1f} claims/s aggregate"
            )

        # -- per-rank lanes ---------------------------------------------------
        if self.ranks:
            lines.append("")
            lines.append(
                f"{'rank':>4s} {'pid':>7s} {'state':<9s} {'phase':<6s} "
                f"{'claims':>6s} {'rate/s':>7s}  activity"
            )
            t0 = self.t_first or 0.0
            t1 = max(self.t_last or 0.0, t0 + 1e-6)
            for rank in sorted(self.ranks):
                v = self.ranks[rank]
                mark = {"suspect": "!", "lost": "x"}.get(v.state, " ")
                lines.append(
                    f"{rank:>4d} {v.pid or '-':>7} {v.state:<9s} "
                    f"{(v.phase or '-'):<6s} {v.claimed:>6d} "
                    f"{v.claim_rate:>7.1f} {mark}"
                    f"|{v.lane(t0, t1, width=lane_width)}|"
                )
            health = self.health_counts
            if health.get("suspect") or health.get("lost"):
                lines.append(
                    "health: "
                    + ", ".join(f"{k}={n}" for k, n in sorted(health.items()))
                )

        # -- service latency percentiles + SLO burn ---------------------------
        if self.latency:
            lines.append("")
            lines.append(
                f"{'latency (s)':<22s} {'n':>5s} "
                f"{'qwait p50/p95/p99':>20s} {'total p50/p95/p99':>20s}"
            )
            for cls in sorted(self.latency):
                hists = self.latency[cls]

                def _cell(hist: Histogram) -> str:
                    qs = [hist.quantile(q) for q in (0.5, 0.95, 0.99)]
                    return "/".join(
                        f"{v:.2f}" if v is not None else "-" for v in qs
                    )

                lines.append(
                    f"{cls:<22s} {hists['total'].count:>5d} "
                    f"{_cell(hists['queue_wait']):>20s} "
                    f"{_cell(hists['total']):>20s}"
                )
            burning = {k: v for k, v in self.slo_burn.items() if v >= 1.0}
            if burning or self.slo_breaches:
                worst = sorted(burning.items(), key=lambda kv: -kv[1])[:3]
                detail = ", ".join(
                    f"{cls} {target} burn={burn:.1f}"
                    for (cls, target), burn in worst
                )
                lines.append(
                    f"SLO: {self.slo_breaches} breach(es)"
                    + (f" — {detail}" if detail else "")
                )

        # -- event tail -------------------------------------------------------
        if self.events:
            lines.append("")
            lines.append("events:")
            base = self.t_first or 0.0
            for rec in self.events[-8:]:
                detail = " ".join(
                    f"{k}={v}"
                    for k, v in rec.payload.items()
                    if k in ("rank", "cycle", "silent_s", "was_suspect",
                             "converged", "energy", "status", "job",
                             "job_class", "target", "burn_rate")
                    and v is not None
                )
                lines.append(
                    f"  t={rec.t - base:>9.3f}s {rec.kind:<18s} {detail}"
                )
        return "\n".join(lines)


def _maybe_float(value: Any) -> float | None:
    try:
        return None if value is None else float(value)
    except (TypeError, ValueError):
        return None


def replay_dashboard(text: str, **render_kw: Any) -> str:
    """One final frame from a recorded ``telemetry.ndjson`` dump."""
    state = MonitorState()
    state.apply_all(records_from_ndjson(text))
    return state.render(**render_kw)
