"""Exporters: Chrome trace-event JSON, text profile, NDJSON.

Three machine/human-readable views of one traced run:

* :func:`to_chrome_trace` — the Chrome ``trace_event`` format (open the
  file in ``chrome://tracing`` or https://ui.perfetto.dev).  Every span
  becomes a complete ``"ph": "X"`` event; the simulated MPI rank is the
  ``pid`` track and the simulated OpenMP thread the ``tid`` track, so
  the timeline looks like the per-rank/per-thread Gantt charts of the
  paper's profiling discussion.
* :func:`profile_report` — a GAMESS-style hierarchical percentage
  breakdown of where the wall time went.
* :func:`spans_ndjson` / :func:`metrics_ndjson` — newline-delimited
  JSON for the benchmark trajectory tooling.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from repro.obs.events import Event, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

_MISSING = object()  # "attr not set anywhere" sentinel for span_line

_MICRO = 1e6


def write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path``, creating parent directories first.

    The common exit of every exporter: a trailing newline is ensured so
    NDJSON files concatenate cleanly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text if text.endswith("\n") or not text else text + "\n")
    return path


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """Flatten a tracer's span forest into Chrome trace events.

    Timestamps are microseconds relative to the earliest root span;
    metadata events name each ``pid`` track "rank r" and each ``tid``
    track "thread t".
    """
    spans = [s for s in tracer.walk() if s.end is not None]
    if not spans:
        return []
    t0 = min(s.start for s in spans)
    events: list[dict[str, Any]] = []
    tracks: set[tuple[int, int]] = set()
    for s in spans:
        pid = int(s.effective_attr("rank", 0))
        tid = int(s.effective_attr("thread", 0))
        tracks.add((pid, tid))
        events.append(
            {
                "name": s.name,
                "cat": s.name.split("/", 1)[0],
                "ph": "X",
                "ts": (s.start - t0) * _MICRO,
                "dur": s.duration * _MICRO,
                "pid": pid,
                "tid": tid,
                "args": {k: _json_safe(v) for k, v in s.attrs.items()},
            }
        )
    meta: list[dict[str, Any]] = []
    for pid in sorted({p for p, _ in tracks}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"rank {pid}"},
            }
        )
    for pid, tid in sorted(tracks):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"thread {tid}"},
            }
        )
    return meta + events


def event_instants(
    events: Iterable[Event], t0: float, *, pid_offset: int = 0
) -> list[dict[str, Any]]:
    """Chrome *instant* events (``"ph": "i"``) for an event-log overlay.

    Each event lands on its rank's process track (run-global events on
    pid 0) at its timestamp relative to ``t0`` — which is how a faulted
    run's kill/recovery/checkpoint moments show up inside the span
    Gantt in ``chrome://tracing``.
    """
    out: list[dict[str, Any]] = []
    for ev in events:
        out.append(
            {
                "name": ev.kind,
                "cat": ev.kind.split(".", 1)[0],
                "ph": "i",
                "ts": (ev.t - t0) * _MICRO,
                "pid": pid_offset + int(ev.rank or 0),
                "tid": 0,
                "s": "g" if ev.rank is None else "p",
                "args": {k: _json_safe(v) for k, v in ev.fields.items()},
            }
        )
    return out


def to_chrome_trace(
    tracer: Tracer, *, events: EventLog | Iterable[Event] | None = None
) -> dict[str, Any]:
    """The complete Chrome trace document for a traced run.

    With ``events``, the event log is overlaid as instant events on the
    same time base (the earliest span start; with no spans, the first
    event's timestamp).
    """
    trace_events = chrome_trace_events(tracer)
    event_list = list(events) if events is not None else []
    if event_list:
        starts = [s.start for s in tracer.walk() if s.end is not None]
        t0 = min(starts) if starts else min(ev.t for ev in event_list)
        trace_events += event_instants(event_list, t0)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(
    tracer: Tracer,
    path: str | Path,
    *,
    events: EventLog | Iterable[Event] | None = None,
) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path.

    Parent directories are created as needed.
    """
    return write_text(path, json.dumps(to_chrome_trace(tracer, events=events)))


# -- text profile ------------------------------------------------------------


class _ProfileNode:
    __slots__ = ("name", "calls", "total", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total = 0.0
        self.children: dict[str, _ProfileNode] = {}

    def child(self, name: str) -> "_ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _ProfileNode(name)
        return node

    @property
    def self_seconds(self) -> float:
        return self.total - sum(c.total for c in self.children.values())


def _aggregate(spans: list[Span], node: _ProfileNode) -> None:
    for s in spans:
        if s.end is None:
            continue
        child = node.child(s.name)
        child.calls += 1
        child.total += s.duration
        _aggregate(s.children, child)


def profile_report(tracer: Tracer, *, title: str = "profile") -> str:
    """Hierarchical percentage breakdown of the traced wall time.

    Spans are aggregated by their position in the call tree (same name
    under the same parent chain = one row); percentages are of the
    total traced time, GAMESS timing-summary style.
    """
    root = _ProfileNode("")
    _aggregate(tracer.roots, root)
    total = tracer.total_seconds()
    lines = [
        f"{title} — traced total {total:.6f} s",
        f"{'span':<44s} {'calls':>7s} {'total(s)':>10s} "
        f"{'self(s)':>10s} {'%total':>7s}",
    ]
    if not root.children:
        lines.append("(no completed spans)")
        return "\n".join(lines)

    def emit(node: _ProfileNode, depth: int) -> None:
        pct = 100.0 * node.total / total if total > 0 else 0.0
        label = "  " * depth + node.name
        lines.append(
            f"{label:<44s} {node.calls:>7d} {node.total:>10.6f} "
            f"{node.self_seconds:>10.6f} {pct:>6.1f}%"
        )
        for child in sorted(
            node.children.values(), key=lambda c: -c.total
        ):
            emit(child, depth + 1)

    for top in sorted(root.children.values(), key=lambda c: -c.total):
        emit(top, 0)
    return "\n".join(lines)


# -- NDJSON ------------------------------------------------------------------


def span_record(s: Span, t0: float = 0.0) -> dict[str, Any]:
    """The JSON-ready dict for one completed span (the NDJSON unit).

    Shared by the batch exporter below and the incremental streamer
    (:class:`~repro.obs.stream.ObsStreamer`), so streamed and batch
    files are byte-compatible.  Spans recorded under a
    :class:`~repro.obs.tracer.TraceContext` additionally carry their
    W3C ``trace_id``/``span_id``/``parent_span_id`` (absent otherwise,
    keeping pre-trace files unchanged).
    """
    rec = {
        "span": s.name,
        "start_s": s.start - t0,
        "dur_s": s.duration,
        "depth": s.depth,
        "rank": _json_safe(s.effective_attr("rank", 0)),
        "thread": _json_safe(s.effective_attr("thread", 0)),
        "attrs": {k: _json_safe(v) for k, v in s.attrs.items()},
    }
    if s.trace_id is not None:
        rec["trace_id"] = s.trace_id
        rec["span_id"] = s.span_id
        rec["parent_span_id"] = s.parent_span_id
    return rec


def span_line(s: Span, t0: float = 0.0) -> str:
    """One finished NDJSON line for a span — the hot-path serializer.

    ``repro serve`` workers (and the ``--trace`` benchmark) stream a
    line per completed span from inside the ERI kernel, where a
    ``json.dumps`` per record is the single largest tracing cost; this
    hand-builds the common shape (ASCII name, int rank/thread) and is
    byte-identical to ``json.dumps(span_record(s, t0))``, falling back
    to exactly that for anything unusual.
    """
    # One walk up the parent chain covers rank/thread inheritance and
    # the nesting depth (span_record does three).
    rank = thread = _MISSING
    depth = 0
    node: Span | None = s
    while node is not None:
        a = node.attrs
        if rank is _MISSING and "rank" in a:
            rank = a["rank"]
        if thread is _MISSING and "thread" in a:
            thread = a["thread"]
        node = node.parent
        depth += 1
    depth -= 1  # the walk counted the span itself
    if rank is _MISSING:
        rank = 0
    if thread is _MISSING:
        thread = 0
    name = s.name
    if (type(rank) is not int or type(thread) is not int
            or '"' in name or "\\" in name):
        return json.dumps(span_record(s, t0))
    attrs = s.attrs
    attrs_json = (json.dumps({k: _json_safe(v) for k, v in attrs.items()})
                  if attrs else "{}")
    end = s.end
    dur = (end - s.start) if end is not None else 0.0
    line = (
        f'{{"span": "{name}", "start_s": {s.start - t0!r}, '
        f'"dur_s": {dur!r}, "depth": {depth}, '
        f'"rank": {rank}, "thread": {thread}, "attrs": {attrs_json}'
    )
    if s.trace_id is not None:
        parent = ("null" if s.parent_span_id is None
                  else f'"{s.parent_span_id}"')
        line += (f', "trace_id": "{s.trace_id}", "span_id": "{s.span_id}", '
                 f'"parent_span_id": {parent}')
    return line + "}"


def spans_ndjson(tracer: Tracer, *, t0: float | None = None) -> str:
    """One JSON line per completed span (name, start, dur, depth, attrs).

    ``t0`` pins the zero of the relative timestamps; it defaults to the
    earliest recorded span.  The real-process backend passes one shared
    ``perf_counter`` reading to every worker (the clock is
    ``CLOCK_MONOTONIC``, common across processes on one host), so the
    per-worker dumps land on a single merged timeline.
    """
    spans = [s for s in tracer.walk() if s.end is not None]
    if t0 is None:
        t0 = min((s.start for s in spans), default=0.0)
    return "\n".join(json.dumps(span_record(s, t0)) for s in spans)


def metrics_ndjson(registry: MetricsRegistry) -> str:
    """One JSON line per metric in the registry, key-sorted."""
    return "\n".join(json.dumps(rec) for rec in registry.records())


def write_spans_ndjson(
    tracer: Tracer, path: str | Path, *, t0: float | None = None
) -> Path:
    """Write :func:`spans_ndjson` to ``path`` (parent dirs created)."""
    return write_text(path, spans_ndjson(tracer, t0=t0))


def write_metrics_ndjson(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`metrics_ndjson` to ``path`` (parent dirs created)."""
    return write_text(path, metrics_ndjson(registry))


# -- Prometheus text exposition ----------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus metric name."""
    out = _PROM_NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_labels(labels: Iterable[tuple[str, Any]]) -> str:
    pairs = [
        f'{_PROM_LABEL_RE.sub("_", str(k))}="{v}"' for k, v in labels
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-format exposition of a metrics registry.

    Counters and gauges map directly; histograms expand to a proper
    Prometheus histogram family — cumulative ``<name>_bucket{le="…"}``
    lines (``+Inf`` last) plus ``<name>_count`` and ``<name>_sum`` —
    with ``_min`` / ``_max`` / ``_mean`` / ``_std`` kept as companion
    gauges; series become one gauge per element with an ``idx`` label.
    ``None`` values (unset gauges, empty histograms) are skipped.  The
    output is key-sorted and deterministic, so external scrapers
    consume exactly the registry the dashboard and the NDJSON exporter
    read.
    """
    by_family: dict[str, tuple[str, list[str]]] = {}

    def add(family: str, prom_kind: str, line: str) -> None:
        kind, lines = by_family.setdefault(family, (prom_kind, []))
        lines.append(line)

    for rec in registry.records():
        name = _prom_name(rec["metric"])
        labels = sorted(rec["labels"].items())
        kind = rec["kind"]
        value = rec["value"]
        if kind in ("counter", "gauge"):
            if value is None:
                continue
            suffix = "_total" if kind == "counter" else ""
            prom_kind = "counter" if kind == "counter" else "gauge"
            add(
                name + suffix, prom_kind,
                f"{name}{suffix}{_prom_labels(labels)} {float(value):g}",
            )
        elif kind == "histogram":
            for le, cum in value.get("buckets") or []:
                le_str = "+Inf" if le == "+Inf" else f"{float(le):g}"
                add(
                    name, "histogram",
                    f"{name}_bucket"
                    f"{_prom_labels(labels + [('le', le_str)])} {cum:d}",
                )
            add(
                name, "histogram",
                f"{name}_count{_prom_labels(labels)} {value['count']:d}",
            )
            add(
                name, "histogram",
                f"{name}_sum{_prom_labels(labels)} {float(value['sum']):g}",
            )
            for stat in ("min", "max", "mean", "std"):
                v = value.get(stat)
                if v is None:
                    continue
                add(
                    f"{name}_{stat}", "gauge",
                    f"{name}_{stat}{_prom_labels(labels)} {float(v):g}",
                )
        elif kind == "series":
            for i, v in enumerate(value):
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    continue
                add(
                    name, "gauge",
                    f"{name}{_prom_labels(labels + [('idx', i)])} "
                    f"{float(v):g}",
                )
    lines: list[str] = []
    for family in sorted(by_family):
        prom_kind, samples = by_family[family]
        lines.append(f"# TYPE {family} {prom_kind}")
        lines.extend(samples)
    return "\n".join(lines)


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`prometheus_text` to ``path`` (parent dirs created)."""
    return write_text(path, prometheus_text(registry))
