"""Named-metric registry: counters, gauges, histograms, series.

The registry is the machine-readable side of the observability layer:
every quantity the paper tabulates (quartets computed/screened, FI/FJ
flushes, reduce bytes, DLB grants per rank, race checks) lives here as
a named metric, optionally labelled (``counter("dlb.grants", rank=3)``).

:class:`~repro.core.fock_base.FockBuildStats` is a thin attribute view
over one registry per Fock build; a globally installed registry
(:func:`use_metrics`) additionally accumulates run-level totals from
the DLB, DDI, reduction, and perfsim layers.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

LabelKey = tuple[tuple[str, Any], ...]

#: Default histogram bucket upper bounds (seconds-flavoured exponential
#: ladder, microseconds to minutes) — wide enough for both per-quartet
#: kernel timings and whole-job service latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Counter:
    """Monotonically incremented (but settable) numeric metric."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """Last-value metric."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> int | float | None:
        return self.value


class Histogram:
    """Streaming distribution summary with fixed-boundary buckets.

    The mean and variance are maintained with Welford's online update,
    so the spread is available without storing the observations — the
    imbalance metrics report standard deviation, not just min/max.

    Observations are additionally binned against a fixed ladder of
    upper bounds (:data:`DEFAULT_BUCKETS` unless overridden), which
    gives :meth:`quantile` estimates by linear interpolation inside
    the bracketing bucket and drives the Prometheus ``_bucket``/``le``
    exposition — all in O(len(buckets)) memory, never O(count).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_mean", "_m2", "buckets", "bucket_counts")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._mean = 0.0
        self._m2 = 0.0
        self.buckets: tuple[float, ...] = tuple(
            sorted(DEFAULT_BUCKETS if buckets is None else buckets))
        # One slot per boundary plus the +Inf overflow slot.
        self.bucket_counts: list[int] = [0] * (len(self.buckets) + 1)

    def set_buckets(self, buckets: Sequence[float]) -> None:
        """Replace the bucket ladder; only legal before any observation."""
        if self.count:
            raise ValueError(
                f"histogram {self.name!r} already has {self.count} "
                "observations; buckets are fixed at first use")
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: int | float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)
        self.bucket_counts[bisect_left(self.buckets, v)] += 1

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations (0.0 when empty)."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the observations."""
        return math.sqrt(max(self.variance, 0.0))

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        cum = 0
        for le, n in zip(self.buckets, self.bucket_counts):
            cum += n
            out.append((le, cum))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimated q-quantile (0 ≤ q ≤ 1) from the bucket counts.

        Linear interpolation inside the bracketing bucket, clamped to
        the observed ``[min, max]`` so the estimate never invents mass
        outside the data.  ``None`` when the histogram is empty.
        """
        if not self.count:
            return None
        q = min(max(float(q), 0.0), 1.0)
        target = q * self.count
        cum = 0.0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            prev_cum = cum
            cum += n
            if cum >= target:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = (self.buckets[i] if i < len(self.buckets)
                      else (self.max if self.max is not None else lo))
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                if hi < lo:
                    hi = lo
                frac = (target - prev_cum) / n
                return lo + (hi - lo) * frac
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
            "buckets": [
                ["+Inf" if math.isinf(le) else le, cum]
                for le, cum in self.cumulative_buckets()
            ],
        }


class Series(list):
    """A list-valued metric (e.g. per-rank quartet counts, in rank order)."""

    kind = "series"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__()
        self.name = name
        self.labels = labels

    def snapshot(self) -> list:
        return list(self)


Metric = Counter | Gauge | Histogram | Series


def _format_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Keyed store of metrics, created on first access.

    ``registry.counter("dlb.grants", rank=2).inc()`` creates the
    labelled counter on first use and reuses it afterwards; asking for
    an existing key with a different metric kind is an error.
    """

    _KINDS = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
        "series": Series,
    }

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    def _get_or_create(self, kind: str, name: str, labels: dict[str, Any]) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._KINDS[kind](name, key[1])
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {_format_key(name, key[1])!r} already registered "
                f"as a {metric.kind}, requested as a {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        metric = self._get_or_create("histogram", name, labels)
        if buckets is not None and not metric.count:
            metric.set_buckets(buckets)
        return metric

    def series(self, name: str, **labels: Any) -> Series:
        return self._get_or_create("series", name, labels)

    # -- inspection ----------------------------------------------------------

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{"name{label=v}": value}`` view, key-sorted.

        Deterministic for deterministic instrumentation — the test
        suite diffs snapshots across repeated runs.  Sorting is on the
        *formatted* key string: raw label tuples are not orderable when
        label values mix types (``rank=3`` vs ``rank="io"``).
        """
        return {
            _format_key(m.name, m.labels): m.snapshot()
            for m in sorted(
                self._metrics.values(),
                key=lambda m: _format_key(m.name, m.labels),
            )
        }

    def records(self) -> Iterator[dict[str, Any]]:
        """One JSON-ready record per metric (the NDJSON export unit)."""
        for m in sorted(
            self._metrics.values(),
            key=lambda m: _format_key(m.name, m.labels),
        ):
            yield {
                "metric": m.name,
                "kind": m.kind,
                "labels": dict(m.labels),
                "value": m.snapshot(),
            }


_current_metrics: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The globally installed registry, or ``None`` (metering off)."""
    return _current_metrics


def set_metrics(registry: MetricsRegistry | None) -> None:
    """Install a global registry; ``None`` disables run-level metering."""
    global _current_metrics
    _current_metrics = registry


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = _current_metrics
    set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
