"""Named-metric registry: counters, gauges, histograms, series.

The registry is the machine-readable side of the observability layer:
every quantity the paper tabulates (quartets computed/screened, FI/FJ
flushes, reduce bytes, DLB grants per rank, race checks) lives here as
a named metric, optionally labelled (``counter("dlb.grants", rank=3)``).

:class:`~repro.core.fock_base.FockBuildStats` is a thin attribute view
over one registry per Fock build; a globally installed registry
(:func:`use_metrics`) additionally accumulates run-level totals from
the DLB, DDI, reduction, and perfsim layers.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator

LabelKey = tuple[tuple[str, Any], ...]


class Counter:
    """Monotonically incremented (but settable) numeric metric."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> int | float:
        return self.value


class Gauge:
    """Last-value metric."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float | None = None

    def set(self, value: int | float) -> None:
        self.value = value

    def snapshot(self) -> int | float | None:
        return self.value


class Histogram:
    """Streaming distribution summary (count/sum/min/max/mean/std).

    The mean and variance are maintained with Welford's online update,
    so the spread is available without storing the observations — the
    imbalance metrics report standard deviation, not just min/max.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_mean", "_m2")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: int | float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        delta = v - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (v - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations (0.0 when empty)."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation of the observations."""
        return math.sqrt(max(self.variance, 0.0))

    def snapshot(self) -> dict[str, float | int | None]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "std": self.std,
        }


class Series(list):
    """A list-valued metric (e.g. per-rank quartet counts, in rank order)."""

    kind = "series"

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__()
        self.name = name
        self.labels = labels

    def snapshot(self) -> list:
        return list(self)


Metric = Counter | Gauge | Histogram | Series


def _format_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Keyed store of metrics, created on first access.

    ``registry.counter("dlb.grants", rank=2).inc()`` creates the
    labelled counter on first use and reuses it afterwards; asking for
    an existing key with a different metric kind is an error.
    """

    _KINDS = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
        "series": Series,
    }

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    def _get_or_create(self, kind: str, name: str, labels: dict[str, Any]) -> Metric:
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._KINDS[kind](name, key[1])
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {_format_key(name, key[1])!r} already registered "
                f"as a {metric.kind}, requested as a {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create("histogram", name, labels)

    def series(self, name: str, **labels: Any) -> Series:
        return self._get_or_create("series", name, labels)

    # -- inspection ----------------------------------------------------------

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{"name{label=v}": value}`` view, key-sorted.

        Deterministic for deterministic instrumentation — the test
        suite diffs snapshots across repeated runs.  Sorting is on the
        *formatted* key string: raw label tuples are not orderable when
        label values mix types (``rank=3`` vs ``rank="io"``).
        """
        return {
            _format_key(m.name, m.labels): m.snapshot()
            for m in sorted(
                self._metrics.values(),
                key=lambda m: _format_key(m.name, m.labels),
            )
        }

    def records(self) -> Iterator[dict[str, Any]]:
        """One JSON-ready record per metric (the NDJSON export unit)."""
        for m in sorted(
            self._metrics.values(),
            key=lambda m: _format_key(m.name, m.labels),
        ):
            yield {
                "metric": m.name,
                "kind": m.kind,
                "labels": dict(m.labels),
                "value": m.snapshot(),
            }


_current_metrics: MetricsRegistry | None = None


def get_metrics() -> MetricsRegistry | None:
    """The globally installed registry, or ``None`` (metering off)."""
    return _current_metrics


def set_metrics(registry: MetricsRegistry | None) -> None:
    """Install a global registry; ``None`` disables run-level metering."""
    global _current_metrics
    _current_metrics = registry


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` for the duration of a ``with`` block."""
    previous = _current_metrics
    set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
