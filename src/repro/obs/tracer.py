"""Hierarchical wall-clock tracing for the simulated MPI/OpenMP SCF.

A :class:`Tracer` records *spans* — named, nestable regions of wall
time with arbitrary attributes — via a context manager::

    tracer = Tracer()
    with tracer.span("fock/build", algorithm="shared-fock"):
        with tracer.span("fock/rank", rank=0):
            ...

Spans form a tree (the nesting structure of the ``with`` statements);
attributes such as ``rank`` and ``thread`` are inherited down the tree,
which is what lets the Chrome-trace exporter place every span on the
track of its simulated rank/thread.

The disabled path is near-free: a tracer constructed with
``enabled=False`` (or the module-level :data:`NULL_TRACER`) hands out a
single shared no-op context manager from :meth:`Tracer.span`, so
instrumented code pays one method call and no allocation per span.

The wall clock defaults to :func:`time.perf_counter`; tests inject a
deterministic fake clock through the ``clock`` parameter.
"""

from __future__ import annotations

import secrets
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


def new_trace_id() -> str:
    """A fresh W3C trace id: 32 lowercase hex chars, never all-zero."""
    return secrets.token_hex(16)


def new_span_id() -> str:
    """A fresh W3C span id: 16 lowercase hex chars, never all-zero."""
    return secrets.token_hex(8)


class TraceContext:
    """Remote parentage for a tracer: ``(trace_id, span_id)`` of the caller.

    When a :class:`Tracer` carries a context, every root span it opens
    is stamped with ``trace_id`` and parented (via ``parent_span_id``)
    onto the context's ``span_id`` — that is how a forked worker's SCF
    spans attach to the job-level span minted by the service queue in
    another process.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — for fanning out sub-contexts."""
        return TraceContext(self.trace_id, new_span_id())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"


def format_traceparent(ctx: TraceContext) -> str:
    """W3C ``traceparent`` header form: ``00-<trace_id>-<span_id>-01``."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def parse_traceparent(header: str) -> TraceContext | None:
    """Parse a ``traceparent`` string; ``None`` on any malformation."""
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != "00" or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(trace_id, span_id)


class Span:
    """One traced region: a name, a wall-time interval, and attributes."""

    __slots__ = ("name", "attrs", "start", "end", "parent", "children",
                 "trace_id", "span_id", "parent_span_id")

    def __init__(
        self,
        name: str,
        attrs: dict[str, Any],
        start: float,
        parent: "Span | None" = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_span_id: str | None = None

    @property
    def duration(self) -> float:
        """Span wall seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def depth(self) -> int:
        """Nesting depth (0 for a root span)."""
        d, s = 0, self.parent
        while s is not None:
            d, s = d + 1, s.parent
        return d

    def effective_attr(self, key: str, default: Any = None) -> Any:
        """Attribute value, inherited from the nearest ancestor that set it."""
        s: Span | None = self
        while s is not None:
            if key in s.attrs:
                return s.attrs[key]
            s = s.parent
        return default

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"attrs={self.attrs!r}, children={len(self.children)})"
        )


class _NullSpanContext:
    """Shared no-op context manager handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._attrs)
        return self.span

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close()
        return False


class Tracer:
    """Span recorder with a current-span stack.

    Parameters
    ----------
    enabled:
        When ``False`` the tracer records nothing and :meth:`span`
        returns a shared no-op context manager.
    clock:
        Monotonic second counter; :func:`time.perf_counter` by default.
    on_close:
        Optional callback invoked with each span as it completes —
        the hook the incremental NDJSON streamer
        (:class:`~repro.obs.stream.ObsStreamer`) uses to make records
        durable before a worker can die.  ``None`` (the default) costs
        one ``is None`` test per span close.
    context:
        Optional :class:`TraceContext` naming the remote parent.  When
        set, every span gets W3C ids: ``trace_id`` from the context,
        a fresh ``span_id``, and ``parent_span_id`` chaining to the
        enclosing span (or to ``context.span_id`` for roots).  When
        ``None`` (the default) spans carry no ids and tracing stays
        purely in-process, exactly as before.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        on_close: Callable[[Span], None] | None = None,
        context: TraceContext | None = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.on_close = on_close
        self.context = context
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext | _NullSpanContext:
        """Open a named span for the duration of a ``with`` block."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        s = Span(name, attrs, self.clock(), parent)
        ctx = self.context
        if ctx is not None:
            s.trace_id = ctx.trace_id
            s.span_id = new_span_id()
            s.parent_span_id = (
                parent.span_id if parent is not None else ctx.span_id
            )
        (parent.children if parent is not None else self.roots).append(s)
        self._stack.append(s)
        return s

    def _close(self) -> None:
        s = self._stack.pop()
        s.end = self.clock()
        if self.on_close is not None:
            self.on_close(s)

    # -- inspection ----------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """Innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def walk(self) -> Iterator[Span]:
        """All recorded spans, depth-first over the root forest."""
        for root in self.roots:
            yield from root.walk()

    @property
    def nspans(self) -> int:
        return sum(1 for _ in self.walk())

    def total_seconds(self) -> float:
        """Sum of root-span durations (total traced wall time)."""
        return sum(r.duration for r in self.roots)

    def clear(self) -> None:
        """Drop all recorded spans (open spans are discarded too)."""
        self.roots.clear()
        self._stack.clear()


#: The shared disabled tracer installed by default.
NULL_TRACER = Tracer(enabled=False)

_current_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (:data:`NULL_TRACER` by default)."""
    return _current_tracer


def set_tracer(tracer: Tracer | None) -> None:
    """Install ``tracer`` globally; ``None`` restores :data:`NULL_TRACER`."""
    global _current_tracer
    _current_tracer = NULL_TRACER if tracer is None else tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = _current_tracer
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
