"""Structured logging control for the CLI.

The repro CLI prints machine-parseable results (energies, JSON, NDJSON
paths) on **stdout**; everything diagnostic — registry writes, telemetry
socket lifecycle, backend warnings — goes through :mod:`logging` to
**stderr**.  This module owns that split:

* ``--log-level debug|info|warning|error`` sets the threshold for the
  ``repro`` logger tree (handlers attach to stderr only, so piping
  stdout stays clean);
* ``--quiet`` raises the threshold to ``error`` *and* is exposed via
  :func:`quiet_enabled` so subcommands can gate their informational
  stdout prints (tables, progress notes) while keeping the primary
  result lines.
"""

from __future__ import annotations

import logging
import sys

LEVELS = ("debug", "info", "warning", "error")

_quiet = False


def setup_logging(level: str = "warning", *, quiet: bool = False) -> None:
    """Configure the ``repro`` logger tree for one CLI invocation.

    Idempotent: re-running replaces the handler rather than stacking
    duplicates (matters for in-process CLI tests that call ``main``
    repeatedly).
    """
    global _quiet
    _quiet = quiet
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(
        logging.ERROR if quiet else getattr(logging, level.upper())
    )
    root.propagate = False


def quiet_enabled() -> bool:
    """Whether ``--quiet`` was requested (gates informational stdout)."""
    return _quiet
