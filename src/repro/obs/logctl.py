"""Structured logging control for the CLI.

The repro CLI prints machine-parseable results (energies, JSON, NDJSON
paths) on **stdout**; everything diagnostic — registry writes, telemetry
socket lifecycle, backend warnings — goes through :mod:`logging` to
**stderr**.  This module owns that split:

* ``--log-level debug|info|warning|error`` sets the threshold for the
  ``repro`` logger tree (handlers attach to stderr only, so piping
  stdout stays clean);
* ``--quiet`` raises the threshold to ``error`` *and* is exposed via
  :func:`quiet_enabled` so subcommands can gate their informational
  stdout prints (tables, progress notes) while keeping the primary
  result lines.

Every record additionally carries correlation fields — ``run_id``,
``job_id``, ``trace_id`` — injected from context variables by a
:class:`logging.Filter`, so a stderr line can be joined against the
run registry and the distributed trace of the job that emitted it.
Set them with :func:`set_log_context` (the service worker does this
per dispatched job; the CLI per registered run); unset fields render
as nothing, keeping single-process logs unchanged.
"""

from __future__ import annotations

import logging
import sys
from contextvars import ContextVar
from typing import Any

LEVELS = ("debug", "info", "warning", "error")

_quiet = False

_UNSET = object()
_run_id: ContextVar[str | None] = ContextVar("repro_log_run_id", default=None)
_job_id: ContextVar[str | None] = ContextVar("repro_log_job_id", default=None)
_trace_id: ContextVar[str | None] = ContextVar(
    "repro_log_trace_id", default=None)


def set_log_context(
    *,
    run_id: Any = _UNSET,
    job_id: Any = _UNSET,
    trace_id: Any = _UNSET,
) -> None:
    """Set correlation fields for subsequent log records.

    Only the keywords passed are touched; pass ``None`` to clear one.
    """
    if run_id is not _UNSET:
        _run_id.set(run_id)
    if job_id is not _UNSET:
        _job_id.set(job_id)
    if trace_id is not _UNSET:
        _trace_id.set(trace_id)


def clear_log_context() -> None:
    """Drop all correlation fields."""
    set_log_context(run_id=None, job_id=None, trace_id=None)


def log_context() -> dict[str, str | None]:
    """The current correlation fields (``None`` where unset)."""
    return {
        "run_id": _run_id.get(),
        "job_id": _job_id.get(),
        "trace_id": _trace_id.get(),
    }


class CorrelationFilter(logging.Filter):
    """Stamp ``run_id``/``job_id``/``trace_id`` onto every record.

    Also precomputes ``record.corr`` — a ready-to-format suffix like
    ``" [run=… job=… trace=…]"``, empty when no field is set — so the
    formatter string stays a plain ``%``-style template.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        record.run_id = _run_id.get()
        record.job_id = _job_id.get()
        record.trace_id = _trace_id.get()
        parts = [
            f"{key}={val}"
            for key, val in (("run", record.run_id),
                             ("job", record.job_id),
                             ("trace", record.trace_id))
            if val
        ]
        record.corr = f" [{' '.join(parts)}]" if parts else ""
        return True


def setup_logging(level: str = "warning", *, quiet: bool = False) -> None:
    """Configure the ``repro`` logger tree for one CLI invocation.

    Idempotent: re-running replaces the handler rather than stacking
    duplicates (matters for in-process CLI tests that call ``main``
    repeatedly).
    """
    global _quiet
    _quiet = quiet
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler.addFilter(CorrelationFilter())
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s%(corr)s: %(message)s")
    )
    root.addHandler(handler)
    root.setLevel(
        logging.ERROR if quiet else getattr(logging, level.upper())
    )
    root.propagate = False


def quiet_enabled() -> bool:
    """Whether ``--quiet`` was requested (gates informational stdout)."""
    return _quiet
