"""Stitch one job's cross-process spans into a single Chrome trace.

Three processes leave three kinds of evidence about one job:

* the **client** stamps its ``perf_counter`` into the submit request;
* the **daemon** journals every queue transition with both wall time
  (``t``) and ``perf_counter`` (``pt``);
* each **worker attempt** streams its span NDJSON (W3C ids, absolute
  ``perf_counter`` timestamps) to ``<run_dir>/trace/attempt-NNN…``.

``perf_counter`` is ``CLOCK_MONOTONIC`` — one clock for every process
on the host — so those fragments already share a time base.  This
module folds them into one job-level trace:

* real spans: the client submit, the job root (submit → terminal), one
  container per attempt, and the worker's SCF spans under it;
* synthetic segments the service *implies* but no process ever timed
  as a span: ``queue.wait`` (ready → dispatched, per attempt),
  ``retry.backoff`` (the deterministic gate between attempts), and
  ``checkpoint.resume`` (dispatch → first span of a resumed attempt);
* a **cross-process critical path**: the single chain of segments that
  accounts for the job's end-to-end latency, hopping client → queue →
  worker → queue → worker as retries demand.

A SIGKILL'd attempt never closes its ``job/attempt`` root, so that
span is missing from its NDJSON; assembly synthesizes the container
from the journal's transition boundaries and re-parents the attempt's
surviving spans onto it — merged traces stay well-formed under chaos.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.obs.tracer import new_span_id

_MICRO = 1e6

#: Chrome pid tracks of the merged trace.
PID_CLIENT = 0
PID_SERVICE = 1
PID_ATTEMPT_BASE = 2


class TraceAssemblyError(RuntimeError):
    """The journal/registry evidence cannot be stitched for this job."""


# -- journal folding ---------------------------------------------------------


@dataclass
class JobJournal:
    """Everything the service journal says about one job."""

    job_id: str
    trace_id: str | None = None
    parent_span_id: str | None = None
    root_span_id: str | None = None
    client_t: float | None = None
    submit_t: float | None = None  # wall clock
    submit_pt: float | None = None  # perf_counter
    run_id: str | None = None
    transitions: list[dict[str, Any]] = field(default_factory=list)

    @property
    def terminal(self) -> dict[str, Any] | None:
        for rec in reversed(self.transitions):
            if rec.get("state") in ("done", "failed", "cancelled"):
                return rec
        return None

    @property
    def end_pt(self) -> float | None:
        term = self.terminal
        if term is not None and term.get("pt") is not None:
            return term["pt"]
        pts = [r["pt"] for r in self.transitions if r.get("pt") is not None]
        return max(pts) if pts else self.submit_pt


def _iter_journal(journal_path: str | Path) -> Iterator[dict[str, Any]]:
    text = Path(journal_path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail — same tolerance as queue replay


def load_job_journal(journal_path: str | Path, job_id: str) -> JobJournal:
    """Fold the journal's submit + transitions for one job (prefix ok)."""
    jobs: dict[str, JobJournal] = {}
    for rec in _iter_journal(journal_path):
        op = rec.get("op")
        if op == "submit":
            job = rec.get("job") or {}
            jid = job.get("id")
            if not jid:
                continue
            jobs[jid] = JobJournal(
                job_id=jid,
                trace_id=job.get("trace_id"),
                parent_span_id=job.get("parent_span_id"),
                root_span_id=job.get("root_span_id"),
                client_t=job.get("client_t"),
                submit_t=rec.get("t"),
                submit_pt=rec.get("pt"),
            )
        elif op == "state":
            jj = jobs.get(rec.get("id", ""))
            if jj is None:
                continue
            jj.transitions.append(rec)
            if rec.get("run_id"):
                jj.run_id = rec["run_id"]
    if job_id in jobs:
        return jobs[job_id]
    matches = [j for j in jobs if j.startswith(job_id)]
    if len(matches) == 1:
        return jobs[matches[0]]
    if not matches:
        raise TraceAssemblyError(
            f"no job matches {job_id!r} in {journal_path}")
    raise TraceAssemblyError(
        f"{job_id!r} is ambiguous: matches {', '.join(matches[:5])}")


# -- span loading ------------------------------------------------------------


def load_attempt_spans(trace_dir: str | Path) -> dict[int, list[dict]]:
    """Per-attempt span records from ``attempt-NNN.spans.ndjson`` files."""
    out: dict[int, list[dict]] = {}
    trace_dir = Path(trace_dir)
    if not trace_dir.is_dir():
        return out
    for path in sorted(trace_dir.glob("attempt-*.spans.ndjson")):
        stem = path.name.split(".", 1)[0]  # "attempt-003"
        try:
            attempt = int(stem.split("-", 1)[1])
        except (IndexError, ValueError):
            continue
        records: list[dict] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail of a killed worker
        out[attempt] = records
    return out


# -- assembly ----------------------------------------------------------------


@dataclass
class TraceSegment:
    """One interval on the merged timeline (real or synthetic)."""

    name: str
    start: float  # absolute perf_counter seconds
    end: float
    pid: int
    tid: int = 0
    span_id: str = ""
    parent_span_id: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    synthetic: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class AssembledTrace:
    """The stitched job trace plus its derived artifacts."""

    job_id: str
    trace_id: str
    segments: list[TraceSegment]
    critical_path: list[TraceSegment]
    warnings: list[str]

    def validate(self) -> list[str]:
        """Structural checks; returns problems (empty = well-formed)."""
        problems: list[str] = []
        ids = {s.span_id for s in self.segments}
        roots = [s for s in self.segments if s.parent_span_id is None]
        for seg in self.segments:
            if seg.parent_span_id is not None \
                    and seg.parent_span_id not in ids:
                problems.append(
                    f"orphan span {seg.name!r} ({seg.span_id}) parented on "
                    f"missing {seg.parent_span_id}")
            if not math.isfinite(seg.start) or seg.end < seg.start:
                problems.append(f"span {seg.name!r} has a bad interval")
        if len(roots) > 1:
            names = ", ".join(s.name for s in roots[:5])
            problems.append(f"multiple root spans: {names}")
        attempts = [s for s in self.segments if s.name == "job/attempt"]
        job_roots = [s for s in self.segments if s.name == "service/job"]
        if job_roots:
            root_id = job_roots[0].span_id
            for seg in attempts:
                if seg.parent_span_id != root_id:
                    problems.append(
                        f"attempt {seg.attrs.get('attempt')} is not a "
                        "sibling under the job root")
        return problems

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome trace-event JSON with one pid track per process."""
        if not self.segments:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        t0 = min(s.start for s in self.segments)
        events: list[dict[str, Any]] = []
        pids = sorted({s.pid for s in self.segments})
        names = {PID_CLIENT: "client", PID_SERVICE: "service daemon"}
        for pid in pids:
            label = names.get(
                pid, f"worker attempt {pid - PID_ATTEMPT_BASE + 1}")
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": label}})
        for seg in self.segments:
            args = dict(seg.attrs)
            args["span_id"] = seg.span_id
            if seg.parent_span_id:
                args["parent_span_id"] = seg.parent_span_id
            if seg.synthetic:
                args["synthetic"] = True
            events.append({
                "name": seg.name,
                "cat": "synthetic" if seg.synthetic
                       else seg.name.split("/", 1)[0],
                "ph": "X",
                "ts": (seg.start - t0) * _MICRO,
                "dur": seg.duration * _MICRO,
                "pid": seg.pid,
                "tid": seg.tid,
                "args": args,
            })
        for i, seg in enumerate(self.critical_path):
            events.append({
                "name": f"critical:{seg.name}",
                "cat": "critical-path",
                "ph": "X",
                "ts": (seg.start - t0) * _MICRO,
                "dur": seg.duration * _MICRO,
                "pid": PID_SERVICE,
                "tid": 99,
                "args": {"step": i, "source_pid": seg.pid},
            })
        events.append({"name": "thread_name", "ph": "M", "pid": PID_SERVICE,
                       "tid": 99, "args": {"name": "critical path"}})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.trace_assembly",
                "job_id": self.job_id,
                "trace_id": self.trace_id,
            },
        }

    def critical_path_report(self) -> str:
        """Text table of the critical path (relative seconds)."""
        if not self.critical_path:
            return "(empty critical path)"
        t0 = min(s.start for s in self.segments)
        total = sum(s.duration for s in self.critical_path)
        lines = [
            f"critical path — {len(self.critical_path)} segment(s), "
            f"{total:.3f} s end to end",
            f"{'segment':<36s} {'start(s)':>10s} {'dur(s)':>10s} {'%':>6s}",
        ]
        for seg in self.critical_path:
            pct = 100.0 * seg.duration / total if total > 0 else 0.0
            lines.append(
                f"{seg.name:<36s} {seg.start - t0:>10.4f} "
                f"{seg.duration:>10.4f} {pct:>5.1f}%")
        return "\n".join(lines)


def _attempt_boundaries(jj: JobJournal) -> list[dict[str, Any]]:
    """Per-attempt ``{attempt, start_pt, end_pt, resumed, outcome}``.

    Each ``running`` transition opens an attempt; the next transition
    for the job closes it.  ``resumed`` comes from the dispatcher's
    journal annotation (a checkpoint existed when the attempt left).
    """
    bounds: list[dict[str, Any]] = []
    for i, rec in enumerate(jj.transitions):
        if rec.get("state") != "running":
            continue
        attempt = rec.get("attempt")
        if attempt is None or (bounds and bounds[-1]["attempt"] == attempt):
            # The run_id/degraded/resumed annotations arrive as a
            # second "running" record (no attempt counter) right after
            # the claim; merge them into the open attempt.
            if bounds and rec.get("resumed"):
                bounds[-1]["resumed"] = True
            continue
        entry = {
            "attempt": int(attempt),
            "start_pt": rec.get("pt"),
            "end_pt": None,
            "resumed": bool(rec.get("resumed")),
            "outcome": None,
        }
        for later in jj.transitions[i + 1:]:
            state = later.get("state")
            if state == "running":
                la = later.get("attempt")
                if la is None or la == attempt:
                    if later.get("resumed"):
                        entry["resumed"] = True
                    continue
                # A new attempt started with no terminal record in
                # between: the daemon died mid-attempt and the journal
                # replay re-dispatched — close the old attempt there.
                entry["end_pt"] = later.get("pt")
                entry["outcome"] = "interrupted"
                break
            if state in ("retrying", "done", "failed", "cancelled"):
                entry["end_pt"] = later.get("pt")
                entry["outcome"] = state
                break
        bounds.append(entry)
    return bounds


def assemble_job_trace(
    journal_path: str | Path,
    job_id: str,
    *,
    trace_dir: str | Path | None = None,
    runs_root: str | Path | None = None,
) -> AssembledTrace:
    """Assemble one job's merged cross-process trace.

    ``trace_dir`` points directly at the per-attempt span directory;
    when omitted it is derived as ``<runs_root>/<run_id>/trace`` from
    the journal's ``run_id`` annotation.
    """
    jj = load_job_journal(journal_path, job_id)
    if jj.trace_id is None or jj.root_span_id is None:
        raise TraceAssemblyError(
            f"job {jj.job_id} predates trace propagation "
            "(no trace_id in its submit record)")
    warnings: list[str] = []
    if trace_dir is None and runs_root is not None and jj.run_id:
        trace_dir = Path(runs_root) / jj.run_id / "trace"
    attempt_spans = (load_attempt_spans(trace_dir)
                     if trace_dir is not None else {})
    if not attempt_spans:
        warnings.append("no worker span NDJSON found; journal-only trace")

    segments: list[TraceSegment] = []
    submit_pt = jj.submit_pt
    if submit_pt is None:
        raise TraceAssemblyError(
            f"job {jj.job_id} has no perf_counter submit stamp")
    end_pt = jj.end_pt or submit_pt
    bounds = _attempt_boundaries(jj)

    # Job root: the whole service-side lifetime, on the daemon track.
    term = jj.terminal
    root = TraceSegment(
        name="service/job",
        start=submit_pt, end=max(end_pt, submit_pt),
        pid=PID_SERVICE,
        span_id=jj.root_span_id,
        parent_span_id=jj.parent_span_id,
        attrs={"job": jj.job_id,
               "state": term.get("state") if term else "open",
               "attempts": len(bounds)},
    )
    segments.append(root)

    # Client submit span: perf_counter is cross-process, so the client
    # stamp and the journal stamp bracket the submit round trip.
    if jj.client_t is not None and jj.parent_span_id is not None:
        segments.append(TraceSegment(
            name="client/submit",
            start=min(jj.client_t, submit_pt), end=submit_pt,
            pid=PID_CLIENT,
            span_id=jj.parent_span_id,
            parent_span_id=None,
            attrs={"job": jj.job_id},
        ))
    elif jj.parent_span_id is not None:
        # Trace context arrived but without a clock stamp; keep the
        # root parented on it and note the missing client span.
        root.parent_span_id = None
        warnings.append("client context had no clock stamp; "
                        "submit span omitted")

    # Ready markers: when each attempt *became* dispatchable.
    ready_pt = submit_pt
    for k, b in enumerate(bounds):
        start_pt = b["start_pt"]
        if start_pt is None:
            warnings.append(f"attempt {b['attempt']} has no dispatch stamp")
            continue
        pid = PID_ATTEMPT_BASE + k

        # queue.wait: ready -> dispatched (on the daemon track).
        if start_pt > ready_pt:
            segments.append(TraceSegment(
                name="queue.wait",
                start=ready_pt, end=start_pt,
                pid=PID_SERVICE,
                span_id=new_span_id(),
                parent_span_id=jj.root_span_id,
                attrs={"attempt": b["attempt"]},
                synthetic=True,
            ))

        attempt_end = b["end_pt"] if b["end_pt"] is not None else end_pt
        attempt_end = max(attempt_end, start_pt)
        records = attempt_spans.get(b["attempt"], [])

        # The worker's own attempt root, if the attempt survived to
        # close it; otherwise synthesize the container from the
        # journal's boundaries (the SIGKILL case).
        root_rec = next(
            (r for r in records if r.get("span") == "job/attempt"
             and r.get("parent_span_id") == jj.root_span_id),
            None,
        )
        if root_rec is not None:
            attempt_span_id = root_rec["span_id"]
            attempt_seg = TraceSegment(
                name="job/attempt",
                start=root_rec["start_s"],
                end=root_rec["start_s"] + root_rec["dur_s"],
                pid=pid,
                span_id=attempt_span_id,
                parent_span_id=jj.root_span_id,
                attrs=dict(root_rec.get("attrs") or {}),
            )
        else:
            attempt_span_id = new_span_id()
            attempt_seg = TraceSegment(
                name="job/attempt",
                start=start_pt, end=attempt_end,
                pid=pid,
                span_id=attempt_span_id,
                parent_span_id=jj.root_span_id,
                attrs={"attempt": b["attempt"], "job": jj.job_id,
                       "interrupted": True},
                synthetic=True,
            )
            if records:
                warnings.append(
                    f"attempt {b['attempt']} root span missing (worker "
                    "died); container synthesized from the journal")
        segments.append(attempt_seg)

        # Child spans of the attempt.  Spans whose parent never closed
        # (killed mid-nesting) re-parent onto the attempt container.
        known_ids = {r.get("span_id") for r in records
                     if r.get("span_id")}
        first_child_start: float | None = None
        for r in records:
            if r is root_rec:
                continue
            if r.get("span_id") is None:
                continue
            parent = r.get("parent_span_id")
            if parent not in known_ids or parent == r.get("span_id"):
                parent = attempt_span_id
            if parent == jj.root_span_id:
                parent = attempt_span_id
            start = r["start_s"]
            if first_child_start is None or start < first_child_start:
                first_child_start = start
            segments.append(TraceSegment(
                name=r["span"],
                start=start, end=start + r["dur_s"],
                pid=pid,
                tid=int(r.get("thread") or 0),
                span_id=r["span_id"],
                parent_span_id=parent,
                attrs=dict(r.get("attrs") or {}),
            ))

        # checkpoint.resume: dispatch -> the resumed attempt's first
        # recorded span (its restart-load window).
        if b["resumed"]:
            resume_end = (first_child_start
                          if first_child_start is not None
                          and first_child_start > start_pt
                          else min(attempt_end, start_pt + 1e-4))
            segments.append(TraceSegment(
                name="checkpoint.resume",
                start=start_pt, end=resume_end,
                pid=pid,
                span_id=new_span_id(),
                parent_span_id=attempt_span_id,
                attrs={"attempt": b["attempt"]},
                synthetic=True,
            ))

        # retry.backoff: the deterministic gate after a failed attempt.
        if b["outcome"] == "retrying":
            retry_rec = next(
                (r for r in jj.transitions
                 if r.get("state") == "retrying"
                 and r.get("pt") == b["end_pt"]),
                None,
            )
            gate_pt = attempt_end
            if retry_rec is not None and retry_rec.get("pt") is not None:
                not_before = retry_rec.get("not_before")
                t_wall = retry_rec.get("t")
                if not_before is not None and t_wall is not None:
                    gate_pt = retry_rec["pt"] + max(
                        0.0, float(not_before) - float(t_wall))
            if gate_pt > attempt_end:
                segments.append(TraceSegment(
                    name="retry.backoff",
                    start=attempt_end, end=gate_pt,
                    pid=PID_SERVICE,
                    span_id=new_span_id(),
                    parent_span_id=jj.root_span_id,
                    attrs={"after_attempt": b["attempt"]},
                    synthetic=True,
                ))
            ready_pt = gate_pt
        else:
            ready_pt = attempt_end

    critical = _critical_path(jj, segments)
    trace = AssembledTrace(
        job_id=jj.job_id,
        trace_id=jj.trace_id,
        segments=segments,
        critical_path=critical,
        warnings=warnings,
    )
    return trace


def _critical_path(jj: JobJournal,
                   segments: list[TraceSegment]) -> list[TraceSegment]:
    """The chain of segments accounting for end-to-end latency.

    Client submit → (queue.wait → attempt → [retry.backoff])* in
    timeline order; within each attempt, descend the longest-duration
    child chain so the path names the dominant SCF phase, not just
    "the attempt took a while".
    """
    path: list[TraceSegment] = []
    for seg in segments:
        if seg.name == "client/submit":
            path.append(seg)
            break
    by_parent: dict[str, list[TraceSegment]] = {}
    for seg in segments:
        if seg.parent_span_id is not None:
            by_parent.setdefault(seg.parent_span_id, []).append(seg)

    timeline = sorted(
        (s for s in segments
         if s.name in ("queue.wait", "retry.backoff", "job/attempt")),
        key=lambda s: s.start,
    )
    for seg in timeline:
        path.append(seg)
        if seg.name != "job/attempt":
            continue
        cur = seg
        while True:
            children = by_parent.get(cur.span_id)
            if not children:
                break
            dominant = max(children, key=lambda c: c.duration)
            if dominant.duration <= 0:
                break
            path.append(dominant)
            cur = dominant
    return path
