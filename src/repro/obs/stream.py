"""Incremental (line-buffered) NDJSON streaming of spans and events.

The batch exporters in :mod:`repro.obs.export` serialize a finished
tracer; a worker that dies mid-build via ``os._exit`` (the fault
injector's kill path) never reaches that code, so everything still
buffered in its tracer/event log used to vanish from the merged trace.

:class:`ObsStreamer` closes that gap: it hooks the tracer's
``on_close`` and the event log's ``on_emit`` callbacks and appends one
JSON line per completed span / emitted event to line-buffered append
files the moment the record exists.  A killed worker's obs output is
then durable up to its very last completed span — no final flush
required — and the on-disk format is byte-compatible with
``spans.ndjson`` / ``events.ndjson``, so
:func:`~repro.obs.analysis.timeline.spans_from_ndjson` and
:func:`~repro.obs.events.events_from_ndjson` read streamed files
unchanged.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, TextIO

from repro.obs.events import Event, EventLog, event_record
from repro.obs.export import span_line
from repro.obs.tracer import Span, Tracer


class NDJSONStreamWriter:
    """Append JSON records to a file, one durable line at a time.

    The file is opened in append mode with line buffering, so every
    :meth:`write` survives an ``os._exit`` (the OS flushes on the
    newline) and concurrent writers appending whole lines to *separate*
    files can be merged afterwards without tearing.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO = open(self.path, "a", buffering=1)
        self.written = 0

    def write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record) + "\n")
        self.written += 1

    def write_line(self, line: str) -> None:
        """Append one pre-serialized JSON line (the span hot path)."""
        self._fh.write(line + "\n")
        self.written += 1

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - teardown best effort
            pass

    def __enter__(self) -> "NDJSONStreamWriter":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


class ObsStreamer:
    """Stream a tracer's spans and an event log's events as they happen.

    Parameters
    ----------
    directory:
        Destination directory; ``spans.ndjson`` / ``events.ndjson`` are
        appended there (the per-worker obs layout).
    tracer, log:
        The instruments to hook.  Their existing callbacks (if any) are
        chained, not replaced.
    t0:
        Shared time base subtracted from every timestamp — the process
        backend passes one ``perf_counter`` reading to every worker so
        all streams land on one merged timeline.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        tracer: Tracer | None = None,
        log: EventLog | None = None,
        t0: float = 0.0,
    ) -> None:
        self.directory = Path(directory)
        self.t0 = t0
        self.tracer = tracer
        self.log = log
        self._spans: NDJSONStreamWriter | None = None
        self._events: NDJSONStreamWriter | None = None
        self._prev_on_close = None
        self._prev_on_emit = None
        if tracer is not None:
            self._spans = NDJSONStreamWriter(self.directory / "spans.ndjson")
            self._prev_on_close = tracer.on_close
            tracer.on_close = self._span_closed
        if log is not None:
            self._events = NDJSONStreamWriter(self.directory / "events.ndjson")
            self._prev_on_emit = log.on_emit
            log.on_emit = self._event_emitted

    # -- hooks ---------------------------------------------------------------

    def _span_closed(self, span: Span) -> None:
        if self._spans is not None:
            self._spans.write_line(span_line(span, self.t0))
        if self._prev_on_close is not None:
            self._prev_on_close(span)

    def _event_emitted(self, event: Event) -> None:
        if self._events is not None:
            self._events.write(event_record(event, self.t0))
        if self._prev_on_emit is not None:
            self._prev_on_emit(event)

    # -- stats / teardown ----------------------------------------------------

    @property
    def spans_written(self) -> int:
        return self._spans.written if self._spans is not None else 0

    @property
    def events_written(self) -> int:
        return self._events.written if self._events is not None else 0

    def close(self) -> None:
        """Unhook the instruments and close the files."""
        if self.tracer is not None:
            self.tracer.on_close = self._prev_on_close
            self.tracer = None
        if self.log is not None:
            self.log.on_emit = self._prev_on_emit
            self.log = None
        for writer in (self._spans, self._events):
            if writer is not None:
                writer.close()

    def __enter__(self) -> "ObsStreamer":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
