"""Structured run-event log: NDJSON-able discrete events with rank context.

Spans (:mod:`repro.obs.tracer`) answer *where the time went*; the event
log answers *what happened* — discrete, timestamped occurrences with a
rank context that the timeline analyzer overlays on the span Gantt:

* ``scf.cycle`` / ``scf.converged`` / ``scf.restart`` — SCF progress;
* ``scf.checkpoint`` — checkpoint writes (cycle, path);
* ``dlb.reset`` / ``dlb.rank_done`` / ``dlb.rank_failed`` — the
  dynamic-load-balance counter's lifecycle;
* ``fault.kill`` / ``fault.delay`` / ``fault.corrupt`` /
  ``fault.corrupt_rejected`` — injected faults and their recovery
  (:mod:`repro.resilience`), which is what makes a faulted run's
  timeline show *when* a rank died and *who* picked up its work;
* ``scf.recovery`` — convergence-guard stage escalations.

Like the tracer and the metrics registry, the log is installed globally
(:func:`use_event_log`) and defaults to *off*: instrumented code pays
one ``get_event_log()`` call and an ``is None`` test per event.

Timestamps come from the same ``time.perf_counter`` clock the tracer
uses, so events and spans share a time base and the exporters can place
events on the span timeline exactly.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class Event:
    """One discrete run event.

    Attributes
    ----------
    kind:
        Dotted event name (``"fault.kill"``, ``"scf.cycle"``, ...).
    t:
        Clock reading at emission (absolute; the exporters normalize).
    rank:
        Simulated MPI rank context, or ``None`` for run-global events.
    fields:
        Arbitrary JSON-able payload (cycle, factor, payload, ...).
    """

    kind: str
    t: float
    rank: int | None = None
    fields: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only recorder of :class:`Event` records.

    Parameters
    ----------
    clock:
        Monotonic second counter; :func:`time.perf_counter` by default
        (the tracer's clock, so spans and events line up).
    on_emit:
        Optional callback invoked with each event as it is recorded —
        the incremental-NDJSON hook
        (:class:`~repro.obs.stream.ObsStreamer`), mirroring
        ``Tracer.on_close``.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        on_emit: Callable[[Event], None] | None = None,
    ) -> None:
        self.clock = clock
        self.on_emit = on_emit
        self.events: list[Event] = []

    def emit(self, kind: str, *, rank: int | None = None, **fields: Any) -> Event:
        """Record an event now; returns the stored record."""
        ev = Event(kind=kind, t=self.clock(), rank=rank, fields=fields)
        self.events.append(ev)
        if self.on_emit is not None:
            self.on_emit(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def kinds(self) -> dict[str, int]:
        """Event count per kind (diagnostics/tests)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def event_record(ev: Event, t0: float = 0.0) -> dict[str, Any]:
    """The JSON-ready dict for one event (the NDJSON line payload)."""
    rec: dict[str, Any] = {
        "event": ev.kind,
        "t_s": ev.t - t0,
        "rank": ev.rank,
    }
    rec.update({k: _json_safe(v) for k, v in ev.fields.items()})
    return rec


def events_ndjson(log: EventLog, *, t0: float | None = None) -> str:
    """One JSON line per event, timestamps relative to ``t0``.

    ``t0`` defaults to the first event's clock reading; the profile CLI
    passes the traced run's earliest span start so events land on the
    same relative axis as ``spans_ndjson``.
    """
    if t0 is None:
        t0 = log.events[0].t if log.events else 0.0
    return "\n".join(json.dumps(event_record(ev, t0)) for ev in log.events)


def events_from_ndjson(text: str) -> list[Event]:
    """Parse :func:`events_ndjson` output back into :class:`Event` records.

    Parsed timestamps are the file's (already relative) ``t_s`` values.
    """
    events: list[Event] = []
    for line in filter(None, (ln.strip() for ln in text.splitlines())):
        rec = json.loads(line)
        events.append(
            Event(
                kind=rec.pop("event"),
                t=float(rec.pop("t_s", 0.0)),
                rank=rec.pop("rank", None),
                fields=rec,
            )
        )
    return events


_current_log: EventLog | None = None


def get_event_log() -> EventLog | None:
    """The globally installed event log, or ``None`` (logging off)."""
    return _current_log


def set_event_log(log: EventLog | None) -> None:
    """Install a global event log; ``None`` disables event capture."""
    global _current_log
    _current_log = log


@contextmanager
def use_event_log(log: EventLog) -> Iterator[EventLog]:
    """Install ``log`` for the duration of a ``with`` block."""
    previous = _current_log
    set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)
