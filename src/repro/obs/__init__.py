"""repro.obs — observability for the simulated MPI/OpenMP SCF.

The measurement layer the paper's evaluation is built on: hierarchical
wall-clock tracing (:mod:`repro.obs.tracer`), a named-metric registry
(:mod:`repro.obs.metrics`), and exporters for Chrome ``trace_event``
timelines, GAMESS-style text profiles, and NDJSON
(:mod:`repro.obs.export`).

Instrumented code reads the process-global tracer/registry through
:func:`get_tracer` / :func:`get_metrics`; both default to disabled and
cost almost nothing until :func:`use_tracer` / :func:`use_metrics`
(or the ``repro profile`` CLI) installs live ones.

On top of the post-hoc layer sit the *live* pieces: the push-based
telemetry bus (:mod:`repro.obs.telemetry`, installed via
:func:`use_telemetry`), incremental NDJSON streaming
(:mod:`repro.obs.stream`), the ``repro monitor`` dashboard state
(:mod:`repro.obs.monitor`), the persistent run registry
(:mod:`repro.obs.registry`), and a Prometheus text exporter
(:func:`write_prometheus`).
"""

from repro.obs.events import (
    Event,
    EventLog,
    events_from_ndjson,
    events_ndjson,
    get_event_log,
    set_event_log,
    use_event_log,
)
from repro.obs.export import (
    chrome_trace_events,
    event_instants,
    metrics_ndjson,
    profile_report,
    prometheus_text,
    spans_ndjson,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_ndjson,
    write_prometheus,
    write_spans_ndjson,
    write_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.registry import RunHandle, RunRegistry, runs_root
from repro.obs.slo import (
    DEFAULT_SLO_TARGETS,
    SLOEngine,
    SLOTarget,
    engine_from_telemetry,
    job_class,
    render_slo_report,
)
from repro.obs.stream import ObsStreamer
from repro.obs.trace_assembly import (
    AssembledTrace,
    TraceAssemblyError,
    assemble_job_trace,
    load_job_journal,
)
from repro.obs.telemetry import (
    NDJSONTelemetrySink,
    TelemetryChannel,
    TelemetryClient,
    TelemetryRecord,
    default_socket_path,
    follow_telemetry,
    get_telemetry,
    records_from_ndjson,
    set_telemetry,
    use_telemetry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
    format_traceparent,
    get_tracer,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "AssembledTrace",
    "Counter",
    "DEFAULT_SLO_TARGETS",
    "SLOEngine",
    "SLOTarget",
    "TraceAssemblyError",
    "TraceContext",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NDJSONTelemetrySink",
    "ObsStreamer",
    "RunHandle",
    "RunRegistry",
    "Series",
    "Span",
    "TelemetryChannel",
    "TelemetryClient",
    "TelemetryRecord",
    "Tracer",
    "assemble_job_trace",
    "chrome_trace_events",
    "default_socket_path",
    "engine_from_telemetry",
    "event_instants",
    "events_from_ndjson",
    "events_ndjson",
    "follow_telemetry",
    "format_traceparent",
    "get_event_log",
    "get_metrics",
    "get_telemetry",
    "get_tracer",
    "job_class",
    "load_job_journal",
    "metrics_ndjson",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "profile_report",
    "prometheus_text",
    "records_from_ndjson",
    "render_slo_report",
    "runs_root",
    "set_event_log",
    "set_metrics",
    "set_telemetry",
    "set_tracer",
    "spans_ndjson",
    "to_chrome_trace",
    "use_event_log",
    "use_metrics",
    "use_telemetry",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics_ndjson",
    "write_prometheus",
    "write_spans_ndjson",
    "write_text",
]
