"""repro.obs — observability for the simulated MPI/OpenMP SCF.

The measurement layer the paper's evaluation is built on: hierarchical
wall-clock tracing (:mod:`repro.obs.tracer`), a named-metric registry
(:mod:`repro.obs.metrics`), and exporters for Chrome ``trace_event``
timelines, GAMESS-style text profiles, and NDJSON
(:mod:`repro.obs.export`).

Instrumented code reads the process-global tracer/registry through
:func:`get_tracer` / :func:`get_metrics`; both default to disabled and
cost almost nothing until :func:`use_tracer` / :func:`use_metrics`
(or the ``repro profile`` CLI) installs live ones.
"""

from repro.obs.events import (
    Event,
    EventLog,
    events_from_ndjson,
    events_ndjson,
    get_event_log,
    set_event_log,
    use_event_log,
)
from repro.obs.export import (
    chrome_trace_events,
    event_instants,
    metrics_ndjson,
    profile_report,
    spans_ndjson,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_ndjson,
    write_spans_ndjson,
    write_text,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "Counter",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "event_instants",
    "events_from_ndjson",
    "events_ndjson",
    "get_event_log",
    "get_metrics",
    "get_tracer",
    "metrics_ndjson",
    "profile_report",
    "set_event_log",
    "set_metrics",
    "set_tracer",
    "spans_ndjson",
    "to_chrome_trace",
    "use_event_log",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics_ndjson",
    "write_spans_ndjson",
    "write_text",
]
