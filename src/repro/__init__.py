"""repro — reproduction of Mironov et al. (SC'17).

"An efficient MPI/OpenMP parallelization of the Hartree-Fock method for
the second generation of Intel Xeon Phi processor."

The package layers:

* :mod:`repro.chem` / :mod:`repro.integrals` / :mod:`repro.scf` — a
  from-scratch restricted & unrestricted Hartree-Fock engine plus MP2
  and properties (the GAMESS substrate).
* :mod:`repro.parallel` — a deterministic simulated MPI/OpenMP/DDI
  runtime with write-race detection.
* :mod:`repro.core` — the paper's contribution: the MPI-only,
  private-Fock and shared-Fock parallel Fock-build algorithms (plus UHF
  and distributed-data variants) and the memory-footprint model.
* :mod:`repro.machine` / :mod:`repro.perfsim` — Intel Xeon Phi (KNL)
  node/cluster models and the calibrated performance simulator that
  regenerates the paper's figures and tables.
* :mod:`repro.obs` — observability: hierarchical tracing, a named
  metrics registry, and Chrome-trace/profile/NDJSON exporters.
* :mod:`repro.analysis` — table/figure reproduction helpers.
* :mod:`repro.cli` — the ``python -m repro`` command-line interface.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
