"""Simulated MPI world and communicator.

Execution model
---------------
Ranks run *sequentially* inside one process: ``SimWorld.execute(fn)``
calls ``fn(comm)`` once per rank with that rank's
:class:`SimComm`.  This is sufficient — and exactly faithful — for the
paper's algorithms because their only inter-rank interactions are

* the dynamic-load-balancer counter, which is modelled as a shared
  pre-partition (any valid grant sequence yields the same reduced
  result; the timing consequences are modelled separately in
  :mod:`repro.perfsim`), and
* terminal collective reductions (``gsumf``), whose data semantics are
  reproduced here exactly.

Every collective is metered (call counts, bytes moved) so the
performance model can charge communication costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass
class CollectiveStats:
    """Bytes/calls accounting for the simulated fabric."""

    reduce_calls: int = 0
    reduce_bytes: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    barrier_calls: int = 0

    def merge(self, other: "CollectiveStats") -> None:
        """Accumulate another rank's counters into this one."""
        self.reduce_calls += other.reduce_calls
        self.reduce_bytes += other.reduce_bytes
        self.bcast_calls += other.bcast_calls
        self.bcast_bytes += other.bcast_bytes
        self.barrier_calls += other.barrier_calls


class SimComm:
    """Per-rank view of the simulated communicator (mpi4py-flavoured API)."""

    def __init__(self, world: "SimWorld", rank: int) -> None:
        self._world = world
        self._rank = rank
        self.stats = CollectiveStats()

    def Get_rank(self) -> int:
        """This rank's id."""
        return self._rank

    def Get_size(self) -> int:
        """World size."""
        return self._world.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def gsumf(self, buf: np.ndarray) -> None:
        """Global in-place sum of ``buf`` across ranks (DDI ``ddi_gsumf``).

        The sum is materialized after every rank has contributed; the
        calling rank's array object is updated in place at that point,
        matching allreduce semantics at the algorithm boundary.

        Contributions are validated before joining the reduction: a
        NaN/Inf buffer raises
        :class:`~repro.resilience.errors.CorruptContributionError`
        naming the rank, instead of silently poisoning every rank's
        copy of the sum.
        """
        if not np.all(np.isfinite(buf)):
            from repro.resilience.errors import CorruptContributionError

            raise CorruptContributionError(
                f"gsumf contribution from rank {self._rank} contains "
                f"{int(np.sum(~np.isfinite(buf)))} non-finite value(s); "
                "rejecting before the merge"
            )
        self.stats.reduce_calls += 1
        self.stats.reduce_bytes += buf.nbytes
        self._world._register_reduction(self._rank, buf)

    def allreduce_scalar(self, value: float) -> float:
        """Immediate scalar allreduce (sequential world: sums on the fly)."""
        self.stats.reduce_calls += 1
        self.stats.reduce_bytes += 8
        return self._world._scalar_reduce(self._rank, value)

    def bcast(self, arr: np.ndarray, root: int = 0) -> np.ndarray:
        """Broadcast from ``root`` (data already shared in-process; metered)."""
        self.stats.bcast_calls += 1
        self.stats.bcast_bytes += arr.nbytes
        return arr

    def barrier(self) -> None:
        """Synchronization point; a no-op in data terms, metered for cost."""
        self.stats.barrier_calls += 1


class SimWorld:
    """A simulated MPI world of ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.comms = tuple(SimComm(self, r) for r in range(size))
        self._pending: list[list[np.ndarray]] = []
        self._scalar_slots: dict[int, float] = {}
        self.stats = CollectiveStats()

    # -- collective bookkeeping -------------------------------------------

    def _register_reduction(self, rank: int, buf: np.ndarray) -> None:
        # Ranks execute in order; rank r's n-th gsumf call joins the
        # n-th reduction slot.
        count_for_rank = sum(
            1 for slot in self._pending if len(slot) > rank
        )
        if count_for_rank == len(self._pending):
            self._pending.append([])
        self._pending[count_for_rank].append(buf)

    def _scalar_reduce(self, rank: int, value: float) -> float:
        self._scalar_slots[rank] = self._scalar_slots.get(rank, 0.0) + value
        return value  # finalized in execute()

    def _finalize_collectives(self) -> None:
        for slot in self._pending:
            if len(slot) != self.size:
                raise RuntimeError(
                    f"collective mismatch: {len(slot)} of {self.size} ranks "
                    "reached a gsumf call"
                )
            total = np.zeros_like(slot[0])
            for buf in slot:
                total += buf
            for buf in slot:
                buf[...] = total
        self._pending.clear()

    # -- execution -----------------------------------------------------------

    def execute(self, rank_fn: Callable[[SimComm], object]) -> list[object]:
        """Run an SPMD function on every rank and finalize collectives.

        Parameters
        ----------
        rank_fn:
            Called once per rank as ``rank_fn(comm)``.  Arrays passed to
            ``comm.gsumf`` hold the reduced global values once
            ``execute`` returns.

        Returns
        -------
        list
            Per-rank return values, rank order.
        """
        results = [rank_fn(comm) for comm in self.comms]
        self._finalize_collectives()
        for comm in self.comms:
            self.stats.merge(comm.stats)
        return results
