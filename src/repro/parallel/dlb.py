"""DDI-style dynamic load balancer (the paper's ``ddi_dlbnext``).

In GAMESS, ``ddi_dlbnext`` increments a globally shared counter and
returns the next task index; which rank receives which index depends on
arrival timing.  Any grant sequence partitions the index space, and the
reduced Fock matrix is independent of the partition — only the *timing*
depends on it (modelled in :mod:`repro.perfsim`).

The simulated balancer therefore pre-computes a grant partition under a
chosen policy and serves it through the same one-index-at-a-time
``next(rank)`` interface the algorithms use:

``round_robin``
    Index ``t`` goes to rank ``t % nranks`` — what a real DLB converges
    to when task costs are uniform.
``block``
    Contiguous slabs (a static schedule, for ablation).
``cost_greedy``
    Longest-processing-time greedy assignment using per-task cost
    estimates — the partition an ideal dynamic balancer approaches when
    costs vary; used with real Schwarz work estimates.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics

_POLICIES = ("round_robin", "block", "cost_greedy")


class DynamicLoadBalancer:
    """Shared global task counter with a deterministic grant policy.

    Parameters
    ----------
    ntasks:
        Size of the global index space (0-based indices are served).
    nranks:
        Number of MPI ranks drawing from the counter.
    policy:
        One of ``round_robin`` (default), ``block``, ``cost_greedy``.
    costs:
        Per-task cost estimates; required for ``cost_greedy``.
    """

    def __init__(
        self,
        ntasks: int,
        nranks: int,
        *,
        policy: str = "round_robin",
        costs: np.ndarray | None = None,
    ) -> None:
        if ntasks < 0:
            raise ValueError("ntasks must be non-negative")
        if nranks < 1:
            raise ValueError("nranks must be positive")
        if policy not in _POLICIES:
            raise ValueError(f"unknown DLB policy {policy!r}; choose from {_POLICIES}")
        self.ntasks = ntasks
        self.nranks = nranks
        self.policy = policy
        self._queues: list[list[int]] = [[] for _ in range(nranks)]
        self._cursor = [0] * nranks
        self._dead: set[int] = set()
        self._done_logged: set[int] = set()
        log = get_event_log()
        if log is not None:
            log.emit("dlb.reset", ntasks=ntasks, nranks=nranks, policy=policy)

        if policy == "round_robin":
            for t in range(ntasks):
                self._queues[t % nranks].append(t)
        elif policy == "block":
            bounds = np.linspace(0, ntasks, nranks + 1).astype(int)
            for r in range(nranks):
                self._queues[r] = list(range(bounds[r], bounds[r + 1]))
        else:  # cost_greedy
            if costs is None:
                raise ValueError("cost_greedy policy requires per-task costs")
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
            loads = np.zeros(nranks)
            order = np.argsort(-costs, kind="stable")
            for t in order:
                r = int(np.argmin(loads))
                self._queues[r].append(int(t))
                loads[r] += costs[t]
            for q in self._queues:
                q.sort()  # each rank walks its tasks in index order

    def next(self, rank: int) -> int | None:
        """Next task index for ``rank``, or ``None`` when exhausted.

        This is the simulated ``ddi_dlbnext``: each call advances the
        rank's cursor through its granted share of the global counter.
        """
        if rank in self._dead:
            return None
        cur = self._cursor[rank]
        queue = self._queues[rank]
        if cur >= len(queue):
            if rank not in self._done_logged:
                self._done_logged.add(rank)
                log = get_event_log()
                if log is not None:
                    log.emit("dlb.rank_done", rank=rank, grants=cur)
            return None
        self._cursor[rank] = cur + 1
        registry = get_metrics()
        if registry is not None:
            registry.counter("dlb.grants", rank=rank).inc()
        return queue[cur]

    def iter_rank(self, rank: int) -> Iterator[int]:
        """Iterate all remaining task indices granted to ``rank``."""
        while (t := self.next(rank)) is not None:
            yield t

    def assignment(self) -> list[list[int]]:
        """The full grant partition (per-rank task index lists)."""
        return [list(q) for q in self._queues]

    def reset(self) -> None:
        """Rewind all rank cursors (grants are unchanged; dead ranks stay dead)."""
        self._cursor = [0] * self.nranks
        self._done_logged.clear()

    # -- fault hooks --------------------------------------------------------

    def alive(self, rank: int) -> bool:
        """Whether ``rank`` still draws from the counter."""
        return rank not in self._dead

    def outstanding(self, rank: int) -> list[int]:
        """Granted-but-undrawn task indices of ``rank``, grant order."""
        return list(self._queues[rank][self._cursor[rank]:])

    def fail_rank(self, rank: int, *, requeue: bool = True) -> list[int]:
        """Declare ``rank`` dead and withdraw its outstanding grants.

        Returns the withdrawn task indices in their original grant
        order.  With ``requeue=True`` (the DDI runtime's recovery path)
        they are appended round-robin to the surviving ranks' queues, to
        be claimed by subsequent ``next()`` draws; with ``requeue=False``
        the caller owns redistribution (the Fock builders replay them in
        grant order so recovered results stay bitwise identical).
        """
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if rank in self._dead:
            return []
        tasks = self.outstanding(rank)
        self._cursor[rank] = len(self._queues[rank])
        self._dead.add(rank)
        registry = get_metrics()
        if registry is not None:
            registry.counter("dlb.rank_failures").inc()
            registry.counter("dlb.tasks_withdrawn").inc(len(tasks))
        log = get_event_log()
        if log is not None:
            log.emit(
                "dlb.rank_failed", rank=rank,
                withdrawn=len(tasks), requeued=requeue,
            )
        if requeue and tasks:
            survivors = [r for r in range(self.nranks) if r not in self._dead]
            if not survivors:
                raise RuntimeError(
                    f"rank {rank} failed with {len(tasks)} outstanding "
                    "task(s) and no survivors to re-queue them to"
                )
            for idx, t in enumerate(tasks):
                claimant = survivors[idx % len(survivors)]
                self._queues[claimant].append(t)
                if registry is not None:
                    registry.counter("dlb.tasks_requeued", rank=claimant).inc()
        return tasks
