"""DDI-style dynamic load balancer (the paper's ``ddi_dlbnext``).

In GAMESS, ``ddi_dlbnext`` increments a globally shared counter and
returns the next task index; which rank receives which index depends on
arrival timing.  Any grant sequence partitions the index space, and the
reduced Fock matrix is independent of the partition — only the *timing*
depends on it (modelled in :mod:`repro.perfsim`).

The simulated balancer therefore pre-computes a grant partition under a
chosen policy and serves it through the same one-index-at-a-time
``next(rank)`` interface the algorithms use (the grant machinery lives
in :class:`repro.parallel.scheduler.Scheduler`, shared with the static,
guided, and work-stealing strategies):

``round_robin``
    Index ``t`` goes to rank ``t % nranks`` — what a real DLB converges
    to when task costs are uniform.
``block``
    Contiguous slabs (a static schedule, for ablation).
``cost_greedy``
    Longest-processing-time greedy assignment using per-task cost
    estimates — the partition an ideal dynamic balancer approaches when
    costs vary; used with real Schwarz work estimates.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.scheduler import Scheduler

_POLICIES = ("round_robin", "block", "cost_greedy")


class DynamicLoadBalancer(Scheduler):
    """Shared global task counter with a deterministic grant policy.

    Parameters
    ----------
    ntasks:
        Size of the global index space (0-based indices are served).
    nranks:
        Number of MPI ranks drawing from the counter.
    policy:
        One of ``round_robin`` (default), ``block``, ``cost_greedy``.
    costs:
        Per-task cost estimates; required for ``cost_greedy``.
    """

    schedule_name = "dlb"

    def __init__(
        self,
        ntasks: int,
        nranks: int,
        *,
        policy: str = "round_robin",
        costs: np.ndarray | None = None,
    ) -> None:
        super().__init__(ntasks, nranks)
        if policy not in _POLICIES:
            raise ValueError(f"unknown DLB policy {policy!r}; choose from {_POLICIES}")
        self.policy = policy
        self._emit_reset(policy=policy)

        if policy == "round_robin":
            for t in range(ntasks):
                self._queues[t % nranks].append(t)
        elif policy == "block":
            bounds = np.linspace(0, ntasks, nranks + 1).astype(int)
            for r in range(nranks):
                self._queues[r] = list(range(bounds[r], bounds[r + 1]))
        else:  # cost_greedy
            if costs is None:
                raise ValueError("cost_greedy policy requires per-task costs")
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
            loads = np.zeros(nranks)
            order = np.argsort(-costs, kind="stable")
            for t in order:
                r = int(np.argmin(loads))
                self._queues[r].append(int(t))
                loads[r] += costs[t]
            for q in self._queues:
                q.sort()  # each rank walks its tasks in index order

    def counter_traffic(self) -> int:
        # Every grant is one RPC against the shared global counter.
        return sum(self._cursor)
