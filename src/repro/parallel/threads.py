"""OpenMP-style thread team: scheduling and per-thread private storage.

Threads in the functional layer execute their iteration shares
sequentially but with the exact data structures and synchronization
phases of the paper's OpenMP regions; the performance consequences of
concurrency are modelled in :mod:`repro.perfsim`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

_SCHEDULES = ("static", "dynamic")


def split_chunks(n: int, chunk: int) -> list[range]:
    """Split ``range(n)`` into consecutive chunks of size ``chunk``."""
    if chunk < 1:
        raise ValueError("chunk size must be >= 1")
    return [range(s, min(s + chunk, n)) for s in range(0, n, chunk)]


class ThreadTeam:
    """A fixed-size team of simulated OpenMP threads.

    Parameters
    ----------
    nthreads:
        Team size (``omp_get_max_threads()``).
    """

    def __init__(self, nthreads: int) -> None:
        if nthreads < 1:
            raise ValueError("need at least one thread")
        self.nthreads = nthreads

    def partition(
        self,
        ntasks: int,
        *,
        schedule: str = "dynamic",
        chunk: int = 1,
        costs: np.ndarray | None = None,
    ) -> list[list[int]]:
        """Assign loop iterations ``0..ntasks-1`` to threads.

        ``static``
            Chunks dealt round-robin by chunk index — OpenMP
            ``schedule(static, chunk)``.
        ``dynamic``
            Without ``costs``: identical grant order to static-cyclic
            (what a dynamic schedule produces under uniform costs).
            With ``costs``: greedy earliest-finisher simulation — each
            chunk goes to the thread with the least accumulated cost,
            which is what OpenMP ``schedule(dynamic, chunk)`` converges
            to and what the paper relies on for load balance.

        Returns
        -------
        list of per-thread iteration index lists (each in ascending order).
        """
        if schedule not in _SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; choose from {_SCHEDULES}"
            )
        chunks = split_chunks(ntasks, chunk)
        shares: list[list[int]] = [[] for _ in range(self.nthreads)]
        if schedule == "static" or costs is None:
            for c_idx, rng in enumerate(chunks):
                shares[c_idx % self.nthreads].extend(rng)
        else:
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
            loads = np.zeros(self.nthreads)
            # Chunks are handed out in loop order to whichever thread is
            # free first (the least-loaded one at grant time).
            for rng in chunks:
                t = int(np.argmin(loads))
                shares[t].extend(rng)
                loads[t] += float(costs[list(rng)].sum())
        return shares

    def collapse2(self, n_outer: int, n_inner: Callable[[int], int] | int) -> list[tuple[int, int]]:
        """Flatten a 2-level loop nest into one iteration list.

        Models OpenMP ``collapse(2)``: the combined iteration space is
        the concatenation of ``(outer, inner)`` index pairs.  ``n_inner``
        may be a constant or a function of the outer index (triangular
        nests).
        """
        out: list[tuple[int, int]] = []
        for a in range(n_outer):
            m = n_inner(a) if callable(n_inner) else n_inner
            out.extend((a, b) for b in range(m))
        return out

    def private_buffers(self, shape: tuple[int, ...]) -> list[np.ndarray]:
        """Allocate one zeroed private array per thread."""
        return [np.zeros(shape) for _ in range(self.nthreads)]
