"""The deterministic single-process backend (the reference)."""

from __future__ import annotations

from typing import Any

from repro.parallel.backend.base import ExecutionBackend


class SimBackend(ExecutionBackend):
    """Run rank programs on the cooperative in-process runtime.

    The sim builders already *are* this backend — ranks execute
    sequentially through :class:`~repro.parallel.comm.SimWorld` with a
    pre-partitioned DLB and slot-ordered reductions, so every run is
    bitwise reproducible.  Wrapping is therefore the identity; the class
    exists so drivers can treat both execution modes uniformly.
    """

    name = "sim"

    def wrap_builder(self, builder: Any) -> Any:
        return builder
