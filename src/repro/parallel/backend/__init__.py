"""Execution backends: simulated cooperative ranks vs. real OS processes."""

from repro.parallel.backend.base import (
    BACKEND_NAMES,
    ExecutionBackend,
    make_backend,
)
from repro.parallel.backend.counter import SharedTaskCounter, SharedWorkBoard
from repro.parallel.backend.sim import SimBackend

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SharedTaskCounter",
    "SharedWorkBoard",
    "SimBackend",
    "make_backend",
]
