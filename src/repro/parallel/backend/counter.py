"""The real shared ``ddi_dlbnext`` counter of the process backend.

The simulated :class:`~repro.parallel.dlb.DynamicLoadBalancer`
pre-partitions the task space so grant sequences are deterministic.
:class:`SharedTaskCounter` is the *actual* GAMESS/DDI protocol the
balancer models: one globally shared integer, incremented under a lock,
where which rank receives which index depends purely on arrival timing.
Both expose the same ``next(rank) -> int | None`` grant interface, so
the rank programs cannot tell which one feeds them — and because any
grant partition sums to the same Fock matrix (to reduction rounding),
the nondeterministic interleaving only moves *statistics*, never
results.  That invariance is exactly what the sim↔process parity suite
certifies.

Alongside the counter lives an *owner board* in shared memory: claim
``t`` by rank ``r`` records ``owner[t] = r`` inside the same lock.
Because the counter is monotone, each rank's owned indices are in claim
order, which lets the parent replay a dead worker's exact task sequence
(``owned(rank)``) after a crash or an injected kill — the process
backend's equivalent of the sim balancer's ``fail_rank`` withdrawal.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.parallel.shared_array import SharedNDArray


class SharedTaskCounter:
    """Lock-backed global task counter shared across worker processes.

    Parameters
    ----------
    capacity:
        Maximum task-space size over the counter's lifetime (the owner
        board is allocated once at this size).
    ctx:
        ``multiprocessing`` context; the caller's fork context by
        default so the counter is inherited, not pickled.
    """

    def __init__(self, capacity: int, *, ctx: mp.context.BaseContext | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ctx is None:
            ctx = mp.get_context("fork")
        self.capacity = capacity
        # One lock (the Value's) guards both the cursor and the active
        # task count; ntasks only changes in reset(), between builds.
        self._next = ctx.Value("q", 0)
        self._ntasks = ctx.Value("q", 0, lock=False)
        self._owner = SharedNDArray((max(capacity, 1),), np.int64)
        self._owner.fill(-1)

    @property
    def ntasks(self) -> int:
        """Active task-space size of the current build."""
        return int(self._ntasks.value)

    def reset(self, ntasks: int) -> None:
        """Rewind for a new build (parent-side, workers quiescent)."""
        if ntasks > self.capacity:
            raise ValueError(
                f"ntasks={ntasks} exceeds counter capacity {self.capacity}"
            )
        with self._next.get_lock():
            self._next.value = 0
            self._ntasks.value = ntasks
            self._owner.array[:] = -1

    def next(self, rank: int) -> int | None:
        """Claim the next task for ``rank`` (``ddi_dlbnext``), or ``None``.

        The grant protocol of :class:`~repro.parallel.dlb
        .DynamicLoadBalancer`: every index in ``[0, ntasks)`` is granted
        exactly once across all callers; exhaustion returns ``None``.
        """
        with self._next.get_lock():
            idx = self._next.value
            if idx >= self._ntasks.value:
                return None
            self._next.value = idx + 1
            self._owner.array[idx] = rank
            return idx

    def claimed(self) -> int:
        """Number of tasks granted so far in this build."""
        with self._next.get_lock():
            return int(self._next.value)

    def owned(self, rank: int) -> list[int]:
        """Task indices claimed by ``rank``, in claim order.

        The counter is monotone, so ascending index order *is* the
        order the rank claimed them in — replaying this sequence after
        a worker death reproduces the dead rank's floating-point
        accumulation order exactly.
        """
        board = self._owner.array[: self.ntasks]
        return [int(t) for t in np.nonzero(board == rank)[0]]

    def owners(self) -> np.ndarray:
        """Copy of the owner board (claimed prefix; -1 = unclaimed)."""
        return self._owner.array[: self.ntasks].copy()

    def close(self) -> None:
        """Release the owner board's shared-memory block."""
        self._owner.close(unlink=True)
