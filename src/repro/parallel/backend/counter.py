"""The real shared ``ddi_dlbnext`` counter of the process backend.

The simulated :class:`~repro.parallel.dlb.DynamicLoadBalancer`
pre-partitions the task space so grant sequences are deterministic.
:class:`SharedTaskCounter` is the *actual* GAMESS/DDI protocol the
balancer models: one globally shared integer, incremented under a lock,
where which rank receives which index depends purely on arrival timing.
Both expose the same ``next(rank) -> int | None`` grant interface, so
the rank programs cannot tell which one feeds them — and because any
grant partition sums to the same Fock matrix (to reduction rounding),
the nondeterministic interleaving only moves *statistics*, never
results.  That invariance is exactly what the sim↔process parity suite
certifies.

Alongside the counter lives an *owner board* in shared memory: claim
``t`` by rank ``r`` records ``owner[t] = r`` inside the same lock.
Because the counter is monotone, each rank's owned indices are in claim
order, which lets the parent replay a dead worker's exact task sequence
(``owned(rank)``) after a crash or an injected kill — the process
backend's equivalent of the sim balancer's ``fail_rank`` withdrawal.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.parallel.shared_array import SharedNDArray


class SharedTaskCounter:
    """Lock-backed global task counter shared across worker processes.

    Parameters
    ----------
    capacity:
        Maximum task-space size over the counter's lifetime (the owner
        board is allocated once at this size).
    ctx:
        ``multiprocessing`` context; the caller's fork context by
        default so the counter is inherited, not pickled.
    """

    def __init__(self, capacity: int, *, ctx: mp.context.BaseContext | None = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if ctx is None:
            ctx = mp.get_context("fork")
        self.capacity = capacity
        # One lock (the Value's) guards both the cursor and the active
        # task count; ntasks only changes in reset(), between builds.
        self._next = ctx.Value("q", 0)
        self._ntasks = ctx.Value("q", 0, lock=False)
        self._owner = SharedNDArray((max(capacity, 1),), np.int64)
        self._owner.fill(-1)

    @property
    def ntasks(self) -> int:
        """Active task-space size of the current build."""
        return int(self._ntasks.value)

    def reset(self, ntasks: int) -> None:
        """Rewind for a new build (parent-side, workers quiescent)."""
        if ntasks > self.capacity:
            raise ValueError(
                f"ntasks={ntasks} exceeds counter capacity {self.capacity}"
            )
        with self._next.get_lock():
            self._next.value = 0
            self._ntasks.value = ntasks
            self._owner.array[:] = -1

    def next(self, rank: int) -> int | None:
        """Claim the next task for ``rank`` (``ddi_dlbnext``), or ``None``.

        The grant protocol of :class:`~repro.parallel.dlb
        .DynamicLoadBalancer`: every index in ``[0, ntasks)`` is granted
        exactly once across all callers; exhaustion returns ``None``.
        """
        with self._next.get_lock():
            idx = self._next.value
            if idx >= self._ntasks.value:
                return None
            self._next.value = idx + 1
            self._owner.array[idx] = rank
            return idx

    def claimed(self) -> int:
        """Number of tasks granted so far in this build."""
        with self._next.get_lock():
            return int(self._next.value)

    def owned(self, rank: int) -> list[int]:
        """Task indices claimed by ``rank``, in claim order.

        The counter is monotone, so ascending index order *is* the
        order the rank claimed them in — replaying this sequence after
        a worker death reproduces the dead rank's floating-point
        accumulation order exactly.
        """
        board = self._owner.array[: self.ntasks]
        return [int(t) for t in np.nonzero(board == rank)[0]]

    def unclaimed(self) -> list[int]:
        """Task indices never granted to any rank, ascending."""
        return list(range(self.claimed(), self.ntasks))

    def owners(self) -> np.ndarray:
        """Copy of the owner board (claimed prefix; -1 = unclaimed)."""
        return self._owner.array[: self.ntasks].copy()

    def close(self) -> None:
        """Release the owner board's shared-memory block."""
        self._owner.close(unlink=True)


class SharedWorkBoard:
    """Lock-backed per-rank work queues shared across worker processes.

    The process-backend counterpart of the static / guided /
    work-stealing strategies in :mod:`repro.parallel.scheduler`, just
    as :class:`SharedTaskCounter` is the counterpart of the dynamic
    counter.  One lock guards the whole board; ``next(rank)`` pops the
    rank's own queue head, refills from the global chunk cursor
    (guided), or pops the first non-empty victim's tail in the rank's
    deterministic victim order (steal).

    Claims are recorded on an owner board *and* a claim-sequence board
    inside the same lock, so ``owned(rank)`` returns the dead rank's
    exact claim order even though grants are no longer monotone in the
    task index — the parent's kill-recovery replay stays bitwise
    identical to what the dead worker was accumulating.
    """

    def __init__(
        self,
        capacity: int,
        nranks: int,
        strategy: str,
        *,
        partition: list[list[int]] | None = None,
        victim_order: list[list[int]] | None = None,
        min_chunk: int = 1,
        ctx: mp.context.BaseContext | None = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if nranks < 1:
            raise ValueError("nranks must be positive")
        if strategy not in ("static", "guided", "steal"):
            raise ValueError(
                f"unknown work-board strategy {strategy!r}; "
                "choose from ('static', 'guided', 'steal')"
            )
        if strategy in ("static", "steal") and partition is None:
            raise ValueError(f"strategy {strategy!r} requires a partition")
        if strategy == "steal" and victim_order is None:
            raise ValueError("strategy 'steal' requires a victim order")
        if min_chunk < 1:
            raise ValueError("min_chunk must be positive")
        if ctx is None:
            ctx = mp.get_context("fork")
        self.capacity = capacity
        self.nranks = nranks
        self.strategy = strategy
        self.min_chunk = min_chunk
        self._partition = partition
        self._victims = victim_order
        # The clock Value's lock guards every other field: per-grant
        # claim sequence for replay ordering, plus the queues/cursors.
        self._clock = ctx.Value("q", 0)
        self._ntasks = ctx.Value("q", 0, lock=False)
        self._gcur = ctx.Value("q", 0, lock=False)
        self._nsteals = ctx.Value("q", 0, lock=False)
        self._nchunks = ctx.Value("q", 0, lock=False)
        self._queue = SharedNDArray((max(capacity, 1),), np.int64)
        self._seg = SharedNDArray((nranks, 2), np.int64)
        self._owner = SharedNDArray((max(capacity, 1),), np.int64)
        self._order = SharedNDArray((max(capacity, 1),), np.int64)
        self._owner.fill(-1)
        self._order.fill(-1)
        self._seg.fill(0)

    @property
    def ntasks(self) -> int:
        """Active task-space size of the current build."""
        return int(self._ntasks.value)

    @property
    def steals(self) -> int:
        """Steal transfers performed in the current build."""
        return int(self._nsteals.value)

    @property
    def chunks(self) -> int:
        """Guided chunks fetched in the current build."""
        return int(self._nchunks.value)

    def reset(self, ntasks: int) -> None:
        """Rewind for a new build (parent-side, workers quiescent)."""
        if ntasks > self.capacity:
            raise ValueError(
                f"ntasks={ntasks} exceeds board capacity {self.capacity}"
            )
        with self._clock.get_lock():
            self._clock.value = 0
            self._ntasks.value = ntasks
            self._gcur.value = 0
            self._nsteals.value = 0
            self._nchunks.value = 0
            self._owner.array[:] = -1
            self._order.array[:] = -1
            if self.strategy == "guided":
                self._seg.array[:] = 0
            else:
                pos = 0
                for r, tasks in enumerate(self._partition):
                    self._seg.array[r] = (pos, pos + len(tasks))
                    self._queue.array[pos:pos + len(tasks)] = tasks
                    pos += len(tasks)
                if pos != ntasks:
                    raise ValueError(
                        f"partition covers {pos} task(s), expected {ntasks}"
                    )

    def _record(self, task: int, rank: int) -> int:
        self._owner.array[task] = rank
        self._order.array[task] = self._clock.value
        self._clock.value += 1
        return int(task)

    def next(self, rank: int) -> int | None:
        """Claim the next task for ``rank``, or ``None`` when drained.

        Same grant protocol as :meth:`SharedTaskCounter.next`: every
        index in ``[0, ntasks)`` is granted exactly once across all
        callers, whichever queue (own, chunk, or victim) it came from.
        """
        with self._clock.get_lock():
            if self.strategy == "guided":
                return self._next_guided(rank)
            head, tail = self._seg.array[rank]
            if head < tail:
                self._seg.array[rank, 0] = head + 1
                return self._record(int(self._queue.array[head]), rank)
            if self.strategy == "steal":
                for victim in self._victims[rank]:
                    vhead, vtail = self._seg.array[victim]
                    if vhead < vtail:
                        self._seg.array[victim, 1] = vtail - 1
                        self._nsteals.value += 1
                        return self._record(
                            int(self._queue.array[vtail - 1]), rank
                        )
            return None

    def _next_guided(self, rank: int) -> int | None:
        pos, end = self._seg.array[rank]
        if pos >= end:
            g = int(self._gcur.value)
            n = int(self._ntasks.value)
            if g >= n:
                return None
            remaining = n - g
            size = min(
                remaining, max(self.min_chunk, -(-remaining // self.nranks))
            )
            pos, end = g, g + size
            self._gcur.value = end
            self._nchunks.value += 1
        self._seg.array[rank] = (pos + 1, end)
        return self._record(pos, rank)

    def claimed(self) -> int:
        """Number of tasks granted so far in this build."""
        with self._clock.get_lock():
            return int(self._clock.value)

    def owned(self, rank: int) -> list[int]:
        """Task indices claimed by ``rank``, in claim order.

        Grants are not monotone in the task index here (steals take
        tails), so the claim-sequence board — not index order — defines
        the replay order.
        """
        board = self._owner.array[: self.ntasks]
        idx = np.nonzero(board == rank)[0]
        seq = self._order.array[idx]
        return [int(t) for t in idx[np.argsort(seq, kind="stable")]]

    def unclaimed(self) -> list[int]:
        """Task indices never granted to any rank, ascending."""
        board = self._owner.array[: self.ntasks]
        return [int(t) for t in np.nonzero(board == -1)[0]]

    def owners(self) -> np.ndarray:
        """Copy of the owner board (-1 = unclaimed)."""
        return self._owner.array[: self.ntasks].copy()

    def close(self) -> None:
        """Release the board's shared-memory blocks."""
        self._queue.close(unlink=True)
        self._seg.close(unlink=True)
        self._owner.close(unlink=True)
        self._order.close(unlink=True)
