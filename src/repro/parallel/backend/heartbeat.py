"""Worker heartbeat liveness for the real-process execution backend.

Before this module existed, a stalled worker was indistinguishable from
a slow one: the parent learned something was wrong only when the build
timeout (minutes) expired or the worker process died outright.  The
heartbeat protocol closes that window:

* **Workers beat in-band** — at build start, at every DLB claim
  boundary (rate-limited to one beat per ``interval_s``), and at build
  completion — by putting a small dict on a shared queue the parent
  inherits across the fork.  In-band is the point: a worker stuck in a
  long quartet batch, sleeping in an injected-straggler delay, or
  wedged in a syscall *stops beating*, whereas a background
  heartbeat thread would keep cheerfully ticking through all three.
* **The parent watches deadlines** — :class:`HeartbeatMonitor` drains
  the queue while collecting build results; a pending rank silent for
  longer than ``timeout_s`` is flagged ``suspect`` and a
  ``worker.hung`` event + ``process.workers_suspect`` counter are
  emitted *before* the DLB counter or the build timeout would notice.
  A suspect rank that eventually reports is marked ``recovered``; one
  whose process died is marked ``lost`` and handed to the existing
  zero-slab / owner-board replay recovery.

Each beat is re-published onto the live telemetry channel
(:mod:`repro.obs.telemetry`) when one is installed, which is what the
``repro monitor`` dashboard's worker-health column and per-rank
activity lanes are drawn from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics
from repro.obs.telemetry import get_telemetry

#: Default seconds between worker beats (rate limit at claim boundaries).
DEFAULT_INTERVAL_S = 0.25

#: Default parent-side silence deadline before a rank turns ``suspect``.
DEFAULT_TIMEOUT_S = 2.0

#: Health states a rank moves through during a build.
STATES = ("idle", "ok", "suspect", "lost")


def make_beat(
    rank: int,
    pid: int,
    cycle: int,
    phase: str,
    *,
    t: float,
    claimed: int = 0,
    span: str | None = None,
) -> dict[str, Any]:
    """The wire record one worker beat carries (queue-picklable dict)."""
    return {
        "rank": rank,
        "pid": pid,
        "cycle": cycle,
        "phase": phase,  # start | claim | done
        "t": t,
        "claimed": claimed,
        "span": span,
    }


@dataclass
class WorkerHealth:
    """Parent-side view of one worker's liveness."""

    rank: int
    pid: int | None = None
    state: str = "idle"
    cycle: int | None = None
    beats: int = 0
    claimed: int = 0
    claim_rate: float = 0.0
    last_beat: float | None = None  # parent clock at last receipt
    last_t: float | None = None  # worker clock stamped into the beat
    last_phase: str | None = None
    last_span: str | None = None
    suspect_count: int = 0

    def age(self, now: float) -> float | None:
        """Seconds of silence (parent clock), or ``None`` before a beat."""
        return None if self.last_beat is None else now - self.last_beat

    def as_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "pid": self.pid,
            "state": self.state,
            "cycle": self.cycle,
            "beats": self.beats,
            "claimed": self.claimed,
            "claim_rate": self.claim_rate,
            "phase": self.last_phase,
            "span": self.last_span,
            "suspect_count": self.suspect_count,
        }


class HeartbeatMonitor:
    """Deadline watcher over per-rank worker heartbeats.

    The process backend calls :meth:`start_build` when a build is
    dispatched, :meth:`record` for every beat drained from the shared
    queue, :meth:`check` from its collect loop (returns the ranks that
    *newly* turned suspect), and :meth:`mark_done` / :meth:`mark_lost`
    as results or deaths arrive.  All side effects (events, metrics,
    telemetry) happen here, so the backend's control flow stays about
    collection and recovery.
    """

    def __init__(
        self,
        nranks: int,
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.nranks = nranks
        self.timeout_s = timeout_s
        self.clock = clock
        self.health: list[WorkerHealth] = [
            WorkerHealth(rank=r) for r in range(nranks)
        ]
        self.hung_total = 0

    # -- build lifecycle -----------------------------------------------------

    def start_build(self, cycle: int) -> None:
        """Arm the deadline for a new build: every rank owes a beat."""
        now = self.clock()
        for h in self.health:
            h.state = "ok"
            h.cycle = cycle
            h.claimed = 0
            h.claim_rate = 0.0
            # The dispatch moment counts as the reference beat so a
            # worker that never says anything at all still times out.
            h.last_beat = now
            h.last_phase = "dispatched"

    def record(self, beat: dict[str, Any]) -> WorkerHealth:
        """Fold one drained beat into the rank's health record."""
        h = self.health[int(beat["rank"])]
        now = self.clock()
        prev_t, prev_claimed = h.last_t, h.claimed
        h.pid = beat.get("pid", h.pid)
        h.cycle = beat.get("cycle", h.cycle)
        h.beats += 1
        h.claimed = int(beat.get("claimed", h.claimed))
        h.last_phase = beat.get("phase")
        h.last_span = beat.get("span")
        h.last_beat = now
        h.last_t = beat.get("t", h.last_t)
        # Rate from the *worker's* beat timestamps, not the parent's
        # drain time: beats arrive in bursts, so parent-side deltas
        # would be nonsense.
        if (
            prev_t is not None
            and h.last_t is not None
            and h.last_t > prev_t
        ):
            inst = (h.claimed - prev_claimed) / (h.last_t - prev_t)
            # Light EWMA so the dashboard's DLB claim rate is readable.
            h.claim_rate = (
                inst if h.claim_rate == 0.0
                else 0.7 * h.claim_rate + 0.3 * inst
            )
        if h.state == "suspect":
            self._resolve(h, "recovered")
        elif h.state in ("idle", "lost"):
            h.state = "ok"
        channel = get_telemetry()
        if channel is not None:
            # Published on the channel's own clock so heartbeats share a
            # time base with the driver's run/cycle records; the beat's
            # worker-relative stamp rides along in the payload.
            channel.publish(
                "worker.heartbeat", source=f"rank{h.rank}",
                worker_t=beat.get("t"), **h.as_dict(),
            )
        return h

    def check(self, pending: set[int] | None = None) -> list[int]:
        """Flag pending ranks whose silence exceeded the deadline.

        Returns the ranks that turned suspect *on this call* (already
        suspect or non-pending ranks are not re-reported), after
        emitting ``worker.hung`` events, bumping
        ``process.workers_suspect``, and publishing telemetry.
        """
        now = self.clock()
        newly: list[int] = []
        for h in self.health:
            if pending is not None and h.rank not in pending:
                continue
            if h.state != "ok":
                continue
            age = h.age(now)
            if age is None or age <= self.timeout_s:
                continue
            h.state = "suspect"
            h.suspect_count += 1
            self.hung_total += 1
            newly.append(h.rank)
            log = get_event_log()
            if log is not None:
                log.emit(
                    "worker.hung", rank=h.rank, cycle=h.cycle,
                    silent_s=age, timeout_s=self.timeout_s,
                    claimed=h.claimed, pid=h.pid,
                )
            registry = get_metrics()
            if registry is not None:
                registry.counter("process.workers_suspect").inc()
                registry.counter(
                    "process.workers_suspect", rank=h.rank
                ).inc()
            channel = get_telemetry()
            if channel is not None:
                channel.publish(
                    "worker.hung", source=f"rank{h.rank}",
                    silent_s=age, **h.as_dict(),
                )
        return newly

    def mark_done(self, rank: int) -> None:
        """A rank delivered its build result."""
        h = self.health[rank]
        if h.state == "suspect":
            self._resolve(h, "recovered")
        h.state = "idle"
        h.last_phase = "done"

    def mark_lost(self, rank: int) -> None:
        """A rank's process died; recovery will replay its claims."""
        h = self.health[rank]
        was_suspect = h.state == "suspect"
        h.state = "lost"
        channel = get_telemetry()
        if channel is not None:
            channel.publish(
                "worker.lost", source=f"rank{rank}",
                was_suspect=was_suspect, **h.as_dict(),
            )

    def _resolve(self, h: WorkerHealth, how: str) -> None:
        h.state = "ok"
        log = get_event_log()
        if log is not None:
            log.emit(f"worker.{how}", rank=h.rank, cycle=h.cycle)
        channel = get_telemetry()
        if channel is not None:
            channel.publish(f"worker.{how}", source=f"rank{h.rank}",
                            **h.as_dict())

    # -- inspection ----------------------------------------------------------

    def states(self) -> dict[str, int]:
        """Current state histogram, e.g. ``{"ok": 3, "suspect": 1}``."""
        out: dict[str, int] = {}
        for h in self.health:
            out[h.state] = out.get(h.state, 0) + 1
        return out

    def suspects(self) -> list[int]:
        return [h.rank for h in self.health if h.state == "suspect"]
