"""Real-process execution backend (``multiprocessing`` fork workers).

:class:`ProcessFockBuilder` runs the *same rank programs* the sim
backend executes — ``builder.rank_program(rank, grants, density, W)``
verbatim — but on real OS processes:

* The density, the Schwarz screening matrix, and one Fock accumulator
  slab per rank live in ``multiprocessing.shared_memory`` blocks
  (:class:`~repro.parallel.shared_array.SharedNDArray`); workers are
  forked, so they inherit the mappings and read/write the same physical
  pages — the process analogue of the paper's shared-density setup.
* The DLB is the real DDI protocol: a lock-backed shared counter
  (:class:`~repro.parallel.backend.counter.SharedTaskCounter`) serving
  ``dlbnext`` grants whose rank assignment depends on arrival timing.
  Grant interleaving is genuinely nondeterministic; the reduced Fock
  matrix is partition-independent, which the parity suite certifies
  against the deterministic sim backend (<= 1e-10 Hartree).
* The reduction is performed by the parent in rank order — the same
  floating-point association as the sim world's slot reduction — after
  all workers report.

Fault injection is *real* here: a :class:`~repro.resilience.faults
.FaultPlan` ``kill`` event makes the worker ``os._exit`` at a
task-claim boundary mid-build (no result, partial slab); ``delay``
events put the worker to sleep.  Recovery is parent-side: a lost
worker's slab is zeroed and its claimed tasks (the counter's owner
board remembers them, in claim order) are replayed by the parent into
the same reduction slot, then the worker is respawned for the next
build.  ``corrupt`` events are a wire-level sim concept and do not fire
in this backend.

Observability: each worker traces its rank program into per-worker
spans/events NDJSON under ``obs_dir/worker<r>/``, timestamped against
one shared ``perf_counter`` base (``CLOCK_MONOTONIC`` is common across
processes on a host), so :func:`worker_obs_run` can hand the whole
worker fleet to
:func:`~repro.obs.analysis.timeline.merged_chrome_trace` as a single
aligned timeline.  Records are streamed *incrementally* (line-buffered
append via :class:`~repro.obs.stream.ObsStreamer`): a worker killed by
``os._exit`` mid-build leaves every span and event it completed on
disk, not in a lost buffer.

Liveness: workers send in-band heartbeats (build start, every DLB
claim boundary rate-limited to ``heartbeat_interval_s``, build done)
over a shared queue; the parent's
:class:`~repro.parallel.backend.heartbeat.HeartbeatMonitor` flags any
pending rank silent past ``heartbeat_timeout_s`` as ``suspect`` and
emits a ``worker.hung`` event — a stalled worker becomes visible in
seconds instead of at the build timeout.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs.events import EventLog, events_from_ndjson, get_event_log
from repro.obs.metrics import get_metrics
from repro.obs.stream import ObsStreamer
from repro.obs.telemetry import get_telemetry
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.parallel.backend.base import ExecutionBackend
from repro.parallel.backend.counter import SharedTaskCounter, SharedWorkBoard
from repro.parallel.scheduler import steal_victim_order
from repro.parallel.backend.heartbeat import (
    DEFAULT_INTERVAL_S,
    DEFAULT_TIMEOUT_S,
    HeartbeatMonitor,
    make_beat,
)
from repro.parallel.shared_array import SharedNDArray

#: Injected-kill exit code (distinguishes chaos deaths in diagnostics).
KILLED_EXIT_CODE = 17

#: Hard ceiling on one Fock build's wall time before the parent gives up.
DEFAULT_BUILD_TIMEOUT_S = 120.0


class BuildTimeoutError(RuntimeError):
    """A process-backend Fock build exceeded its wall-clock budget."""


class WorkerGeometryError(ValueError):
    """Builder geometry and backend worker count disagree."""


def _worker_loop(
    rank: int,
    builder: Any,
    counter: Any,
    density: SharedNDArray,
    slabs: SharedNDArray,
    cmd: Any,
    results: Any,
    hb: Any,
    cfg: dict,
) -> None:
    """One worker process: serve ``("build", cycle, tau)`` commands forever.

    Everything arrives through fork inheritance (no pickling): the sim
    builder (whose ``rank_program`` we execute), the shared counter,
    the shared-memory views, and the heartbeat queue.
    """
    tracer = Tracer() if cfg["obs_dir"] is not None else None
    log = EventLog() if cfg["obs_dir"] is not None else None
    streamer = (
        ObsStreamer(
            Path(cfg["obs_dir"]) / f"worker{rank}",
            tracer=tracer, log=log, t0=cfg["t0"],
        )
        if cfg["obs_dir"] is not None
        else None
    )
    plan = builder.fault_plan
    D = density.array
    W = slabs.array[rank]
    pid = os.getpid()
    interval = cfg["heartbeat_s"]
    last_beat = 0.0

    def beat(phase: str, cycle: int, claimed: int = 0) -> None:
        """Send one in-band heartbeat (never blocks, never raises)."""
        nonlocal last_beat
        now = time.perf_counter()
        last_beat = now
        span = tracer.current.name if tracer and tracer.current else None
        try:
            hb.put_nowait(
                make_beat(rank, pid, cycle, phase, t=now - cfg["t0"],
                          claimed=claimed, span=span)
            )
        except Exception:  # pragma: no cover - full queue is diagnostic loss
            pass

    while True:
        msg = cmd.get()
        if msg[0] == "stop":
            if streamer is not None:
                streamer.close()
            return
        cycle = msg[1]
        tau = msg[2]
        if tau != builder.screening.tau:
            # The parent retuned the screening threshold between builds
            # (incremental-Fock density screening); follow suit.  The
            # clone shares the shared-memory Schwarz pages.
            builder.screening = builder.screening.with_tau(tau)
        if interval is not None:
            beat("start", cycle)
        kill_after = plan.kill_after(rank, cycle) if plan is not None else None
        factor = plan.delay_factor(rank, cycle) if plan is not None else 1.0
        if factor > 1.0:
            # A real straggler: this worker sleeps, the shared counter
            # shifts its grants to the faster ranks automatically — and
            # the heartbeat goes silent, which is exactly how the
            # parent tells a stall from slow progress.
            if log is not None:
                log.emit("fault.delay", rank=rank, cycle=cycle, factor=factor)
            time.sleep(min(0.2, 0.02 * (factor - 1.0)))
        rng = (
            np.random.default_rng([cfg["schedule_seed"], rank, cycle])
            if cfg["schedule_seed"] is not None
            else None
        )

        claim_count = 0

        def grants():
            nonlocal claim_count
            done = 0
            while True:
                if kill_after is not None and done >= kill_after:
                    # Die *for real*, mid-build, at the claim boundary:
                    # no result message, a partially-written slab, and
                    # a counter that keeps serving the survivors.  The
                    # parent replays our claimed tasks and respawns us.
                    # Streamed obs records are already on disk.
                    if log is not None:
                        log.emit(
                            "fault.kill", rank=rank, cycle=cycle, after=done
                        )
                    os._exit(KILLED_EXIT_CODE)
                if rng is not None:
                    # Scheduling jitter for nondeterminism hunting:
                    # perturb claim arrival order between runs.
                    time.sleep(float(rng.random()) * 2e-4)
                if (
                    interval is not None
                    and time.perf_counter() - last_beat >= interval
                ):
                    beat("claim", cycle, claimed=done)
                t = counter.next(rank)
                if t is None:
                    return
                yield t
                done += 1
                claim_count = done

        if tracer is not None:
            with use_tracer(tracer):
                with tracer.span(
                    "fock/rank", rank=rank, cycle=cycle,
                    pid=pid, backend="process",
                ):
                    rr = builder.rank_program(rank, grants(), D, W)
            # Streamed on close; drop the in-memory copies.
            tracer.clear()
            if log is not None:
                log.clear()
        else:
            rr = builder.rank_program(rank, grants(), D, W)
        if interval is not None:
            beat("done", cycle, claimed=claim_count)
        results.put((rank, cycle, rr.as_dict()))


class ProcessFockBuilder:
    """Drop-in ``builder(density) -> (fock, stats)`` on real processes.

    Wraps a sim builder constructed with ``nranks == workers``; the sim
    object itself crosses the fork into every worker, so its
    ``rank_program`` — including screening, the quartet engine, and the
    fault plan — is byte-for-byte the code the sim backend runs.
    """

    def __init__(
        self,
        inner: Any,
        *,
        workers: int,
        schedule_seed: int | None = None,
        obs_dir: str | Path | None = None,
        build_timeout_s: float = DEFAULT_BUILD_TIMEOUT_S,
        heartbeat_interval_s: float | None = DEFAULT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise WorkerGeometryError(f"workers must be >= 1, got {workers}")
        if inner.nranks != workers:
            raise WorkerGeometryError(
                f"builder was configured for nranks={inner.nranks} but the "
                f"process backend runs {workers} worker(s); construct the "
                "builder with nranks == workers"
            )
        self.inner = inner
        self.workers = workers
        self.build_timeout_s = build_timeout_s
        self._ctx = mp.get_context("fork")
        shape = tuple(inner.accumulator_shape)
        self._density = SharedNDArray(shape)
        self._slabs = SharedNDArray((workers, *shape))
        self._counter = self._make_counter()
        # Re-home the Schwarz matrix in shared memory *before* any fork:
        # workers then screen against the same physical pages instead of
        # copy-on-write duplicates.
        self._schwarz = SharedNDArray(inner.screening.Q.shape)
        self._schwarz.array[:] = inner.screening.Q
        inner.screening.Q = self._schwarz.array
        self._cfg = {
            "schedule_seed": schedule_seed,
            "obs_dir": None if obs_dir is None else str(obs_dir),
            "t0": time.perf_counter(),  # shared trace base for all workers
            "heartbeat_s": heartbeat_interval_s,
        }
        self._procs: list[Any] = [None] * workers
        self._cmds: list[Any] = [None] * workers
        self._results = self._ctx.Queue()
        self._hb = self._ctx.Queue()
        self.heartbeat: HeartbeatMonitor | None = (
            HeartbeatMonitor(workers, timeout_s=heartbeat_timeout_s)
            if heartbeat_interval_s is not None
            else None
        )
        self._closed = False

    def _make_counter(self) -> Any:
        """The shared grant source for the configured strategy.

        ``dlb`` keeps the classic monotone counter; the other
        strategies get a :class:`SharedWorkBoard` whose fixed partition
        (static/steal) and victim orders come from the deterministic
        sim scheduler, so sim and process agree on the initial shares.
        """
        schedule = getattr(self.inner, "schedule", "dlb")
        ntasks = self.inner.dlb_ntasks()
        if schedule == "dlb":
            return SharedTaskCounter(ntasks, ctx=self._ctx)
        partition = None
        victims = None
        if schedule in ("static", "steal"):
            partition = self.inner.make_scheduler().assignment()
        if schedule == "steal":
            victims = steal_victim_order(
                self.workers, getattr(self.inner, "steal_seed", 0)
            )
        return SharedWorkBoard(
            ntasks, self.workers, schedule,
            partition=partition, victim_order=victims, ctx=self._ctx,
        )

    @property
    def screening(self):
        """The wrapped builder's screening (settable: incremental Fock
        retunes ``tau`` between builds; the new value ships to workers
        with the next build command)."""
        return self.inner.screening

    @screening.setter
    def screening(self, value) -> None:
        self.inner.screening = value

    def __getattr__(self, name: str) -> Any:
        # Geometry/metadata reads (nbf, algorithm_name, basis, ...)
        # delegate to the wrapped sim builder.
        return getattr(self.inner, name)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, rank: int) -> None:
        cmd = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(
                rank, self.inner, self._counter, self._density,
                self._slabs, cmd, self._results, self._hb, self._cfg,
            ),
            name=f"fock-worker-{rank}",
            daemon=True,
        )
        proc.start()
        self._cmds[rank] = cmd
        self._procs[rank] = proc

    def _ensure_workers(self) -> None:
        """Start lazily; respawn any worker lost in an earlier build."""
        for rank in range(self.workers):
            proc = self._procs[rank]
            if proc is None or not proc.is_alive():
                self._spawn(rank)

    # -- the build -----------------------------------------------------------

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, Any]:
        if self._closed:
            raise RuntimeError("process backend already shut down")
        stats = self.inner._new_stats()
        cycle = self.inner._build_index
        self.inner._check_density(density)
        tracer = get_tracer()
        with tracer.span(
            "fock/build", algorithm=self.inner.algorithm_name,
            nranks=self.workers, nthreads=self.inner.nthreads,
            backend="process",
        ):
            self._density.array[:] = density
            self._slabs.fill(0.0)
            self._counter.reset(self.inner.dlb_ntasks())
            self._ensure_workers()
            if self.heartbeat is not None:
                self.heartbeat.start_build(cycle)
            tau = float(self.inner.screening.tau)
            for rank in range(self.workers):
                self._cmds[rank].put(("build", cycle, tau))
            rrs, dead = self._collect(cycle)
            self._recover(rrs, dead, cycle)
            # Reduce the per-rank slabs in rank order — the same
            # floating-point association as SimWorld's slot reduction.
            with tracer.span("fock/gsumf", backend="process"):
                W = np.zeros(tuple(self.inner.accumulator_shape))
                for rank in range(self.workers):
                    W += self._slabs.array[rank]
        for rank in range(self.workers):
            rr = rrs[rank]
            self.inner._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        stats.reduce_bytes = W.nbytes * self.workers
        self.inner._capture_cache_stats(stats)
        self.inner._record_global(stats)
        return self.inner.assemble(W), stats

    def _drain_heartbeats(self) -> None:
        """Fold every queued worker beat into the liveness monitor."""
        if self.heartbeat is None:
            return
        while True:
            try:
                beat = self._hb.get_nowait()
            except queue_mod.Empty:
                return
            self.heartbeat.record(beat)

    def _collect(self, cycle: int) -> tuple[dict, list[int]]:
        """Gather per-rank results; detect workers that died or stalled."""
        from repro.core.fock_base import RankBuildResult

        rrs: dict[int, RankBuildResult] = {}
        dead: list[int] = []
        pending = set(range(self.workers))
        deadline = time.monotonic() + self.build_timeout_s
        # Poll fast enough that a missed-heartbeat deadline is noticed
        # within about half the timeout, not at the 0.25 s default.
        poll = 0.25
        if self.heartbeat is not None:
            poll = min(poll, max(0.01, self.heartbeat.timeout_s / 2))
        while pending:
            self._drain_heartbeats()
            try:
                rank, rcycle, payload = self._results.get(timeout=poll)
            except queue_mod.Empty:
                for rank in sorted(pending):
                    proc = self._procs[rank]
                    if proc is not None and not proc.is_alive():
                        # A live worker never exits between builds, so a
                        # dead pending worker has no result in flight.
                        proc.join()
                        self._procs[rank] = None
                        pending.discard(rank)
                        dead.append(rank)
                        if self.heartbeat is not None:
                            self.heartbeat.mark_lost(rank)
                if self.heartbeat is not None:
                    # Silent-but-alive pending ranks turn suspect here:
                    # the worker.hung event fires long before the build
                    # timeout or a missed DLB claim would implicate them.
                    self.heartbeat.check(pending)
                if time.monotonic() > deadline:
                    raise BuildTimeoutError(
                        f"Fock build {cycle}: worker(s) {sorted(pending)} "
                        f"unresponsive after {self.build_timeout_s:.0f} s"
                    )
                continue
            if rcycle != cycle:  # pragma: no cover - lock-step safety net
                continue
            rrs[rank] = RankBuildResult.from_dict(payload)
            pending.discard(rank)
            if self.heartbeat is not None:
                self.heartbeat.mark_done(rank)
        self._drain_heartbeats()
        return rrs, dead

    def _recover(self, rrs: dict, dead: list[int], cycle: int) -> None:
        """Replay each lost worker's claimed tasks in the parent.

        The owner board lists the dead rank's claims in claim order;
        zero-and-replay into its own slab reproduces its contribution
        regardless of how far the worker got before dying (partial
        direct writes, unflushed column buffers, unreduced
        thread-private Focks — all discarded and redone).
        """
        if not dead:
            return
        registry = get_metrics()
        log = get_event_log()
        channel = get_telemetry()
        leftover = self._counter.unclaimed()
        for idx, rank in enumerate(sorted(dead)):
            tasks = self._counter.owned(rank)
            if idx == 0 and leftover:
                # Unclaimed tail (every worker died): fold into the
                # first replay so no task is lost.
                tasks += leftover
            slab = self._slabs.array[rank]
            slab[:] = 0.0
            rr = self.inner.rank_program(
                rank, iter(tasks), self._density.array, slab
            )
            rrs[rank] = rr
            # Whether the heartbeat already implicated this rank before
            # its death was confirmed — the suspect -> lost -> replay
            # chain the monitor dashboard shows.
            was_suspect = (
                self.heartbeat is not None
                and self.heartbeat.health[rank].suspect_count > 0
            )
            if registry is not None:
                registry.counter("process.workers_lost").inc()
                registry.counter(
                    "process.tasks_replayed", rank=rank
                ).inc(len(tasks))
            if log is not None:
                log.emit(
                    "process.worker_lost", rank=rank, cycle=cycle,
                    replayed=len(tasks), was_suspect=was_suspect,
                )
            if channel is not None:
                channel.publish(
                    "process.replay", source="driver", rank=rank,
                    cycle=cycle, replayed=len(tasks),
                    was_suspect=was_suspect,
                )

    # -- teardown ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, restore the builder, release shared memory.

        The shared blocks are released in a ``finally`` so a failure
        anywhere earlier (a wedged worker, a broken command queue, the
        Schwarz copy-back) cannot leak ``/dev/shm`` segments — under a
        long-running job service the leak would be cumulative.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for rank, proc in enumerate(self._procs):
                if proc is not None and proc.is_alive():
                    try:
                        self._cmds[rank].put(("stop",))
                    except Exception:  # pragma: no cover - best effort
                        pass
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - best effort
                    proc.terminate()
                    proc.join(timeout=5)
            self._procs = [None] * self.workers
            # Give the builder back a private Schwarz matrix before the
            # shared block goes away.
            self.inner.screening.Q = np.array(self._schwarz.array, copy=True)
        finally:
            for block in (self._schwarz, self._density, self._slabs):
                try:
                    block.close(unlink=True)
                except Exception:  # pragma: no cover - best effort
                    pass
            self._counter.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass


class ProcessBackend(ExecutionBackend):
    """Execution backend that owns a fleet of fork workers per builder."""

    name = "process"

    def __init__(
        self,
        *,
        workers: int = 4,
        schedule_seed: int | None = None,
        obs_dir: str | Path | None = None,
        build_timeout_s: float = DEFAULT_BUILD_TIMEOUT_S,
        heartbeat_interval_s: float | None = DEFAULT_INTERVAL_S,
        heartbeat_timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise WorkerGeometryError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.schedule_seed = schedule_seed
        self.obs_dir = obs_dir
        self.build_timeout_s = build_timeout_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._wrapped: list[ProcessFockBuilder] = []

    def wrap_builder(self, builder: Any) -> ProcessFockBuilder:
        wrapped = ProcessFockBuilder(
            builder,
            workers=self.workers,
            schedule_seed=self.schedule_seed,
            obs_dir=self.obs_dir,
            build_timeout_s=self.build_timeout_s,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_timeout_s=self.heartbeat_timeout_s,
        )
        self._wrapped.append(wrapped)
        return wrapped

    def shutdown(self) -> None:
        for wrapped in self._wrapped:
            wrapped.shutdown()
        self._wrapped.clear()


def worker_obs_run(
    obs_dir: str | Path, *, label: str = "process"
) -> tuple[str, list, list]:
    """Load all per-worker NDJSON dumps as one merged-trace run triple.

    All workers share one trace time base, so returning them as a
    *single* ``(label, spans, events)`` triple (rank = pid track)
    preserves their relative alignment through
    :func:`~repro.obs.analysis.timeline.merged_chrome_trace`.
    """
    from repro.obs.analysis.timeline import spans_from_ndjson

    spans: list = []
    events: list = []
    for d in sorted(Path(obs_dir).glob("worker*")):
        spans_file = d / "spans.ndjson"
        events_file = d / "events.ndjson"
        if spans_file.exists():
            spans += spans_from_ndjson(spans_file.read_text())
        if events_file.exists():
            events += events_from_ndjson(events_file.read_text())
    return (label, spans, events)
