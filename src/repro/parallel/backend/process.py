"""Real-process execution backend (``multiprocessing`` fork workers).

:class:`ProcessFockBuilder` runs the *same rank programs* the sim
backend executes — ``builder.rank_program(rank, grants, density, W)``
verbatim — but on real OS processes:

* The density, the Schwarz screening matrix, and one Fock accumulator
  slab per rank live in ``multiprocessing.shared_memory`` blocks
  (:class:`~repro.parallel.shared_array.SharedNDArray`); workers are
  forked, so they inherit the mappings and read/write the same physical
  pages — the process analogue of the paper's shared-density setup.
* The DLB is the real DDI protocol: a lock-backed shared counter
  (:class:`~repro.parallel.backend.counter.SharedTaskCounter`) serving
  ``dlbnext`` grants whose rank assignment depends on arrival timing.
  Grant interleaving is genuinely nondeterministic; the reduced Fock
  matrix is partition-independent, which the parity suite certifies
  against the deterministic sim backend (<= 1e-10 Hartree).
* The reduction is performed by the parent in rank order — the same
  floating-point association as the sim world's slot reduction — after
  all workers report.

Fault injection is *real* here: a :class:`~repro.resilience.faults
.FaultPlan` ``kill`` event makes the worker ``os._exit`` at a
task-claim boundary mid-build (no result, partial slab); ``delay``
events put the worker to sleep.  Recovery is parent-side: a lost
worker's slab is zeroed and its claimed tasks (the counter's owner
board remembers them, in claim order) are replayed by the parent into
the same reduction slot, then the worker is respawned for the next
build.  ``corrupt`` events are a wire-level sim concept and do not fire
in this backend.

Observability: each worker traces its rank program into per-worker
spans/events NDJSON under ``obs_dir/worker<r>/``, timestamped against
one shared ``perf_counter`` base (``CLOCK_MONOTONIC`` is common across
processes on a host), so :func:`worker_obs_run` can hand the whole
worker fleet to
:func:`~repro.obs.analysis.timeline.merged_chrome_trace` as a single
aligned timeline.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs.events import EventLog, events_from_ndjson, events_ndjson, get_event_log
from repro.obs.export import spans_ndjson
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.parallel.backend.base import ExecutionBackend
from repro.parallel.backend.counter import SharedTaskCounter
from repro.parallel.shared_array import SharedNDArray

#: Injected-kill exit code (distinguishes chaos deaths in diagnostics).
KILLED_EXIT_CODE = 17

#: Hard ceiling on one Fock build's wall time before the parent gives up.
DEFAULT_BUILD_TIMEOUT_S = 120.0


class BuildTimeoutError(RuntimeError):
    """A process-backend Fock build exceeded its wall-clock budget."""


class WorkerGeometryError(ValueError):
    """Builder geometry and backend worker count disagree."""


def _flush_worker_obs(cfg: dict, rank: int, tracer: Tracer | None,
                      log: EventLog | None) -> None:
    """Append this worker's spans/events NDJSON (shared time base)."""
    if cfg["obs_dir"] is None:
        return
    d = Path(cfg["obs_dir"]) / f"worker{rank}"
    d.mkdir(parents=True, exist_ok=True)
    if tracer is not None:
        text = spans_ndjson(tracer, t0=cfg["t0"])
        if text:
            with open(d / "spans.ndjson", "a") as fh:
                fh.write(text + "\n")
        tracer.clear()
    if log is not None:
        if log.events:
            with open(d / "events.ndjson", "a") as fh:
                fh.write(events_ndjson(log, t0=cfg["t0"]) + "\n")
        log.clear()


def _worker_loop(
    rank: int,
    builder: Any,
    counter: SharedTaskCounter,
    density: SharedNDArray,
    slabs: SharedNDArray,
    cmd: Any,
    results: Any,
    cfg: dict,
) -> None:
    """One worker process: serve ``("build", cycle)`` commands forever.

    Everything arrives through fork inheritance (no pickling): the sim
    builder (whose ``rank_program`` we execute), the shared counter,
    and the shared-memory views.
    """
    tracer = Tracer() if cfg["obs_dir"] is not None else None
    log = EventLog() if cfg["obs_dir"] is not None else None
    plan = builder.fault_plan
    D = density.array
    W = slabs.array[rank]
    while True:
        msg = cmd.get()
        if msg[0] == "stop":
            _flush_worker_obs(cfg, rank, tracer, log)
            return
        cycle = msg[1]
        kill_after = plan.kill_after(rank, cycle) if plan is not None else None
        factor = plan.delay_factor(rank, cycle) if plan is not None else 1.0
        if factor > 1.0:
            # A real straggler: this worker sleeps, the shared counter
            # shifts its grants to the faster ranks automatically.
            if log is not None:
                log.emit("fault.delay", rank=rank, cycle=cycle, factor=factor)
            time.sleep(min(0.2, 0.02 * (factor - 1.0)))
        rng = (
            np.random.default_rng([cfg["schedule_seed"], rank, cycle])
            if cfg["schedule_seed"] is not None
            else None
        )

        def grants():
            done = 0
            while True:
                if kill_after is not None and done >= kill_after:
                    # Die *for real*, mid-build, at the claim boundary:
                    # no result message, a partially-written slab, and
                    # a counter that keeps serving the survivors.  The
                    # parent replays our claimed tasks and respawns us.
                    if log is not None:
                        log.emit(
                            "fault.kill", rank=rank, cycle=cycle, after=done
                        )
                    _flush_worker_obs(cfg, rank, tracer, log)
                    os._exit(KILLED_EXIT_CODE)
                if rng is not None:
                    # Scheduling jitter for nondeterminism hunting:
                    # perturb claim arrival order between runs.
                    time.sleep(float(rng.random()) * 2e-4)
                t = counter.next(rank)
                if t is None:
                    return
                yield t
                done += 1

        if tracer is not None:
            with use_tracer(tracer):
                with tracer.span(
                    "fock/rank", rank=rank, cycle=cycle,
                    pid=os.getpid(), backend="process",
                ):
                    rr = builder.rank_program(rank, grants(), D, W)
        else:
            rr = builder.rank_program(rank, grants(), D, W)
        _flush_worker_obs(cfg, rank, tracer, log)
        results.put((rank, cycle, rr.as_dict()))


class ProcessFockBuilder:
    """Drop-in ``builder(density) -> (fock, stats)`` on real processes.

    Wraps a sim builder constructed with ``nranks == workers``; the sim
    object itself crosses the fork into every worker, so its
    ``rank_program`` — including screening, the quartet engine, and the
    fault plan — is byte-for-byte the code the sim backend runs.
    """

    def __init__(
        self,
        inner: Any,
        *,
        workers: int,
        schedule_seed: int | None = None,
        obs_dir: str | Path | None = None,
        build_timeout_s: float = DEFAULT_BUILD_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise WorkerGeometryError(f"workers must be >= 1, got {workers}")
        if inner.nranks != workers:
            raise WorkerGeometryError(
                f"builder was configured for nranks={inner.nranks} but the "
                f"process backend runs {workers} worker(s); construct the "
                "builder with nranks == workers"
            )
        self.inner = inner
        self.workers = workers
        self.build_timeout_s = build_timeout_s
        self._ctx = mp.get_context("fork")
        nbf = inner.nbf
        self._density = SharedNDArray((nbf, nbf))
        self._slabs = SharedNDArray((workers, nbf, nbf))
        self._counter = SharedTaskCounter(inner.dlb_ntasks(), ctx=self._ctx)
        # Re-home the Schwarz matrix in shared memory *before* any fork:
        # workers then screen against the same physical pages instead of
        # copy-on-write duplicates.
        self._schwarz = SharedNDArray(inner.screening.Q.shape)
        self._schwarz.array[:] = inner.screening.Q
        inner.screening.Q = self._schwarz.array
        self._cfg = {
            "schedule_seed": schedule_seed,
            "obs_dir": None if obs_dir is None else str(obs_dir),
            "t0": time.perf_counter(),  # shared trace base for all workers
        }
        self._procs: list[Any] = [None] * workers
        self._cmds: list[Any] = [None] * workers
        self._results = self._ctx.Queue()
        self._closed = False

    def __getattr__(self, name: str) -> Any:
        # Geometry/metadata reads (nbf, algorithm_name, basis, ...)
        # delegate to the wrapped sim builder.
        return getattr(self.inner, name)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, rank: int) -> None:
        cmd = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(
                rank, self.inner, self._counter, self._density,
                self._slabs, cmd, self._results, self._cfg,
            ),
            name=f"fock-worker-{rank}",
            daemon=True,
        )
        proc.start()
        self._cmds[rank] = cmd
        self._procs[rank] = proc

    def _ensure_workers(self) -> None:
        """Start lazily; respawn any worker lost in an earlier build."""
        for rank in range(self.workers):
            proc = self._procs[rank]
            if proc is None or not proc.is_alive():
                self._spawn(rank)

    # -- the build -----------------------------------------------------------

    def __call__(self, density: np.ndarray) -> tuple[np.ndarray, Any]:
        if self._closed:
            raise RuntimeError("process backend already shut down")
        stats = self.inner._new_stats()
        cycle = self.inner._build_index
        self.inner._check_density(density)
        tracer = get_tracer()
        with tracer.span(
            "fock/build", algorithm=self.inner.algorithm_name,
            nranks=self.workers, nthreads=self.inner.nthreads,
            backend="process",
        ):
            self._density.array[:] = density
            self._slabs.fill(0.0)
            self._counter.reset(self.inner.dlb_ntasks())
            self._ensure_workers()
            for rank in range(self.workers):
                self._cmds[rank].put(("build", cycle))
            rrs, dead = self._collect(cycle)
            self._recover(rrs, dead, cycle)
            # Reduce the per-rank slabs in rank order — the same
            # floating-point association as SimWorld's slot reduction.
            with tracer.span("fock/gsumf", backend="process"):
                W = np.zeros((self.inner.nbf, self.inner.nbf))
                for rank in range(self.workers):
                    W += self._slabs.array[rank]
        for rank in range(self.workers):
            rr = rrs[rank]
            self.inner._merge_rank_result(stats, rr)
            stats.per_rank_quartets.append(rr.quartets_done)
        stats.quartets_computed = sum(stats.per_rank_quartets)
        stats.reduce_bytes = W.nbytes * self.workers
        self.inner._capture_cache_stats(stats)
        self.inner._record_global(stats)
        return self.inner.assemble(W), stats

    def _collect(self, cycle: int) -> tuple[dict, list[int]]:
        """Gather per-rank results; detect workers that died mid-build."""
        from repro.core.fock_base import RankBuildResult

        rrs: dict[int, RankBuildResult] = {}
        dead: list[int] = []
        pending = set(range(self.workers))
        deadline = time.monotonic() + self.build_timeout_s
        while pending:
            try:
                rank, rcycle, payload = self._results.get(timeout=0.25)
            except queue_mod.Empty:
                for rank in sorted(pending):
                    proc = self._procs[rank]
                    if proc is not None and not proc.is_alive():
                        # A live worker never exits between builds, so a
                        # dead pending worker has no result in flight.
                        proc.join()
                        self._procs[rank] = None
                        pending.discard(rank)
                        dead.append(rank)
                if time.monotonic() > deadline:
                    raise BuildTimeoutError(
                        f"Fock build {cycle}: worker(s) {sorted(pending)} "
                        f"unresponsive after {self.build_timeout_s:.0f} s"
                    )
                continue
            if rcycle != cycle:  # pragma: no cover - lock-step safety net
                continue
            rrs[rank] = RankBuildResult.from_dict(payload)
            pending.discard(rank)
        return rrs, dead

    def _recover(self, rrs: dict, dead: list[int], cycle: int) -> None:
        """Replay each lost worker's claimed tasks in the parent.

        The owner board lists the dead rank's claims in claim order;
        zero-and-replay into its own slab reproduces its contribution
        regardless of how far the worker got before dying (partial
        direct writes, unflushed column buffers, unreduced
        thread-private Focks — all discarded and redone).
        """
        if not dead:
            return
        registry = get_metrics()
        log = get_event_log()
        leftover = list(range(self._counter.claimed(), self._counter.ntasks))
        for idx, rank in enumerate(sorted(dead)):
            tasks = self._counter.owned(rank)
            if idx == 0 and leftover:
                # Unclaimed tail (every worker died): fold into the
                # first replay so no task is lost.
                tasks += leftover
            slab = self._slabs.array[rank]
            slab[:] = 0.0
            rr = self.inner.rank_program(
                rank, iter(tasks), self._density.array, slab
            )
            rrs[rank] = rr
            if registry is not None:
                registry.counter("process.workers_lost").inc()
                registry.counter(
                    "process.tasks_replayed", rank=rank
                ).inc(len(tasks))
            if log is not None:
                log.emit(
                    "process.worker_lost", rank=rank, cycle=cycle,
                    replayed=len(tasks),
                )

    # -- teardown ------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop workers, restore the builder, release shared memory."""
        if self._closed:
            return
        self._closed = True
        for rank, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():
                try:
                    self._cmds[rank].put(("stop",))
                except Exception:  # pragma: no cover - teardown best effort
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - teardown best effort
                proc.terminate()
                proc.join(timeout=5)
        self._procs = [None] * self.workers
        # Give the builder back a private Schwarz matrix before the
        # shared block goes away.
        self.inner.screening.Q = np.array(self._schwarz.array, copy=True)
        self._schwarz.close(unlink=True)
        self._density.close(unlink=True)
        self._slabs.close(unlink=True)
        self._counter.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass


class ProcessBackend(ExecutionBackend):
    """Execution backend that owns a fleet of fork workers per builder."""

    name = "process"

    def __init__(
        self,
        *,
        workers: int = 4,
        schedule_seed: int | None = None,
        obs_dir: str | Path | None = None,
        build_timeout_s: float = DEFAULT_BUILD_TIMEOUT_S,
    ) -> None:
        if workers < 1:
            raise WorkerGeometryError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.schedule_seed = schedule_seed
        self.obs_dir = obs_dir
        self.build_timeout_s = build_timeout_s
        self._wrapped: list[ProcessFockBuilder] = []

    def wrap_builder(self, builder: Any) -> ProcessFockBuilder:
        wrapped = ProcessFockBuilder(
            builder,
            workers=self.workers,
            schedule_seed=self.schedule_seed,
            obs_dir=self.obs_dir,
            build_timeout_s=self.build_timeout_s,
        )
        self._wrapped.append(wrapped)
        return wrapped

    def shutdown(self) -> None:
        for wrapped in self._wrapped:
            wrapped.shutdown()
        self._wrapped.clear()


def worker_obs_run(
    obs_dir: str | Path, *, label: str = "process"
) -> tuple[str, list, list]:
    """Load all per-worker NDJSON dumps as one merged-trace run triple.

    All workers share one trace time base, so returning them as a
    *single* ``(label, spans, events)`` triple (rank = pid track)
    preserves their relative alignment through
    :func:`~repro.obs.analysis.timeline.merged_chrome_trace`.
    """
    from repro.obs.analysis.timeline import spans_from_ndjson

    spans: list = []
    events: list = []
    for d in sorted(Path(obs_dir).glob("worker*")):
        spans_file = d / "spans.ndjson"
        events_file = d / "events.ndjson"
        if spans_file.exists():
            spans += spans_from_ndjson(spans_file.read_text())
        if events_file.exists():
            events += events_from_ndjson(events_file.read_text())
    return (label, spans, events)
