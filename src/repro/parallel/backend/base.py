"""Pluggable execution backends for the parallel Fock build.

Every Fock algorithm in :mod:`repro.core` is expressed as a *rank
program* (``builder.rank_program(rank, grants, density, W)``): the SPMD
body one MPI rank executes between the DLB counter and the terminal
reduction.  An :class:`ExecutionBackend` decides *how* those rank
programs run:

* :class:`~repro.parallel.backend.sim.SimBackend` — the deterministic
  single-process cooperative runtime the reproduction was built on.
  Ranks run sequentially through :class:`~repro.parallel.comm.SimWorld`;
  results are bitwise reproducible, which makes this backend the
  reference the differential test suite measures everything against.
* :class:`~repro.parallel.backend.process.ProcessBackend` — the same
  rank programs on real OS processes (``multiprocessing`` fork
  workers), with the density/Schwarz/Fock matrices in
  ``multiprocessing.shared_memory`` blocks and the paper's DLB counter
  served by a lock-backed shared counter.  Real concurrency, real
  nondeterminism in grant interleaving — but the reduced Fock matrix is
  partition-independent, so energies agree with the sim backend to
  reduction rounding (the parity suite enforces <= 1e-10 Hartree).

Backends wrap an already-constructed sim builder
(:func:`repro.core.scf_driver.make_fock_builder` product) rather than
constructing one, which keeps this package import-light: nothing here
imports :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Any

BACKEND_NAMES = ("sim", "process")


class ExecutionBackend:
    """How rank programs execute: simulated cooperatively or on real processes."""

    name = "base"

    def wrap_builder(self, builder: Any) -> Any:
        """Adapt a sim Fock builder to this backend.

        The returned object satisfies the same
        ``builder(density) -> (fock, stats)`` protocol the SCF drivers
        consume.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release backend resources (workers, shared memory). Idempotent."""

    # Context-manager sugar so scripts can scope worker lifetimes.
    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.shutdown()
        return False


def make_backend(
    spec: "str | ExecutionBackend",
    *,
    workers: int | None = None,
    schedule_seed: int | None = None,
    obs_dir: Any = None,
    **process_options: Any,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    Parameters
    ----------
    spec:
        ``"sim"``, ``"process"``, or a ready :class:`ExecutionBackend`.
    workers:
        Process-backend worker count (ignored by ``sim``).
    schedule_seed:
        Process-backend scheduling-jitter seed for nondeterminism
        hunting (ignored by ``sim``).
    obs_dir:
        Directory for per-worker spans/events NDJSON (ignored by
        ``sim``).
    **process_options:
        Further :class:`~repro.parallel.backend.process.ProcessBackend`
        keywords (``heartbeat_interval_s``, ``heartbeat_timeout_s``,
        ``build_timeout_s``); rejected for the sim backend so typos do
        not pass silently.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec == "sim":
        from repro.parallel.backend.sim import SimBackend

        if process_options:
            raise TypeError(
                f"sim backend takes no options {sorted(process_options)!r}"
            )
        return SimBackend()
    if spec == "process":
        from repro.parallel.backend.process import ProcessBackend

        return ProcessBackend(
            workers=4 if workers is None else workers,
            schedule_seed=schedule_seed,
            obs_dir=obs_dir,
            **process_options,
        )
    raise ValueError(
        f"unknown execution backend {spec!r}; choose from {BACKEND_NAMES}"
    )
