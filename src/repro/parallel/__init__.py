"""Deterministic simulated MPI/OpenMP runtime.

The paper's algorithms are SPMD programs whose only inter-rank
communication is (a) a DDI-style global dynamic-load-balancing counter
and (b) a final global sum of the Fock matrix.  Within a rank, OpenMP
threads share read-only matrices and coordinate through barriers and
per-thread buffers.

This package reproduces those semantics in a single Python process,
deterministically:

* :class:`~repro.parallel.comm.SimWorld` — a simulated MPI world;
  ranks execute sequentially, collectives (``gsumf`` = allreduce-sum,
  broadcast, barrier) have real data semantics and are metered for the
  performance model.
* :class:`~repro.parallel.dlb.DynamicLoadBalancer` — the shared global
  task counter (``ddi_dlbnext``), with pluggable grant policies.
* :class:`~repro.parallel.threads.ThreadTeam` — OpenMP-style thread
  scheduling: ``static`` / ``dynamic`` chunked partitions, loop
  collapsing, per-thread private storage.
* :class:`~repro.parallel.shared_array.WriteTracker` — records which
  thread wrote which elements in which synchronization phase and
  detects write-write races, turning the paper's data-race argument
  for the shared-Fock algorithm into a testable invariant.
* :mod:`repro.parallel.reduction` — the padded, chunked tree reduction
  of per-thread buffer columns (paper Figure 1 B).
"""

from repro.parallel.comm import CollectiveStats, SimComm, SimWorld
from repro.parallel.dlb import DynamicLoadBalancer
from repro.parallel.scheduler import (
    SCHEDULE_NAMES,
    GuidedScheduler,
    Scheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.parallel.threads import ThreadTeam, split_chunks
from repro.parallel.shared_array import RaceError, WriteTracker
from repro.parallel.reduction import tree_reduce_columns
from repro.parallel.ddi import DDIArray, DDIMode, DDIRuntime

__all__ = [
    "SimWorld",
    "SimComm",
    "CollectiveStats",
    "DynamicLoadBalancer",
    "Scheduler",
    "SCHEDULE_NAMES",
    "StaticScheduler",
    "GuidedScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
    "ThreadTeam",
    "split_chunks",
    "WriteTracker",
    "RaceError",
    "tree_reduce_columns",
    "DDIRuntime",
    "DDIArray",
    "DDIMode",
]
