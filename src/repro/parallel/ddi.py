"""Simulated Distributed Data Interface (DDI) — GAMESS's comm layer.

GAMESS performs all of its communication through DDI (Fletcher et al.,
CPC 128, 190 (2000)): globally addressed distributed 2-D arrays with
one-sided ``put/get/acc`` access, a global dynamic-load-balance counter,
and global sums.  Two implementations matter to the paper:

* the **legacy MPI-1 DDI**, where every compute rank is paired with a
  *data-server* process that services one-sided requests by polling —
  doubling the process count and the replicated memory (the paper's
  section 6.2 discussion and part of the stock code's footprint);
* the **MPI-3 DDI** used for the paper's benchmarks, which maps
  one-sided access onto RMA windows and needs no data servers.

This module reproduces the *semantics* (distribution, access, metering,
memory accounting) so that DDI-based algorithms can be expressed
faithfully; the timing consequences live in :mod:`repro.perfsim`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics
from repro.parallel.dlb import DynamicLoadBalancer

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultPlan


class DDIMode(str, enum.Enum):
    """DDI transport implementation."""

    MPI3 = "mpi3"                 # RMA windows, no data servers
    DATA_SERVER = "data-server"   # legacy MPI-1: one server per rank


@dataclass
class DDIStats:
    """Traffic accounting for one DDI runtime."""

    puts: int = 0
    gets: int = 0
    accs: int = 0
    bytes_moved: int = 0
    remote_fraction_weighted: float = 0.0

    def record(self, nbytes: int, remote: bool) -> None:
        self.bytes_moved += nbytes
        if remote:
            self.remote_fraction_weighted += nbytes
        registry = get_metrics()
        if registry is not None:
            registry.counter("ddi.bytes_moved").inc(nbytes)
            if remote:
                registry.counter("ddi.remote_bytes").inc(nbytes)


def _meter_op(op: str) -> None:
    """Count a one-sided DDI operation in the global metrics registry."""
    registry = get_metrics()
    if registry is not None:
        registry.counter("ddi.ops", op=op).inc()


class DDIArray:
    """A globally addressed 2-D array distributed over compute ranks.

    Columns are divided into contiguous blocks, one per rank — DDI's
    standard distribution for the distributed-data SCF family.  All
    ranks can read/write any patch; accesses are classified local or
    remote for the metering.
    """

    def __init__(self, runtime: "DDIRuntime", rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.runtime = runtime
        self.rows = rows
        self.cols = cols
        bounds = np.linspace(0, cols, runtime.nranks + 1).astype(int)
        self._col_bounds = bounds
        self._blocks = [
            np.zeros((rows, bounds[r + 1] - bounds[r]))
            for r in range(runtime.nranks)
        ]
        runtime._register_array(self)

    # -- distribution ------------------------------------------------------

    def owner_of_column(self, col: int) -> int:
        """Rank owning a global column."""
        if not 0 <= col < self.cols:
            raise IndexError(f"column {col} out of range")
        return int(np.searchsorted(self._col_bounds, col, side="right") - 1)

    def local_columns(self, rank: int) -> range:
        """Global column range stored on ``rank``."""
        return range(self._col_bounds[rank], self._col_bounds[rank + 1])

    @property
    def words(self) -> int:
        """Total distributed size in 8-byte words."""
        return self.rows * self.cols

    # -- one-sided access ---------------------------------------------------

    def _visit(self, rows: slice, cols: slice):
        """Yield (rank, local block view, global col offset) per owner."""
        c0, c1 = cols.start, cols.stop
        for r in range(self.runtime.nranks):
            b0, b1 = self._col_bounds[r], self._col_bounds[r + 1]
            lo, hi = max(c0, b0), min(c1, b1)
            if lo < hi:
                yield r, self._blocks[r][rows, lo - b0 : hi - b0], lo

    def put(self, rank: int, rows: slice, cols: slice, data: np.ndarray) -> None:
        """One-sided write of a patch (``ddi_put``)."""
        self.runtime.stats.puts += 1
        _meter_op("put")
        for owner, view, lo in self._visit(rows, cols):
            seg = data[:, lo - cols.start : lo - cols.start + view.shape[1]]
            view[...] = seg
            self.runtime.stats.record(seg.nbytes, remote=owner != rank)

    def get(self, rank: int, rows: slice, cols: slice) -> np.ndarray:
        """One-sided read of a patch (``ddi_get``)."""
        self.runtime.stats.gets += 1
        _meter_op("get")
        out = np.empty((rows.stop - rows.start, cols.stop - cols.start))
        for owner, view, lo in self._visit(rows, cols):
            out[:, lo - cols.start : lo - cols.start + view.shape[1]] = view
            self.runtime.stats.record(view.nbytes, remote=owner != rank)
        return out

    def acc(self, rank: int, rows: slice, cols: slice, data: np.ndarray) -> None:
        """One-sided accumulate (``ddi_acc``) — the Fock-update primitive."""
        self.runtime.stats.accs += 1
        _meter_op("acc")
        for owner, view, lo in self._visit(rows, cols):
            seg = data[:, lo - cols.start : lo - cols.start + view.shape[1]]
            view += seg
            self.runtime.stats.record(seg.nbytes, remote=owner != rank)

    def to_dense(self) -> np.ndarray:
        """Gather the full array (verification only)."""
        return np.concatenate(self._blocks, axis=1)


class DDIRuntime:
    """A simulated DDI instance over ``nranks`` compute processes.

    Parameters
    ----------
    nranks:
        Compute process count.
    mode:
        ``mpi3`` (default) or ``data-server`` (legacy); the legacy mode
        doubles the process count and the replicated-memory accounting,
        as in the paper's description of the stock code.
    fault_plan:
        Optional :class:`~repro.resilience.faults.FaultPlan` validated
        against ``nranks`` at construction; ``kill`` events fire on
        :meth:`dlbnext` draws (the dead rank's outstanding tasks are
        re-queued to survivors through the balancer).
    """

    def __init__(
        self,
        nranks: int,
        *,
        mode: DDIMode | str = DDIMode.MPI3,
        fault_plan: "FaultPlan | None" = None,
    ) -> None:
        if nranks < 1:
            raise ValueError(
                f"DDIRuntime needs at least one compute rank, got {nranks}"
            )
        self.nranks = nranks
        self.mode = DDIMode(mode)
        self.stats = DDIStats()
        self._arrays: list[DDIArray] = []
        self._dlb: DynamicLoadBalancer | None = None
        if fault_plan is not None:
            fault_plan.validate_for(nranks)
        self.fault_plan = fault_plan
        self._cycle = 0           # dlb_reset epochs (1-based once armed)
        self._draws = [0] * nranks
        self._kill_after: dict[int, int] = {}

    def _register_array(self, arr: DDIArray) -> None:
        self._arrays.append(arr)

    def create(self, rows: int, cols: int) -> DDIArray:
        """``ddi_create``: allocate a distributed array."""
        return DDIArray(self, rows, cols)

    # -- processes & memory ------------------------------------------------

    @property
    def total_processes(self) -> int:
        """MPI processes launched, including any data servers."""
        if self.mode is DDIMode.DATA_SERVER:
            return 2 * self.nranks
        return self.nranks

    def replicated_memory_factor(self) -> float:
        """Multiplier on per-rank replicated memory from the transport."""
        return 2.0 if self.mode is DDIMode.DATA_SERVER else 1.0

    def distributed_words(self) -> int:
        """Words held in distributed arrays (not replicated)."""
        return sum(a.words for a in self._arrays)

    # -- DLB counter --------------------------------------------------------

    def dlb_reset(self, ntasks: int, *, policy: str = "round_robin",
                  costs=None) -> None:
        """``ddi_dlbreset``: rearm the global counter for a task space."""
        self._dlb = DynamicLoadBalancer(
            ntasks, self.nranks, policy=policy, costs=costs
        )
        self._cycle += 1
        self._draws = [0] * self.nranks
        self._kill_after = {}
        if self.fault_plan is not None:
            for rank in range(self.nranks):
                after = self.fault_plan.kill_after(rank, self._cycle)
                if after is not None:
                    self._kill_after[rank] = after

    def dlbnext(self, rank: int) -> int | None:
        """``ddi_dlbnext``: draw the next global task index.

        Under a fault plan, a rank scheduled to die in this counter
        epoch fails once it has drawn its allotted tasks: the runtime
        re-queues its outstanding grants to the survivors (who pick
        them up through their own ``dlbnext`` draws) and the dead
        rank's subsequent calls return ``None``.
        """
        if self._dlb is None:
            raise RuntimeError("call dlb_reset before dlbnext")
        after = self._kill_after.get(rank)
        if after is not None and self._draws[rank] >= after:
            self.fail_rank(rank)
            del self._kill_after[rank]
            return None
        task = self._dlb.next(rank)
        if task is not None:
            self._draws[rank] += 1
        return task

    def fail_rank(self, rank: int) -> list[int]:
        """Kill ``rank``: withdraw and re-queue its outstanding tasks.

        Returns the re-queued task indices.  Metered as
        ``resilience.rank_failures`` / ``resilience.tasks_requeued``.
        """
        if self._dlb is None:
            raise RuntimeError("call dlb_reset before fail_rank")
        tasks = self._dlb.fail_rank(rank, requeue=True)
        registry = get_metrics()
        if registry is not None:
            registry.counter("resilience.rank_failures").inc()
            registry.counter("resilience.tasks_requeued").inc(len(tasks))
        return tasks

    def rank_alive(self, rank: int) -> bool:
        """Whether ``rank`` is still drawing from the current counter."""
        return self._dlb is None or self._dlb.alive(rank)

    # -- collectives -----------------------------------------------------------

    def gsumf(
        self, buffers: list[np.ndarray], *, validate: bool = True
    ) -> np.ndarray:
        """``ddi_gsumf``: sum per-rank buffers; all get the result.

        With ``validate`` (the default) every contribution is checked
        for NaN/Inf *before* merging — one corrupted buffer would
        otherwise silently poison every rank's copy of the sum.  A bad
        contribution raises
        :class:`~repro.resilience.errors.CorruptContributionError`
        naming the offending rank.
        """
        if len(buffers) != self.nranks:
            raise ValueError(
                f"expected {self.nranks} buffers, got {len(buffers)}"
            )
        if validate:
            for rank, b in enumerate(buffers):
                if not np.all(np.isfinite(b)):
                    from repro.resilience.errors import CorruptContributionError

                    registry = get_metrics()
                    if registry is not None:
                        registry.counter(
                            "resilience.corrupt_contributions"
                        ).inc()
                    log = get_event_log()
                    if log is not None:
                        log.emit("fault.corrupt_rejected", rank=rank)
                    raise CorruptContributionError(
                        f"gsumf contribution from rank {rank} contains "
                        f"{int(np.sum(~np.isfinite(b)))} non-finite "
                        "value(s); rejecting before the merge"
                    )
        total = np.zeros_like(buffers[0])
        for b in buffers:
            total += b
        for b in buffers:
            b[...] = total
        self.stats.bytes_moved += total.nbytes * self.nranks
        return total
