"""Padded, chunked tree reduction of per-thread buffer columns.

Reproduces the reduction of the paper's Figure 1 (B): per-thread
partial Fock columns are stored column-wise (one column per thread,
with padding on the leading dimension against false sharing); the flush
sums the thread columns with a binary tree and adds the result into the
target rows of the shared Fock matrix, with threads cooperating
row-chunk-wise so the flush itself is race-free.
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import get_metrics

#: Default padding (in doubles) appended to the leading dimension of
#: thread-column buffers; 8 doubles = one 64-byte cache line, the
#: false-sharing unit on KNL.
PAD_DOUBLES: int = 8

#: Documented floating-point tolerance under which the tree reduction is
#: *permutation-invariant*: reordering the thread columns changes the
#: reduced result by at most this relative amount.  Addition is not
#: associative in floating point, so different thread interleavings
#: (sim vs. real processes, different OpenMP schedules) produce results
#: that differ at rounding level — this constant is the contract the
#: property tests and the sim↔process parity suite hold the runtime to.
PERMUTATION_TOLERANCE: float = 1.0e-10


def padded_rows(nrows: int, pad: int = PAD_DOUBLES) -> int:
    """Leading dimension after padding to a cache-line multiple."""
    line = pad
    return ((nrows + line - 1) // line) * line + pad


def tree_reduce_columns(
    buffer: np.ndarray, nrows: int, *, validate: bool = False
) -> np.ndarray:
    """Sum thread columns of a padded buffer with a binary tree.

    Parameters
    ----------
    buffer:
        ``(padded_rows, nthreads)`` array; column ``t`` is thread *t*'s
        partial contribution.
    nrows:
        Number of meaningful rows (the rest is padding).
    validate:
        Check every thread column for NaN/Inf *before* merging and
        raise :class:`~repro.resilience.errors.CorruptContributionError`
        naming the offending thread — one poisoned column would
        otherwise contaminate the whole reduced result.

    Returns
    -------
    numpy.ndarray
        ``(nrows,)`` sum over threads.  The pairwise tree order matches
        the paper's reduction and has the usual improved rounding
        behaviour over sequential summation.
    """
    registry = get_metrics()
    if registry is not None:
        registry.counter("reduction.tree_reduces").inc()
        registry.histogram("reduction.tree_reduce_rows").observe(nrows)
    if validate:
        for t in range(buffer.shape[1]):
            if not np.all(np.isfinite(buffer[:nrows, t])):
                from repro.resilience.errors import CorruptContributionError

                if registry is not None:
                    registry.counter("resilience.corrupt_contributions").inc()
                raise CorruptContributionError(
                    f"tree reduction: thread {t}'s column contains "
                    "non-finite values; rejecting before the merge"
                )
    cols = [buffer[:nrows, t] for t in range(buffer.shape[1])]
    while len(cols) > 1:
        nxt = []
        for a in range(0, len(cols) - 1, 2):
            nxt.append(cols[a] + cols[a + 1])
        if len(cols) % 2:
            nxt.append(cols[-1])
        cols = nxt
    return cols[0].copy() if len(cols) == 1 else np.zeros(nrows)


def flush_chunks(nrows: int, nthreads: int, chunk: int = PAD_DOUBLES) -> list[tuple[int, range]]:
    """Row-chunk ownership for a cooperative flush.

    Returns ``(thread, row_range)`` pairs: chunk ``c`` of ``chunk`` rows
    is handled by thread ``c % nthreads`` — each row is summed and
    written by exactly one thread, which is what makes the flush free of
    write conflicts (and, with cache-line-sized chunks, free of false
    sharing).
    """
    out: list[tuple[int, range]] = []
    c = 0
    for start in range(0, nrows, chunk):
        rng = range(start, min(start + chunk, nrows))
        out.append((c % nthreads, rng))
        c += 1
    registry = get_metrics()
    if registry is not None:
        registry.counter("reduction.cooperative_flushes").inc()
        registry.counter("reduction.flush_chunks").inc(len(out))
    return out
