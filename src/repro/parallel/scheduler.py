"""Pluggable task-distribution strategies behind one grant interface.

The paper distributes Fock-build tasks through a shared global counter
(``ddi_dlbnext``); the HONPAS line of work (arXiv:2009.03559 static,
arXiv:2009.03555 dynamic) shows that the static/dynamic crossover is
workload-dependent.  This module factors the grant machinery out of
:class:`~repro.parallel.dlb.DynamicLoadBalancer` into a common
:class:`Scheduler` base so four strategies serve the same
``next(rank) -> int | None`` protocol the rank programs consume:

``dlb``
    The paper's dynamic shared counter
    (:class:`~repro.parallel.dlb.DynamicLoadBalancer`): one modeled
    counter RPC per grant.
``static``
    :class:`StaticScheduler` — pre-computed round-robin, or
    cost-weighted LPT when Schwarz work estimates are available.  Zero
    counter traffic: every rank knows its share up front.
``guided``
    :class:`GuidedScheduler` — OpenMP-style shrinking chunks claimed
    off a global queue; one modeled RPC per *chunk*.
``steal``
    :class:`WorkStealingScheduler` — contiguous per-rank deques;
    a rank that drains its own deque steals half the tail of the first
    non-empty victim in a deterministic (seeded) scan order.

All four preserve the contract :func:`repro.resilience.faults
.resilient_grants` relies on: exactly-once grants, ``fail_rank``
withdrawal in grant order, and deterministic requeue to survivors.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics

SCHEDULE_NAMES = ("dlb", "static", "guided", "steal")


def steal_victim_order(nranks: int, seed: int = 0) -> list[list[int]]:
    """Deterministic per-rank victim scan order for work stealing.

    Each rank scans a seeded permutation of the ring
    ``rank+1, ..., rank+nranks-1 (mod nranks)``.  The same
    ``(nranks, seed)`` pair always yields the same orders, so a steal
    schedule is reproducible; different seeds decorrelate which victims
    get hit first.
    """
    orders: list[list[int]] = []
    for rank in range(nranks):
        ring = [(rank + d) % nranks for d in range(1, nranks)]
        rng = np.random.default_rng([int(seed), rank])
        orders.append([ring[i] for i in rng.permutation(len(ring))])
    return orders


class Scheduler:
    """Deterministic grant partition served one index at a time.

    Subclasses fill ``self._queues`` (per-rank task-index lists) in
    their constructors and call :meth:`_emit_reset`; the base class
    provides the grant cursor, exhaustion logging, fault withdrawal and
    requeue shared by every strategy.
    """

    #: Strategy name as selected by ``--schedule``.
    schedule_name = "static"

    def __init__(self, ntasks: int, nranks: int) -> None:
        if ntasks < 0:
            raise ValueError("ntasks must be non-negative")
        if nranks < 1:
            raise ValueError("nranks must be positive")
        self.ntasks = ntasks
        self.nranks = nranks
        self._queues: list[list[int]] = [[] for _ in range(nranks)]
        self._cursor = [0] * nranks
        self._dead: set[int] = set()
        self._done_logged: set[int] = set()

    def _emit_reset(self, **fields) -> None:
        log = get_event_log()
        if log is not None:
            log.emit(
                "dlb.reset", ntasks=self.ntasks, nranks=self.nranks,
                schedule=self.schedule_name, **fields,
            )

    def counter_traffic(self) -> int:
        """Modeled shared-counter/queue RPCs incurred by grants so far.

        Pre-partitioned strategies need none: every rank knows its
        share up front.  The dynamic counter pays one per grant, guided
        one per chunk, stealing one per steal transfer.
        """
        return 0

    def next(self, rank: int) -> int | None:
        """Next task index for ``rank``, or ``None`` when exhausted.

        This is the simulated ``ddi_dlbnext``: each call advances the
        rank's cursor through its granted share of the global counter.
        """
        if rank in self._dead:
            return None
        cur = self._cursor[rank]
        queue = self._queues[rank]
        if cur >= len(queue):
            if rank not in self._done_logged:
                self._done_logged.add(rank)
                log = get_event_log()
                if log is not None:
                    log.emit("dlb.rank_done", rank=rank, grants=cur)
            return None
        self._cursor[rank] = cur + 1
        registry = get_metrics()
        if registry is not None:
            registry.counter("dlb.grants", rank=rank).inc()
        return queue[cur]

    def iter_rank(self, rank: int) -> Iterator[int]:
        """Iterate all remaining task indices granted to ``rank``."""
        while (t := self.next(rank)) is not None:
            yield t

    def assignment(self) -> list[list[int]]:
        """The full grant partition (per-rank task index lists)."""
        return [list(q) for q in self._queues]

    def reset(self) -> None:
        """Rewind all rank cursors (grants are unchanged; dead ranks stay dead)."""
        self._cursor = [0] * self.nranks
        self._done_logged.clear()

    # -- fault hooks --------------------------------------------------------

    def alive(self, rank: int) -> bool:
        """Whether ``rank`` still draws from the counter."""
        return rank not in self._dead

    def outstanding(self, rank: int) -> list[int]:
        """Granted-but-undrawn task indices of ``rank``, grant order."""
        return list(self._queues[rank][self._cursor[rank]:])

    def fail_rank(self, rank: int, *, requeue: bool = True) -> list[int]:
        """Declare ``rank`` dead and withdraw its outstanding grants.

        Returns the withdrawn task indices in their original grant
        order.  With ``requeue=True`` (the DDI runtime's recovery path)
        they are appended round-robin to the surviving ranks' queues, to
        be claimed by subsequent ``next()`` draws; with ``requeue=False``
        the caller owns redistribution (the Fock builders replay them in
        grant order so recovered results stay bitwise identical).
        """
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range (nranks={self.nranks})")
        if rank in self._dead:
            return []
        tasks = self.outstanding(rank)
        self._cursor[rank] = len(self._queues[rank])
        self._dead.add(rank)
        registry = get_metrics()
        if registry is not None:
            registry.counter("dlb.rank_failures").inc()
            registry.counter("dlb.tasks_withdrawn").inc(len(tasks))
        log = get_event_log()
        if log is not None:
            log.emit(
                "dlb.rank_failed", rank=rank,
                withdrawn=len(tasks), requeued=requeue,
            )
        if requeue and tasks:
            survivors = [r for r in range(self.nranks) if r not in self._dead]
            if not survivors:
                raise RuntimeError(
                    f"rank {rank} failed with {len(tasks)} outstanding "
                    "task(s) and no survivors to re-queue them to"
                )
            for idx, t in enumerate(tasks):
                claimant = survivors[idx % len(survivors)]
                self._queues[claimant].append(t)
                # A survivor that had already drained (and logged
                # dlb.rank_done) has work again: un-log it so its next
                # exhaustion re-emits rank_done with the final grant
                # count instead of leaving the stale one in the log.
                self._done_logged.discard(claimant)
                if registry is not None:
                    registry.counter("dlb.tasks_requeued", rank=claimant).inc()
        return tasks


class StaticScheduler(Scheduler):
    """Pre-computed static partition with zero counter traffic.

    Without cost estimates, indices are dealt round-robin (``t`` to
    rank ``t % nranks``).  With per-task costs (Schwarz work
    estimates), a longest-processing-time greedy pass balances the
    estimated load instead; each rank then walks its share in index
    order.  This is the HONPAS-style static distribution: no runtime
    coordination at all, so it wins exactly when the estimates are
    good and the ranks run at the same speed.
    """

    schedule_name = "static"

    def __init__(
        self,
        ntasks: int,
        nranks: int,
        *,
        costs: np.ndarray | None = None,
    ) -> None:
        super().__init__(ntasks, nranks)
        self.weighted = costs is not None
        if costs is None:
            for t in range(ntasks):
                self._queues[t % nranks].append(t)
        else:
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
            loads = np.zeros(nranks)
            for t in np.argsort(-costs, kind="stable"):
                r = int(np.argmin(loads))
                self._queues[r].append(int(t))
                loads[r] += costs[t]
            for q in self._queues:
                q.sort()
        self._emit_reset(weighted=self.weighted)


class GuidedScheduler(Scheduler):
    """OpenMP-style guided self-scheduling with shrinking chunks.

    Chunks of ``ceil(remaining / nranks)`` tasks (never below
    ``min_chunk``) are carved off the front of the global index space;
    under the simulator's equal-speed rank model each chunk goes to the
    rank with the least accumulated estimated work so far (ties to the
    lowest rank) — the partition a real guided loop converges to.  One
    modeled counter RPC is paid per chunk started, so traffic shrinks
    from ``ntasks`` (dlb) to ``O(nranks * log(ntasks))``.
    """

    schedule_name = "guided"

    def __init__(
        self,
        ntasks: int,
        nranks: int,
        *,
        costs: np.ndarray | None = None,
        min_chunk: int = 1,
    ) -> None:
        super().__init__(ntasks, nranks)
        if min_chunk < 1:
            raise ValueError("min_chunk must be positive")
        if costs is not None:
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
        self.min_chunk = min_chunk
        # Cursor positions (per rank) where each dealt chunk begins,
        # for the per-chunk traffic model.
        self._chunk_starts: list[list[int]] = [[] for _ in range(nranks)]
        loads = np.zeros(nranks)
        pos = 0
        nchunks = 0
        while pos < ntasks:
            remaining = ntasks - pos
            size = min(remaining, max(min_chunk, -(-remaining // nranks)))
            r = int(np.argmin(loads))
            self._chunk_starts[r].append(len(self._queues[r]))
            self._queues[r].extend(range(pos, pos + size))
            loads[r] += (
                float(costs[pos:pos + size].sum())
                if costs is not None else float(size)
            )
            pos += size
            nchunks += 1
        self.nchunks = nchunks
        self._emit_reset(min_chunk=min_chunk, chunks=nchunks)

    def counter_traffic(self) -> int:
        return sum(
            1
            for r in range(self.nranks)
            for start in self._chunk_starts[r]
            if self._cursor[r] > start
        )


class WorkStealingScheduler(Scheduler):
    """Per-rank deques with deterministic rank-to-rank work stealing.

    Every rank starts with a contiguous block of the index space
    (cost-balanced boundaries when Schwarz work estimates are
    available) and pops grants off its own head.  A rank whose deque
    runs dry scans the other ranks in its seeded victim order
    (:func:`steal_victim_order`) and moves half of the first non-empty
    victim's remaining tail onto its own deque.  Tasks move, never
    copy, so the base class's exactly-once and ``fail_rank`` contracts
    hold unchanged; the only counter traffic is one transfer per steal.
    """

    schedule_name = "steal"

    def __init__(
        self,
        ntasks: int,
        nranks: int,
        *,
        costs: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(ntasks, nranks)
        self.seed = int(seed)
        self.steals = 0
        self.tasks_stolen = 0
        if costs is None:
            bounds = np.linspace(0, ntasks, nranks + 1).astype(int)
        else:
            costs = np.asarray(costs, dtype=np.float64)
            if costs.shape != (ntasks,):
                raise ValueError(
                    f"costs must have shape ({ntasks},); got {costs.shape}"
                )
            cum = np.concatenate([[0.0], np.cumsum(costs)])
            if cum[-1] <= 0.0:
                bounds = np.linspace(0, ntasks, nranks + 1).astype(int)
            else:
                targets = cum[-1] * np.arange(nranks + 1) / nranks
                bounds = np.searchsorted(cum, targets, side="left")
                bounds[0], bounds[-1] = 0, ntasks
                bounds = np.maximum.accumulate(bounds)
        for r in range(nranks):
            self._queues[r] = list(range(int(bounds[r]), int(bounds[r + 1])))
        self._victims = steal_victim_order(nranks, self.seed)
        self._emit_reset(seed=self.seed)

    def counter_traffic(self) -> int:
        return self.steals

    def next(self, rank: int) -> int | None:
        if (
            rank not in self._dead
            and self._cursor[rank] >= len(self._queues[rank])
        ):
            self._steal_into(rank)
        return super().next(rank)

    def _steal_into(self, rank: int) -> bool:
        for victim in self._victims[rank]:
            if victim in self._dead:
                continue
            queue = self._queues[victim]
            avail = len(queue) - self._cursor[victim]
            if avail <= 0:
                continue
            k = (avail + 1) // 2  # steal half the tail, rounded up
            stolen = queue[len(queue) - k:]
            del queue[len(queue) - k:]
            self._queues[rank].extend(stolen)
            self.steals += 1
            self.tasks_stolen += k
            registry = get_metrics()
            if registry is not None:
                registry.counter("dlb.steals", rank=rank).inc()
                registry.counter("dlb.tasks_stolen", rank=rank).inc(k)
            log = get_event_log()
            if log is not None:
                log.emit("dlb.steal", thief=rank, victim=victim, ntasks=k)
            return True
        return False


def make_scheduler(
    schedule: str,
    ntasks: int,
    nranks: int,
    *,
    costs: np.ndarray | None = None,
    policy: str = "round_robin",
    seed: int = 0,
    min_chunk: int = 1,
) -> Scheduler:
    """Instantiate a distribution strategy by ``--schedule`` name.

    ``policy`` only applies to ``schedule="dlb"`` (the pre-partition
    policy of the simulated counter); ``costs`` feeds the cost-weighted
    variants of every strategy and the ``cost_greedy`` DLB policy.
    """
    if schedule == "dlb":
        from repro.parallel.dlb import DynamicLoadBalancer

        return DynamicLoadBalancer(
            ntasks, nranks, policy=policy,
            costs=costs if policy == "cost_greedy" else None,
        )
    if schedule == "static":
        return StaticScheduler(ntasks, nranks, costs=costs)
    if schedule == "guided":
        return GuidedScheduler(ntasks, nranks, costs=costs, min_chunk=min_chunk)
    if schedule == "steal":
        return WorkStealingScheduler(ntasks, nranks, costs=costs, seed=seed)
    raise ValueError(
        f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
    )
