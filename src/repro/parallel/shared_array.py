"""Shared-array views and write-race detection.

Two layers live here:

* :class:`SharedNDArray` — a numpy view over a
  :class:`multiprocessing.shared_memory.SharedMemory` block, the view
  layer of the real-process execution backend
  (:mod:`repro.parallel.backend.process`): the parent allocates the
  density / Schwarz / per-rank Fock blocks once and every worker
  process maps the same physical pages.
* :class:`WriteTracker` — the simulated-backend race detector.  The
  paper's central correctness argument for the shared-Fock algorithm
  is that, within one OpenMP region between barriers, no two threads
  ever write the same Fock element: the direct ``F(k,l)`` updates touch
  disjoint ``(k,l)`` blocks because each ``kl`` iteration belongs to
  one thread, and the buffer flushes are row-partitioned.  The tracker
  turns that argument into a checkable invariant: algorithms report
  every shared write as ``(phase, thread, flat element indices)`` and
  the tracker raises :class:`RaceError` (or records the conflict) when
  two different threads write one element inside the same
  synchronization phase.
"""

from __future__ import annotations

import atexit
import os
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

#: Every live owner-side block, for the atexit sweep.  WeakSet: a block
#: that was closed and garbage-collected needs no sweeping.
_live_blocks: "weakref.WeakSet[SharedNDArray]" = weakref.WeakSet()


def _sweep_leaked_blocks() -> None:
    """Unlink owner blocks that were never closed (crash-path cleanup).

    A process that dies between allocating its shared matrices and the
    backend's ``shutdown()`` would otherwise leak ``/dev/shm`` segments
    until reboot — under a long-running job service that leak is
    cumulative and eventually fails *other* jobs with ``ENOSPC``.  The
    owner-pid guard matters: forked workers inherit this registry, and
    a worker's atexit must not unlink blocks its parent still maps.
    """
    for block in list(_live_blocks):
        if block._owner and block._owner_pid == os.getpid():
            block.close()


atexit.register(_sweep_leaked_blocks)


class SharedNDArray:
    """A numpy array backed by a named ``SharedMemory`` block.

    Created by the parent process (``create=True``); worker processes
    either inherit the object through ``fork`` (the mapping survives
    the fork, no reattach needed) or attach by name with
    ``SharedNDArray(name=..., shape=..., dtype=...)``.

    The parent owns the block's lifetime: call :meth:`close` with
    ``unlink=True`` exactly once when the backend shuts down.  Views
    handed out by :attr:`array` stay valid until then.  Owner blocks
    still live at interpreter exit are swept automatically (in the
    creating process only), so an abnormal teardown does not leak
    ``/dev/shm`` segments.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype | str = np.float64,
        *,
        name: str | None = None,
        create: bool = True,
    ) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(self.shape)) * self.dtype.itemsize)
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        else:
            if name is None:
                raise ValueError("attaching to an existing block needs a name")
            self._shm = shared_memory.SharedMemory(name=name)
        self._owner = create
        self._owner_pid = os.getpid()
        self._closed = False
        self.array = np.ndarray(
            self.shape, dtype=self.dtype, buffer=self._shm.buf
        )
        if create:
            self.array.fill(0)
            _live_blocks.add(self)

    @property
    def name(self) -> str:
        """OS name of the backing block (for attach-by-name workers)."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def fill(self, value: float) -> None:
        self.array.fill(value)

    def close(self, *, unlink: bool | None = None) -> None:
        """Release the mapping; the creating process also unlinks.

        Idempotent: the crash-path sweep and an orderly ``shutdown()``
        may both reach the same block.  A forked child closing an
        inherited owner block only unmaps — unlinking is reserved for
        the creating pid, which still needs the segment.
        """
        if self._closed:
            return
        self._closed = True
        _live_blocks.discard(self)
        self.array = None  # drop the exported view before unmapping
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external views
            pass
        want_unlink = unlink if unlink is not None else self._owner
        if want_unlink and self._owner_pid == os.getpid():
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class RaceError(RuntimeError):
    """Two threads wrote the same element between two barriers."""


@dataclass
class RaceReport:
    """One detected write-write conflict."""

    phase: int
    element: int
    threads: tuple[int, int]


class WriteTracker:
    """Tracks per-phase element ownership of a shared array.

    Parameters
    ----------
    nelements:
        Flat size of the shared array being guarded.
    strict:
        If true, a conflicting write raises :class:`RaceError`
        immediately; otherwise conflicts accumulate in :attr:`races`.
    """

    def __init__(self, nelements: int, *, strict: bool = False) -> None:
        self.nelements = nelements
        self.strict = strict
        self._owner = np.full(nelements, -1, dtype=np.int64)
        self._phase = 0
        self.races: list[RaceReport] = []
        self.writes_checked = 0

    @property
    def phase(self) -> int:
        """Current synchronization-phase counter."""
        return self._phase

    def barrier(self) -> None:
        """Advance to a new phase: element ownership resets."""
        self._phase += 1
        self._owner.fill(-1)

    def record(self, thread: int, flat_indices: np.ndarray) -> None:
        """Record a write by ``thread`` to the given flat elements."""
        idx = np.asarray(flat_indices).ravel()
        self.writes_checked += idx.size
        owners = self._owner[idx]
        conflict = (owners >= 0) & (owners != thread)
        if np.any(conflict):
            bad = idx[conflict]
            first = int(bad[0])
            report = RaceReport(
                self._phase, first, (int(self._owner[first]), thread)
            )
            self.races.append(report)
            if self.strict:
                raise RaceError(
                    f"phase {report.phase}: element {report.element} written "
                    f"by threads {report.threads[0]} and {report.threads[1]}"
                )
        self._owner[idx] = thread

    def record_block(
        self, thread: int, shape: tuple[int, int], rows: slice, cols: slice
    ) -> None:
        """Record a write to a 2-D block of a ``shape``-d shared matrix."""
        n_cols = shape[1]
        r = np.arange(rows.start, rows.stop)
        c = np.arange(cols.start, cols.stop)
        flat = (r[:, None] * n_cols + c[None, :]).ravel()
        self.record(thread, flat)

    @property
    def race_free(self) -> bool:
        """True when no conflicts were observed."""
        return not self.races
