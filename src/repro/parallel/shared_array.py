"""Write-race detection for simulated shared arrays.

The paper's central correctness argument for the shared-Fock algorithm
is that, within one OpenMP region between barriers, no two threads ever
write the same Fock element: the direct ``F(k,l)`` updates touch
disjoint ``(k,l)`` blocks because each ``kl`` iteration belongs to one
thread, and the buffer flushes are row-partitioned.  The
:class:`WriteTracker` turns that argument into a checkable invariant:
algorithms report every shared write as ``(phase, thread, flat element
indices)`` and the tracker raises :class:`RaceError` (or records the
conflict) when two different threads write one element inside the same
synchronization phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class RaceError(RuntimeError):
    """Two threads wrote the same element between two barriers."""


@dataclass
class RaceReport:
    """One detected write-write conflict."""

    phase: int
    element: int
    threads: tuple[int, int]


class WriteTracker:
    """Tracks per-phase element ownership of a shared array.

    Parameters
    ----------
    nelements:
        Flat size of the shared array being guarded.
    strict:
        If true, a conflicting write raises :class:`RaceError`
        immediately; otherwise conflicts accumulate in :attr:`races`.
    """

    def __init__(self, nelements: int, *, strict: bool = False) -> None:
        self.nelements = nelements
        self.strict = strict
        self._owner = np.full(nelements, -1, dtype=np.int64)
        self._phase = 0
        self.races: list[RaceReport] = []
        self.writes_checked = 0

    @property
    def phase(self) -> int:
        """Current synchronization-phase counter."""
        return self._phase

    def barrier(self) -> None:
        """Advance to a new phase: element ownership resets."""
        self._phase += 1
        self._owner.fill(-1)

    def record(self, thread: int, flat_indices: np.ndarray) -> None:
        """Record a write by ``thread`` to the given flat elements."""
        idx = np.asarray(flat_indices).ravel()
        self.writes_checked += idx.size
        owners = self._owner[idx]
        conflict = (owners >= 0) & (owners != thread)
        if np.any(conflict):
            bad = idx[conflict]
            first = int(bad[0])
            report = RaceReport(
                self._phase, first, (int(self._owner[first]), thread)
            )
            self.races.append(report)
            if self.strict:
                raise RaceError(
                    f"phase {report.phase}: element {report.element} written "
                    f"by threads {report.threads[0]} and {report.threads[1]}"
                )
        self._owner[idx] = thread

    def record_block(
        self, thread: int, shape: tuple[int, int], rows: slice, cols: slice
    ) -> None:
        """Record a write to a 2-D block of a ``shape``-d shared matrix."""
        n_cols = shape[1]
        r = np.arange(rows.start, rows.stop)
        c = np.arange(cols.start, cols.stop)
        flat = (r[:, None] * n_cols + c[None, :]).ravel()
        self.record(thread, flat)

    @property
    def race_free(self) -> bool:
        """True when no conflicts were observed."""
        return not self.races
