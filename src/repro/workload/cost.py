"""Per-job cost prediction for batch scheduling.

The batch scheduler has to rank thousands of jobs *before* running any
of them, so the estimate must be cheap: no basis construction, no
integral screening — just the manifest entry's XYZ text and basis name.
We reuse the perfsim shell-class machinery
(:data:`~repro.perfsim.cost_model.SHELL_CLASSES`,
:func:`~repro.perfsim.cost_model.eri_quartet_units`): count shell
classes per element from the geometry, then sum quartet work over the
O(classes^2) pair-class product — the same arithmetic the simulator
uses for the paper's graphene workloads, here applied per job.

Absolute accuracy does not matter for scheduling; *ordering* does.  A
water/6-31G(d) job must rank heavier than water/STO-3G and lighter
than methane/6-31G(d), which shell-class counting gets right by
construction.
"""

from __future__ import annotations

from functools import lru_cache

from repro.perfsim.cost_model import (
    CostModel,
    SHELL_CLASSES,
    eri_quartet_units,
)
from repro.service.jobs import JobSpec

#: Elements modelled with a single composite S shell (no valence L).
_LIGHT_ELEMENTS = {"H", "HE"}


def _basis_is_polarized(basis: str) -> bool:
    """Does the basis add d polarization shells on heavy atoms?"""
    b = basis.lower()
    return "*" in b or "(d" in b


def _element_symbols(xyz: str) -> list[str]:
    """Element symbols from XYZ text, tolerating a count/comment header."""
    symbols: list[str] = []
    for line in xyz.strip().split("\n"):
        parts = line.split()
        if len(parts) < 4:
            continue  # count line, comment line, blank
        try:
            [float(p) for p in parts[1:4]]
        except ValueError:
            continue
        symbols.append(parts[0].capitalize())
    return symbols


@lru_cache(maxsize=4096)
def _units_for(symbols: tuple[str, ...], basis: str) -> float:
    """ERI work units per SCF cycle for one (geometry, basis) system."""
    polarized = _basis_is_polarized(basis)
    shells: list[str] = []
    for symbol in symbols:
        if symbol.upper() in _LIGHT_ELEMENTS:
            shells.append("S")
        else:
            shells.extend(("S", "L"))
            if polarized:
                shells.append("D")
    angular = {"S": 0, "L": 1, "D": 2}
    # Pair classes: every unordered shell pair is a bra; quartets are
    # bra x ket over those pairs.  O(nshell^2) pairs is fine here — the
    # molecules in a throughput manifest are small; the paper's giant
    # graphene sheets go through perfsim's Workload machinery instead.
    pairs: list[tuple[int, int, int]] = []  # (nf, np, l) per pair
    for i, a in enumerate(shells):
        nf_a, np_a = SHELL_CLASSES[a]
        for b in shells[i:]:
            nf_b, np_b = SHELL_CLASSES[b]
            pairs.append((nf_a * nf_b, np_a * np_b,
                          angular[a] + angular[b]))
    total = 0.0
    for nf_bra, np_bra, l_bra in pairs:
        for nf_ket, np_ket, l_ket in pairs:
            total += eri_quartet_units(nf_bra, np_bra, l_bra,
                                       nf_ket, np_ket, l_ket)
    # Permutational symmetry: the real kernel computes unique quartets.
    return total / 2.0


def estimate_job_units(spec: JobSpec) -> float:
    """Predicted total ERI work units for one job (all SCF cycles)."""
    symbols = tuple(_element_symbols(spec.xyz))
    if not symbols:
        return 1.0  # unparseable geometry: rank it, don't crash on it
    cycles = spec.max_iterations or CostModel().scf_iterations
    return _units_for(symbols, spec.basis) * cycles


def estimate_job_seconds(spec: JobSpec,
                         model: CostModel | None = None) -> float:
    """Predicted single-thread wall seconds for one job.

    With the default (uncalibrated) model this is ordering-accurate,
    not clock-accurate; pass
    :func:`~repro.perfsim.cost_model.calibrated_cost_model` for
    paper-anchored absolute numbers.
    """
    model = model or CostModel()
    units = estimate_job_units(spec)
    # Parallel resources divide the per-job wall (perfect-scaling
    # assumption — good enough for ranking jobs against each other).
    workers = max(1, spec.nranks * spec.nthreads)
    return units * model.seconds_per_unit / workers
