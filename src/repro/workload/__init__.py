"""Many-molecule throughput pipeline: manifests, batch plans, manager.

The paper benchmarks one big molecule per run; the service north-star
is the opposite regime — heavy traffic of many mixed-size jobs, where
the win comes from *amortization*: jobs sharing a molecule/basis reuse
the worker's warm setup cache and its cross-job ERI quartet pool, so a
bin of N same-system jobs computes its integrals roughly once instead
of N times.  This package turns a manifest of hundreds–thousands of
jobs into an execution plan that maximizes exactly that reuse:

* :mod:`repro.workload.manifest` — NDJSON/TOML manifest parsing into
  validated :class:`~repro.service.jobs.JobSpec` lists, with typed
  :class:`~repro.service.errors.ManifestError` diagnostics;
* :mod:`repro.workload.cost` — per-job cost prediction from the
  perfsim cost model (shell-class work units, no basis construction);
* :mod:`repro.workload.scheduler` — pluggable :class:`BatchScheduler`
  policies (``fifo`` / ``binned`` / ``sjf`` / ``auto``) producing
  deterministic, starvation-bounded :class:`BatchPlan` objects —
  the batch-level mirror of the per-run task-distribution strategies
  in :mod:`repro.perfsim.workload`;
* :mod:`repro.workload.manager` — :class:`WorkloadManager`: drive a
  plan through a live service fleet and report fleet-level throughput
  (jobs/s, queue-wait p95, cache amortization) as
  ``BENCH_throughput.json`` plus a run-registry record.

Surfaced as ``repro batch <manifest>`` and ``repro serve --manifest``.
"""

from repro.workload.cost import estimate_job_seconds, estimate_job_units
from repro.workload.manager import ThroughputReport, WorkloadManager
from repro.workload.manifest import (
    MOLECULES,
    ManifestError,
    load_manifest,
    manifest_fingerprint,
    parse_manifest,
)
from repro.workload.scheduler import (
    BATCH_POLICIES,
    DEFAULT_WINDOW,
    Batch,
    BatchPlan,
    BatchScheduler,
    make_batch_scheduler,
)

__all__ = [
    "BATCH_POLICIES",
    "Batch",
    "BatchPlan",
    "BatchScheduler",
    "DEFAULT_WINDOW",
    "ManifestError",
    "MOLECULES",
    "ThroughputReport",
    "WorkloadManager",
    "estimate_job_seconds",
    "estimate_job_units",
    "load_manifest",
    "make_batch_scheduler",
    "manifest_fingerprint",
    "parse_manifest",
]
