"""Workload manifests: NDJSON / TOML files describing many SCF jobs.

A manifest is the unit of *throughput* work: hundreds–thousands of job
entries (mixed molecules, bases, algorithms, backends) that the batch
scheduler turns into a plan and the service fleet executes.  Two
formats share one entry schema:

``*.ndjson`` / ``*.jsonl`` / ``*.json``
    One JSON object per line; blank lines and ``#`` comment lines are
    skipped.  Errors carry ``<file>:<line>`` locators.

``*.toml``
    An optional ``[defaults]`` table merged under every entry, plus one
    ``[[job]]`` table per job.  Errors carry ``<file>: job[<k>]``
    locators.

Entry schema = :class:`~repro.service.jobs.JobSpec` fields, except the
geometry, which is exactly one of:

``xyz``        inline XYZ text (as on the wire);
``molecule``   a named built-in (``water``, ``h2``, ``methane``);
``xyz_file``   a path to an ``.xyz`` file, relative to the manifest.

Plus ``repeat = N`` to expand one entry into N identical jobs — the
idiom for throughput manifests, where reuse across identical jobs is
the whole point.  Entries without a ``tag`` get ``batch-%04d`` so every
job in a thousand-job run is addressable in ``repro jobs`` output.

All malformations raise :class:`~repro.service.errors.ManifestError`
(a typed wire error) with a locator pinpointing the offending entry.
"""

from __future__ import annotations

import hashlib
import json
import tomllib
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from repro.chem.molecule import Molecule, hydrogen_molecule, methane, water
from repro.service.errors import JobSpecError, ManifestError
from repro.service.jobs import JobSpec

#: Named geometries a manifest entry may reference via ``molecule = ...``.
MOLECULES: dict[str, Callable[[], Molecule]] = {
    "water": water,
    "h2": hydrogen_molecule,
    "methane": methane,
}

#: Entry keys that are manifest syntax, not JobSpec fields.
_ENTRY_ONLY = ("molecule", "xyz_file", "repeat")

_NDJSON_SUFFIXES = {".ndjson", ".jsonl", ".json"}
_TOML_SUFFIXES = {".toml"}


def _entry_to_specs(entry: dict[str, Any], *, where: str,
                    base_dir: Path | None) -> list[JobSpec]:
    """Validate one manifest entry and expand it into its JobSpecs."""
    if not isinstance(entry, dict):
        raise ManifestError(f"{where}: entry must be an object/table, "
                            f"got {type(entry).__name__}")
    entry = dict(entry)
    geometry = [k for k in ("xyz", "molecule", "xyz_file") if k in entry]
    if len(geometry) != 1:
        raise ManifestError(
            f"{where}: exactly one of xyz / molecule / xyz_file is "
            f"required, got {geometry or 'none'}"
        )
    repeat = entry.pop("repeat", 1)
    if not isinstance(repeat, int) or isinstance(repeat, bool) or repeat < 1:
        raise ManifestError(f"{where}: repeat must be an integer >= 1, "
                            f"got {repeat!r}")
    name = entry.pop("molecule", None)
    if name is not None:
        if name not in MOLECULES:
            raise ManifestError(
                f"{where}: unknown molecule {name!r}; "
                f"choose from {sorted(MOLECULES)}"
            )
        entry["xyz"] = MOLECULES[name]().to_xyz()
    xyz_file = entry.pop("xyz_file", None)
    if xyz_file is not None:
        path = Path(xyz_file)
        if not path.is_absolute() and base_dir is not None:
            path = base_dir / path
        try:
            entry["xyz"] = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ManifestError(f"{where}: cannot read xyz_file "
                                f"{str(path)!r}: {exc}") from exc
    try:
        spec = JobSpec.from_dict(entry)
        spec.validate()
    except JobSpecError as exc:
        raise ManifestError(f"{where}: {exc}") from exc
    return [spec] * repeat


def _parse_ndjson(text: str, *, source: str,
                  base_dir: Path | None) -> list[JobSpec]:
    specs: list[JobSpec] = []
    for lineno, line in enumerate(text.split("\n"), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{source}:{lineno}"
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ManifestError(f"{where}: invalid JSON: {exc}") from exc
        specs.extend(_entry_to_specs(entry, where=where, base_dir=base_dir))
    return specs


def _parse_toml(text: str, *, source: str,
                base_dir: Path | None) -> list[JobSpec]:
    try:
        doc = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ManifestError(f"{source}: invalid TOML: {exc}") from exc
    defaults = doc.pop("defaults", {})
    if not isinstance(defaults, dict):
        raise ManifestError(f"{source}: [defaults] must be a table")
    jobs = doc.pop("job", None)
    if doc:
        raise ManifestError(
            f"{source}: unknown top-level key(s): {sorted(doc)} "
            "(a manifest holds [defaults] and [[job]] tables only)"
        )
    if not isinstance(jobs, list) or not jobs:
        raise ManifestError(f"{source}: no [[job]] tables found")
    specs: list[JobSpec] = []
    for k, entry in enumerate(jobs):
        where = f"{source}: job[{k}]"
        if not isinstance(entry, dict):
            raise ManifestError(f"{where}: must be a table")
        merged = {**defaults, **entry}
        specs.extend(_entry_to_specs(merged, where=where, base_dir=base_dir))
    return specs


def _autotag(specs: list[JobSpec]) -> list[JobSpec]:
    """Give untagged jobs a stable ``batch-%04d`` position tag."""
    return [
        spec if spec.tag is not None
        else replace(spec, tag=f"batch-{i:04d}")
        for i, spec in enumerate(specs)
    ]


def parse_manifest(text: str, *, fmt: str = "ndjson", source: str =
                   "<manifest>", base_dir: str | Path | None = None,
                   ) -> list[JobSpec]:
    """Parse manifest *text* into validated, auto-tagged JobSpecs.

    ``fmt`` is ``"ndjson"`` or ``"toml"``; ``source`` labels error
    locators; ``base_dir`` anchors relative ``xyz_file`` paths.
    """
    base = Path(base_dir) if base_dir is not None else None
    if fmt == "ndjson":
        specs = _parse_ndjson(text, source=source, base_dir=base)
    elif fmt == "toml":
        specs = _parse_toml(text, source=source, base_dir=base)
    else:
        raise ManifestError(f"unknown manifest format {fmt!r}; "
                            "choose ndjson or toml")
    if not specs:
        raise ManifestError(f"{source}: manifest holds no jobs")
    return _autotag(specs)


def load_manifest(path: str | Path) -> list[JobSpec]:
    """Read and parse a manifest file, inferring the format by suffix."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in _NDJSON_SUFFIXES:
        fmt = "ndjson"
    elif suffix in _TOML_SUFFIXES:
        fmt = "toml"
    else:
        raise ManifestError(
            f"{path}: unknown manifest suffix {suffix!r}; use one of "
            f"{sorted(_NDJSON_SUFFIXES | _TOML_SUFFIXES)}"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc
    return parse_manifest(text, fmt=fmt, source=path.name,
                          base_dir=path.parent)


def manifest_fingerprint(specs: list[JobSpec]) -> str:
    """16-hex digest of the expanded job list, order included.

    Two manifests that expand to the same jobs in the same order get
    the same fingerprint regardless of format (NDJSON vs TOML) or how
    ``repeat`` / ``[defaults]`` spelled them — this is what batch plans
    and the daemon's exactly-once intake marker key on.
    """
    h = hashlib.sha256()
    for spec in specs:
        h.update(json.dumps(spec.to_dict(), sort_keys=True).encode())
        h.update(b"\n")
    return h.hexdigest()[:16]
