"""WorkloadManager: drive a batch plan through a live service fleet.

The manager owns the *client side* of a batch run: plan the manifest
with a :class:`~repro.workload.scheduler.BatchScheduler`, submit the
jobs in plan order (the durable queue dispatches FIFO over submission
order, so plan order *is* execution order), follow the fleet via bulk
status polls, and distil the finished run into a
:class:`ThroughputReport` — per-job records plus the fleet-level
figures the paper's scaling story is judged by: jobs/s, queue-wait
p95, and the cache amortization the batch plan existed to create.

The report lands in three places: ``BENCH_throughput.json`` (the
``repro compare``-gated benchmark artifact), the PR-6 run registry
(kind ``batch``), and the returned object for the CLI to render.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.service.client import JobClient
from repro.service.errors import ServiceOverloaded
from repro.service.jobs import TERMINAL_STATES, JobSpec
from repro.workload.scheduler import BatchPlan, make_batch_scheduler

#: Between bulk status polls while following the fleet.
DEFAULT_POLL_S = 0.2

#: Backoff while the admission bound sheds our submissions.
_OVERLOAD_RETRY_S = 0.2


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (no numpy needed for a report)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class ThroughputReport:
    """Everything a finished batch run produced, JSON-serializable."""

    plan: BatchPlan
    manifest_path: str | None
    jobs: list[dict[str, Any]]  # per-job records, plan order
    wall_s: float
    submit_wall_s: float
    metrics: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metrics:
            self.metrics = self._compute_metrics()

    def _compute_metrics(self) -> dict[str, Any]:
        done = [j for j in self.jobs if j["state"] == "done"]
        waits = [j["queue_wait_s"] for j in done
                 if j.get("queue_wait_s") is not None]
        runs = [j["run_s"] for j in done if j.get("run_s") is not None]
        warm = sum(1 for j in done if j.get("warm_setup"))
        cold = len(done) - warm
        eri_hits = sum(j.get("eri_cache_hits") or 0 for j in done)
        eri_misses = sum(j.get("eri_cache_misses") or 0 for j in done)
        jobs_per_s = (len(done) / self.wall_s) if self.wall_s > 0 else 0.0
        return {
            "jobs_total": len(self.jobs),
            "jobs_done": len(done),
            "jobs_failed": sum(1 for j in self.jobs
                               if j["state"] == "failed"),
            "n_batches": len(self.plan.batches),
            "wall_s": self.wall_s,
            "submit_wall_s": self.submit_wall_s,
            "jobs_per_s": jobs_per_s,
            "queue_wait_p50_s": _percentile(waits, 50.0),
            "queue_wait_p95_s": _percentile(waits, 95.0),
            "run_total_s": sum(runs),
            "warm_setups": warm,
            "cold_setups": cold,
            # Jobs served per expensive (cold) setup: 1.0 means every
            # job paid full price; N same-system jobs batched together
            # push it toward N.  The headline amortization figure.
            "cache_amortization_ratio": (len(done) / cold if cold
                                         else float(len(done))),
            "eri_cache_hits": eri_hits,
            "eri_cache_misses": eri_misses,
            "eri_cache_hit_rate": (eri_hits / (eri_hits + eri_misses)
                                   if (eri_hits + eri_misses) else 0.0),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "batch-throughput",
            "manifest": self.manifest_path,
            "policy": self.plan.policy,
            "seed": self.plan.seed,
            "window": self.plan.window,
            "plan_fingerprint": self.plan.fingerprint,
            "metrics": self.metrics,
            "jobs": self.jobs,
        }

    def write(self, path: str | Path) -> Path:
        """Write ``BENCH_throughput.json``-style output."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def _job_record(job: dict[str, Any], *, index: int, key: str,
                batch: int) -> dict[str, Any]:
    """Distil one terminal public job dict into a per-job report row."""
    result = job.get("result") or {}
    return {
        "manifest_index": index,
        "batch": batch,
        "setup_key": key,
        "id": job["id"],
        "tag": job.get("tag"),
        "state": job["state"],
        "attempt": job.get("attempt"),
        "error_type": job.get("error_type"),
        "energy": result.get("energy"),
        "iterations": result.get("iterations"),
        "converged": result.get("converged"),
        "warm_setup": result.get("warm_setup"),
        "eri_cache_preloaded": result.get("eri_cache_preloaded"),
        "eri_cache_hits": result.get("eri_cache_hits"),
        "eri_cache_misses": result.get("eri_cache_misses"),
        "queue_wait_s": result.get("queue_wait_s"),
        "run_s": result.get("run_s"),
        "total_s": result.get("total_s"),
        "run_id": job.get("run_id"),
        "trace_id": job.get("trace_id"),
    }


class WorkloadManager:
    """Plan a manifest, run it through the fleet, report throughput."""

    def __init__(
        self,
        client: JobClient,
        *,
        policy: str = "binned",
        seed: int = 0,
        window: int | None = None,
        poll_s: float = DEFAULT_POLL_S,
        registry: Any | None = None,
    ) -> None:
        self.client = client
        self.scheduler = make_batch_scheduler(policy, seed=seed,
                                              window=window)
        self.poll_s = poll_s
        self.registry = registry

    # -- planning -------------------------------------------------------------

    def plan(self, specs: Sequence[JobSpec]) -> BatchPlan:
        return self.scheduler.plan(specs)

    # -- submission -----------------------------------------------------------

    def submit_plan(self, specs: Sequence[JobSpec], plan: BatchPlan,
                    *, timeout_s: float = 600.0) -> list[str]:
        """Submit every job in plan order; returns job ids, plan order.

        :class:`~repro.service.errors.ServiceOverloaded` rejections are
        retried with a fixed backoff until ``timeout_s`` — admission
        control pushing back on a big manifest is flow control, not
        failure.  Order is preserved: a shed job is resubmitted before
        any later job, so the FIFO queue still sees plan order.
        """
        deadline = time.monotonic() + timeout_s
        ids: list[str] = []
        for index in plan.order:
            while True:
                try:
                    ids.append(self.client.submit(specs[index])["id"])
                    break
                except ServiceOverloaded:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(_OVERLOAD_RETRY_S)
        return ids

    # -- following ------------------------------------------------------------

    def follow(self, job_ids: Sequence[str], *,
               timeout_s: float = 600.0) -> dict[str, dict[str, Any]]:
        """Poll bulk status until every job is terminal; id -> record."""
        want = set(job_ids)
        deadline = time.monotonic() + timeout_s
        while True:
            listing = self.client.status()
            seen = {j["id"]: j for j in listing.get("jobs", [])
                    if j["id"] in want}
            if (len(seen) == len(want)
                    and all(j["state"] in TERMINAL_STATES
                            for j in seen.values())):
                return seen
            if time.monotonic() > deadline:
                pending = sorted(
                    want - {i for i, j in seen.items()
                            if j["state"] in TERMINAL_STATES})
                raise TimeoutError(
                    f"{len(pending)} batch job(s) not terminal after "
                    f"{timeout_s:g}s: {', '.join(pending[:5])}"
                )
            time.sleep(self.poll_s)

    # -- the whole pipeline ---------------------------------------------------

    def run(self, specs: Sequence[JobSpec], *,
            manifest_path: str | None = None,
            timeout_s: float = 600.0,
            output: str | Path | None = None) -> ThroughputReport:
        """Plan, submit, follow, and report one manifest."""
        specs = list(specs)
        plan = self.plan(specs)
        started = time.perf_counter()
        ids = self.submit_plan(specs, plan, timeout_s=timeout_s)
        submit_wall = time.perf_counter() - started
        records = self.follow(ids, timeout_s=timeout_s)
        wall = time.perf_counter() - started

        index_to_batch = {}
        for b, batch in enumerate(plan.batches):
            for i in batch.jobs:
                index_to_batch[i] = b
        jobs = [
            _job_record(records[job_id], index=index,
                        key=specs[index].setup_key(),
                        batch=index_to_batch[index])
            for index, job_id in zip(plan.order, ids)
        ]
        report = ThroughputReport(plan=plan, manifest_path=manifest_path,
                                  jobs=jobs, wall_s=wall,
                                  submit_wall_s=submit_wall)
        if output is not None:
            report.write(output)
        self._register(report)
        return report

    def _register(self, report: ThroughputReport) -> None:
        """Record the batch run in the PR-6 registry, when given one."""
        if self.registry is None:
            return
        handle = self.registry.register(
            "batch",
            config={
                "manifest": report.manifest_path,
                "policy": report.plan.policy,
                "seed": report.plan.seed,
                "window": report.plan.window,
                "plan_fingerprint": report.plan.fingerprint,
                "n_jobs": len(report.jobs),
                "n_batches": len(report.plan.batches),
            },
        )
        m = report.metrics
        failed = m["jobs_failed"]
        handle.finalize(
            status="completed" if not failed else "failed",
            metrics={k: v for k, v in m.items()
                     if isinstance(v, (int, float))},
            summary={
                "policy": report.plan.policy,
                "jobs_done": m["jobs_done"],
                "jobs_total": m["jobs_total"],
                "wall_s": m["wall_s"],
                "jobs_per_s": m["jobs_per_s"],
                "cache_amortization_ratio":
                    m["cache_amortization_ratio"],
            },
        )
