"""Pluggable batch schedulers: manifest order in, execution plan out.

The daemon's durable queue dispatches strictly FIFO over submission
order, so a batch plan *is* a submission order: the scheduler's whole
job is to permute manifest indices so that jobs sharing a setup key
(molecule + basis + charge) run back-to-back and hit the worker's warm
caches — then group those runs into :class:`Batch` records for
reporting.  This mirrors the per-run task-distribution strategies of
:mod:`repro.perfsim.workload` one level up: there tasks are shell
quartets and the resource is a core; here tasks are whole SCF jobs and
the resource is a warm worker.

Policies (:data:`BATCH_POLICIES`):

``fifo``
    Manifest order, untouched.  The baseline every other policy is
    benchmarked against.
``binned``
    Group same-setup-key jobs within each window, bins ordered by first
    occurrence.  Maximizes cache reuse with zero cost modelling.
``sjf``
    Shortest-job-first within each window, by the perfsim cost
    estimate.  Minimizes mean queue wait on skewed manifests.
``auto``
    Setup-key bins ordered by ascending predicted *bin* cost — binned's
    cache amortization plus sjf's wait profile, driven by
    :mod:`repro.workload.cost` predictions.

Two properties hold for every policy and are enforced by the property
suite (``tests/test_workload_properties.py``):

**Determinism.**  Plans are pure functions of (manifest, policy, seed,
window): no clocks, no OS entropy.  Cost ties are broken by a seeded
±1% multiplicative jitter derived from ``sha256(seed, index)``, so the
same seed always yields the identical plan and different seeds break
ties differently — never by dict order or float coincidence.

**Bounded displacement (no starvation).**  Reordering happens only
inside consecutive ``window``-sized chunks of manifest order, so no
job moves more than ``window`` positions from where the manifest put
it: ``|plan_position - manifest_position| < window``.  A thousand-job
manifest cannot starve its first entry behind 999 shorter ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.service.errors import ManifestError
from repro.service.jobs import JobSpec
from repro.workload.cost import estimate_job_seconds
from repro.workload.manifest import manifest_fingerprint

#: Registered policy names, in documentation order.
BATCH_POLICIES = ("fifo", "binned", "sjf", "auto")

#: Default reordering window (the starvation bound).
DEFAULT_WINDOW = 256


def _jitter(seed: int, index: int) -> float:
    """Deterministic multiplicative tie-breaker in [0.99, 1.01]."""
    h = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    frac = int.from_bytes(h[:8], "big") / 2**64
    return 0.99 + 0.02 * frac


@dataclass(frozen=True)
class Batch:
    """A maximal run of consecutive same-setup-key jobs in the plan."""

    key: str  # JobSpec.setup_key() shared by every job in the batch
    jobs: tuple[int, ...]  # manifest indices, in execution order

    def to_dict(self) -> dict:
        return {"key": self.key, "jobs": list(self.jobs)}


@dataclass(frozen=True)
class BatchPlan:
    """A deterministic execution plan over one manifest.

    ``order`` (manifest indices in submission order) is what the
    daemon/manager actually executes; ``batches`` is the same order
    segmented into warm-cache runs for reporting.  ``fingerprint``
    covers the manifest fingerprint *and* every plan parameter, so it
    doubles as the daemon's exactly-once intake marker: a restarted
    daemon re-plans, compares fingerprints, and skips re-enqueueing.
    """

    policy: str
    seed: int
    window: int
    manifest: str  # manifest_fingerprint(specs)
    batches: tuple[Batch, ...]
    order: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        order = tuple(i for b in self.batches for i in b.jobs)
        object.__setattr__(self, "order", order)

    @property
    def fingerprint(self) -> str:
        payload = json.dumps(
            {"policy": self.policy, "seed": self.seed,
             "window": self.window, "manifest": self.manifest,
             "order": list(self.order)},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "seed": self.seed,
            "window": self.window,
            "manifest": self.manifest,
            "fingerprint": self.fingerprint,
            "n_jobs": len(self.order),
            "n_batches": len(self.batches),
            "order": list(self.order),
            "batches": [b.to_dict() for b in self.batches],
        }


class BatchScheduler:
    """Base scheduler: windowing, batching, and the plan envelope.

    Subclasses override :meth:`_order_window` to permute one window's
    worth of ``(manifest_index, spec)`` pairs.  The base class applies
    it chunk by chunk (the displacement bound), stitches windows back
    together, and segments the result into maximal same-key runs.
    """

    #: Registered policy name (set by subclasses).
    name = "fifo"

    def __init__(self, *, seed: int = 0, window: int | None = None,
                 estimator: Callable[[JobSpec], float] | None = None,
                 ) -> None:
        self.seed = int(seed)
        self.window = DEFAULT_WINDOW if window is None else int(window)
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        self.estimator = estimator or estimate_job_seconds

    # -- policy hook ----------------------------------------------------------

    def _order_window(
        self, pairs: list[tuple[int, JobSpec]]
    ) -> list[tuple[int, JobSpec]]:
        """Permute one window of (manifest index, spec) pairs."""
        return pairs

    def _cost(self, index: int, spec: JobSpec) -> float:
        """Seeded-jittered cost estimate (the deterministic tie-break)."""
        return self.estimator(spec) * _jitter(self.seed, index)

    # -- planning -------------------------------------------------------------

    def plan(self, specs: Sequence[JobSpec]) -> BatchPlan:
        """Build the deterministic plan for one expanded manifest."""
        specs = list(specs)
        if not specs:
            raise ManifestError("cannot plan an empty manifest")
        ordered: list[tuple[int, JobSpec]] = []
        for start in range(0, len(specs), self.window):
            chunk = [(i, specs[i])
                     for i in range(start, min(start + self.window,
                                               len(specs)))]
            reordered = self._order_window(chunk)
            if sorted(i for i, _ in reordered) != [i for i, _ in chunk]:
                raise RuntimeError(
                    f"{type(self).__name__}._order_window changed the "
                    "window's membership; it may only permute"
                )
            ordered.extend(reordered)
        batches: list[Batch] = []
        run: list[int] = []
        run_key = ""
        for index, spec in ordered:
            key = spec.setup_key()
            if key != run_key and run:
                batches.append(Batch(key=run_key, jobs=tuple(run)))
                run = []
            run_key = key
            run.append(index)
        if run:
            batches.append(Batch(key=run_key, jobs=tuple(run)))
        return BatchPlan(
            policy=self.name, seed=self.seed, window=self.window,
            manifest=manifest_fingerprint(list(specs)),
            batches=tuple(batches),
        )


class FifoScheduler(BatchScheduler):
    """Manifest order, untouched — the throughput baseline."""

    name = "fifo"


class SizeBinnedScheduler(BatchScheduler):
    """Group same-setup-key jobs; bins ordered by first occurrence."""

    name = "binned"

    def _order_window(self, pairs):
        bins: dict[str, list[tuple[int, JobSpec]]] = {}
        first: dict[str, int] = {}
        for index, spec in pairs:
            key = spec.setup_key()
            bins.setdefault(key, []).append((index, spec))
            first.setdefault(key, index)
        return [pair
                for key in sorted(bins, key=first.__getitem__)
                for pair in bins[key]]


class ShortestJobFirstScheduler(BatchScheduler):
    """Ascending predicted job cost; ties broken by manifest index."""

    name = "sjf"

    def _order_window(self, pairs):
        return sorted(pairs,
                      key=lambda p: (self._cost(p[0], p[1]), p[0]))


class AutoScheduler(BatchScheduler):
    """Setup-key bins, ordered by ascending predicted *bin* cost.

    The cost-model-driven compromise: binned's cache amortization with
    sjf's queue-wait profile.  A bin's cost is the sum of its members'
    jittered estimates, so many cheap repeats of one system still run
    before one expensive singleton when the totals say so.
    """

    name = "auto"

    def _order_window(self, pairs):
        bins: dict[str, list[tuple[int, JobSpec]]] = {}
        cost: dict[str, float] = {}
        first: dict[str, int] = {}
        for index, spec in pairs:
            key = spec.setup_key()
            bins.setdefault(key, []).append((index, spec))
            cost[key] = cost.get(key, 0.0) + self._cost(index, spec)
            first.setdefault(key, index)
        order = sorted(bins, key=lambda k: (cost[k], first[k]))
        return [pair for key in order for pair in bins[key]]


_SCHEDULERS: dict[str, type[BatchScheduler]] = {
    cls.name: cls
    for cls in (FifoScheduler, SizeBinnedScheduler,
                ShortestJobFirstScheduler, AutoScheduler)
}
assert tuple(_SCHEDULERS) == BATCH_POLICIES


def make_batch_scheduler(policy: str, *, seed: int = 0,
                         window: int | None = None,
                         estimator: Callable[[JobSpec], float] | None = None,
                         ) -> BatchScheduler:
    """Instantiate a registered policy by name.

    Raises :class:`~repro.service.errors.ManifestError` for unknown
    names so CLI/daemon manifest intake reports it as the same typed
    error family as a broken manifest file.
    """
    try:
        cls = _SCHEDULERS[policy]
    except KeyError:
        raise ManifestError(
            f"unknown batch policy {policy!r}; "
            f"choose from {', '.join(BATCH_POLICIES)}"
        ) from None
    return cls(seed=seed, window=window, estimator=estimator)
