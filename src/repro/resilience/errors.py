"""Typed errors of the resilience subsystem.

Every failure mode the fault-tolerant SCF stack can surface has its own
exception class so callers can react programmatically: restart from a
checkpoint on :class:`SCFConvergenceError`, re-launch with a different
geometry on :class:`RankLostError`, or reject a bad fault plan at
construction time via :class:`FaultSpecError`.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class of all resilience-layer errors."""


class FaultSpecError(ValueError, ResilienceError):
    """A fault-plan specification is malformed or out of range."""


class RankLostError(ResilienceError):
    """A rank failure could not be recovered (e.g. no survivors left)."""


class CorruptContributionError(ResilienceError):
    """A reduction contribution contained NaN/Inf and no retransmission
    path was available."""


class NonFiniteDensityError(ResilienceError):
    """A density (or Fock) matrix went NaN/Inf; the diagnostic names the
    first offending SCF cycle or Fock build."""


class CheckpointError(ResilienceError):
    """A checkpoint file is missing, malformed, or inconsistent with the
    run trying to restart from it."""


class SCFConvergenceError(ResilienceError):
    """The SCF failed to converge (or every recovery stage was
    exhausted).

    Attributes
    ----------
    result:
        The partial :class:`~repro.scf.rhf.SCFResult` (or
        :class:`~repro.scf.uhf.UHFResult`) at the point of failure —
        iterations so far, last energy, last density — so callers can
        inspect the trace or restart instead of losing the run.
    stages_applied:
        Names of the convergence-recovery stages that were attempted
        before giving up (empty when recovery was not enabled).
    """

    def __init__(self, message: str, result=None, stages_applied=()) -> None:
        super().__init__(message)
        self.result = result
        self.stages_applied = tuple(stages_applied)
