"""Deterministic fault injection for the simulated parallel runtime.

At the paper's headline scale (3,000 KNL nodes / 192,000 cores) rank
failures, stragglers, and corrupted messages are routine, so the
simulated runtime grows a first-class fault model.  A :class:`FaultPlan`
is a *seeded, deterministic* schedule of :class:`FaultEvent`\\ s — no
wall-clock randomness — so every chaos experiment is exactly
reproducible:

``kill``
    The rank dies during Fock build ``cycle`` after completing ``after``
    DLB tasks.  Its unfinished grants are withdrawn from the balancer,
    re-queued, and claimed by the surviving ranks round-robin.  Recovery
    preserves the failed rank's original grant order and reduction slot,
    so — because every quartet evaluation is deterministic — the reduced
    Fock matrix (and hence the SCF energy) is *bitwise identical* to the
    fault-free run whenever recovery succeeds.
``delay``
    A straggler: the rank runs ``factor`` times slower.  Results are
    timing-independent, so a delay only surfaces in the metrics
    (``resilience.stragglers``, ``resilience.straggler_factor``) and in
    the perfsim-style cost accounting.
``corrupt``
    The rank's reduction contribution is corrupted on the wire with
    NaN/Inf.  The validating reduction detects the non-finite payload
    before merging and requests a retransmission of the pristine buffer
    (the sender still holds it), again keeping results bitwise identical.

Fault cycles are 1-based Fock-build indices within the current process
(a restarted run counts its builds from 1 again).  Events are one-shot:
each fires at most once per plan instance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics
from repro.resilience.errors import FaultSpecError, RankLostError

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.dlb import DynamicLoadBalancer


class FaultKind(str, enum.Enum):
    """Injectable fault categories."""

    KILL = "kill"
    DELAY = "delay"
    CORRUPT = "corrupt"


#: Corruption payloads: the value written over the wire copy.
_PAYLOADS = {"nan": np.nan, "inf": np.inf, "-inf": -np.inf}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        ``kill`` / ``delay`` / ``corrupt``.
    rank:
        Target rank (0-based).
    cycle:
        1-based Fock-build index the fault strikes in.
    after:
        (``kill``) DLB tasks the rank completes before dying.
    factor:
        (``delay``) slowdown multiplier, > 1.
    payload:
        (``corrupt``) ``nan`` / ``inf`` / ``-inf``.
    """

    kind: FaultKind
    rank: int
    cycle: int = 1
    after: int = 0
    factor: float = 2.0
    payload: str = "nan"

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise FaultSpecError(f"fault rank must be >= 0, got {self.rank}")
        if self.cycle < 1:
            raise FaultSpecError(f"fault cycle must be >= 1, got {self.cycle}")
        if self.after < 0:
            raise FaultSpecError(f"'after' must be >= 0, got {self.after}")
        if self.kind is FaultKind.DELAY and self.factor <= 1.0:
            raise FaultSpecError(
                f"delay factor must be > 1, got {self.factor}"
            )
        if self.kind is FaultKind.CORRUPT and self.payload not in _PAYLOADS:
            raise FaultSpecError(
                f"corrupt payload must be one of {sorted(_PAYLOADS)}, "
                f"got {self.payload!r}"
            )

    def to_spec(self) -> str:
        """The single-event spec string (inverse of :meth:`FaultPlan.from_spec`)."""
        parts = [self.kind.value, f"rank={self.rank}", f"cycle={self.cycle}"]
        if self.kind is FaultKind.KILL:
            parts.append(f"after={self.after}")
        elif self.kind is FaultKind.DELAY:
            parts.append(f"factor={self.factor:g}")
        else:
            parts.append(f"payload={self.payload}")
        return ":".join(parts)


class FaultPlan:
    """A deterministic, one-shot schedule of fault events.

    Parameters
    ----------
    events:
        The :class:`FaultEvent` schedule.
    nranks:
        When given, every event's rank is validated against the run
        geometry at construction time (reject early, not mid-build).
    """

    def __init__(
        self,
        events: Sequence[FaultEvent] = (),
        *,
        nranks: int | None = None,
    ) -> None:
        self.events = tuple(events)
        self._fired: set[int] = set()
        if nranks is not None:
            self.validate_for(nranks)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, *, nranks: int | None = None) -> "FaultPlan":
        """Parse a plan from its CLI syntax.

        Events are ``;``-separated; each event is ``kind:key=value:...``,
        e.g. ``"kill:rank=1:cycle=2:after=5;delay:rank=3:cycle=1:factor=4"``.
        """
        events: list[FaultEvent] = []
        for chunk in filter(None, (c.strip() for c in spec.split(";"))):
            fields = chunk.split(":")
            try:
                kind = FaultKind(fields[0].strip().lower())
            except ValueError:
                raise FaultSpecError(
                    f"unknown fault kind {fields[0]!r}; choose from "
                    f"{[k.value for k in FaultKind]}"
                ) from None
            kwargs: dict = {}
            for item in fields[1:]:
                if "=" not in item:
                    raise FaultSpecError(
                        f"malformed fault field {item!r} in {chunk!r} "
                        "(expected key=value)"
                    )
                key, _, value = item.partition("=")
                key = key.strip()
                if key in ("rank", "cycle", "after"):
                    try:
                        kwargs[key] = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"fault field {key!r} must be an integer, "
                            f"got {value!r}"
                        ) from None
                elif key == "factor":
                    kwargs[key] = float(value)
                elif key == "payload":
                    kwargs[key] = value.strip()
                else:
                    raise FaultSpecError(
                        f"unknown fault field {key!r} in {chunk!r}"
                    )
            if "rank" not in kwargs:
                raise FaultSpecError(f"fault event {chunk!r} needs rank=N")
            events.append(FaultEvent(kind=kind, **kwargs))
        return cls(events, nranks=nranks)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        nranks: int,
        ncycles: int = 5,
        nevents: int = 1,
        kinds: Sequence[FaultKind | str] = (FaultKind.KILL,),
        max_after: int = 20,
    ) -> "FaultPlan":
        """Generate a random-but-reproducible plan from an integer seed.

        Uses :class:`numpy.random.default_rng` — never the wall clock —
        so the same seed always produces the same chaos schedule.
        """
        if nranks < 1:
            raise FaultSpecError("seeded plan needs nranks >= 1")
        rng = np.random.default_rng(seed)
        kinds = tuple(FaultKind(k) for k in kinds)
        events = []
        for _ in range(nevents):
            kind = kinds[int(rng.integers(len(kinds)))]
            events.append(
                FaultEvent(
                    kind=kind,
                    rank=int(rng.integers(nranks)),
                    cycle=int(rng.integers(1, ncycles + 1)),
                    after=int(rng.integers(max_after + 1)),
                    factor=float(2 + int(rng.integers(7))),
                    payload=("nan", "inf")[int(rng.integers(2))],
                )
            )
        return cls(events, nranks=nranks)

    def to_spec(self) -> str:
        """Round-trippable spec string for the whole plan."""
        return ";".join(ev.to_spec() for ev in self.events)

    # -- validation ---------------------------------------------------------

    def validate_for(self, nranks: int) -> None:
        """Reject events whose target rank is outside ``[0, nranks)``."""
        if nranks < 1:
            raise FaultSpecError(f"nranks must be >= 1, got {nranks}")
        for ev in self.events:
            if ev.rank >= nranks:
                raise FaultSpecError(
                    f"fault event {ev.to_spec()!r} targets rank {ev.rank} "
                    f"but the run has only {nranks} rank(s) (0..{nranks - 1})"
                )
            if ev.kind is FaultKind.KILL and nranks == 1:
                raise FaultSpecError(
                    f"fault event {ev.to_spec()!r} would kill the only "
                    "rank; kill faults need nranks >= 2"
                )

    # -- queries (one-shot) --------------------------------------------------

    def _take(self, kind: FaultKind, rank: int, cycle: int) -> FaultEvent | None:
        for idx, ev in enumerate(self.events):
            if (
                idx not in self._fired
                and ev.kind is kind
                and ev.rank == rank
                and ev.cycle == cycle
            ):
                self._fired.add(idx)
                return ev
        return None

    def kill_after(self, rank: int, cycle: int) -> int | None:
        """Task count after which ``rank`` dies in ``cycle`` (or None)."""
        ev = self._take(FaultKind.KILL, rank, cycle)
        return None if ev is None else ev.after

    def delay_factor(self, rank: int, cycle: int) -> float:
        """Straggler slowdown of ``rank`` in ``cycle`` (1.0 = healthy)."""
        ev = self._take(FaultKind.DELAY, rank, cycle)
        if ev is None:
            return 1.0
        registry = get_metrics()
        if registry is not None:
            registry.counter("resilience.stragglers").inc()
            registry.histogram("resilience.straggler_factor").observe(ev.factor)
        return ev.factor

    def corruption(self, rank: int, cycle: int) -> FaultEvent | None:
        """The corrupt event striking ``rank``'s contribution, if any."""
        return self._take(FaultKind.CORRUPT, rank, cycle)

    @property
    def fired(self) -> tuple[FaultEvent, ...]:
        """Events that have already struck, in schedule order."""
        return tuple(self.events[i] for i in sorted(self._fired))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()!r})"


def corrupt_copy(buf: np.ndarray, payload: str = "nan") -> np.ndarray:
    """The wire image of ``buf`` after a corruption fault.

    A deterministic single-element corruption — element 0 in flat order
    is overwritten — modelling a flipped payload in one packet.
    """
    wire = np.array(buf, copy=True)
    wire.flat[0] = _PAYLOADS[payload]
    return wire


def resilient_grants(
    dlb: "DynamicLoadBalancer",
    rank: int,
    plan: FaultPlan | None,
    cycle: int,
) -> Iterator[int]:
    """Iterate ``rank``'s DLB grants under an optional fault plan.

    Healthy path: identical to ``dlb.iter_rank(rank)``.  When the plan
    kills the rank mid-build, the in-flight grant plus every outstanding
    grant is withdrawn (``dlb.fail_rank``), re-queued, and claimed by the
    surviving ranks in round-robin order; claims are recorded as
    ``resilience.tasks_recovered{rank=<claimant>}``.  The re-queued
    tasks are yielded in the original grant order and their
    contributions stay in the failed rank's reduction slot, which is
    what makes the recovered Fock matrix bitwise identical to the
    fault-free one (the quartet work itself is deterministic).
    """
    if plan is None:
        yield from dlb.iter_rank(rank)
        return
    factor = plan.delay_factor(rank, cycle)  # metered, results unchanged
    log = get_event_log()
    if factor > 1.0 and log is not None:
        log.emit("fault.delay", rank=rank, cycle=cycle, factor=factor)
    kill_after = plan.kill_after(rank, cycle)
    done = 0
    while (task := dlb.next(rank)) is not None:
        if kill_after is not None and done >= kill_after:
            requeued = [task, *dlb.fail_rank(rank, requeue=False)]
            survivors = [r for r in range(dlb.nranks) if dlb.alive(r)]
            if not survivors:
                raise RankLostError(
                    f"rank {rank} died in Fock build {cycle} with no "
                    f"survivors to re-queue {len(requeued)} task(s) to"
                )
            registry = get_metrics()
            if registry is not None:
                registry.counter("resilience.rank_failures").inc()
                registry.counter("resilience.tasks_requeued").inc(
                    len(requeued)
                )
            if log is not None:
                log.emit(
                    "fault.kill", rank=rank, cycle=cycle,
                    requeued=len(requeued), survivors=len(survivors),
                )
            for idx, t in enumerate(requeued):
                claimant = survivors[idx % len(survivors)]
                if registry is not None:
                    registry.counter(
                        "resilience.tasks_recovered", rank=claimant
                    ).inc()
                yield t
            return
        done += 1
        yield task
