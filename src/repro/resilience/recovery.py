"""Convergence recovery: detect divergence/oscillation, stage fallbacks.

Production SCF runs at scale cannot afford to burn 100 cycles iterating
on a diverging density.  :class:`ConvergenceGuard` watches the per-cycle
``(energy, density_rms)`` trace, diagnoses the two classic pathologies —

* **divergence**: the energy rising (or the density change growing)
  across a sliding window, and
* **oscillation**: the energy change alternating sign across the window
  without shrinking —

and prescribes a *staged* fallback, escalating only when the previous
stage has had ``patience`` cycles to act:

1. ``damping``     — mix the new density with the old one,
2. ``level_shift`` — raise the virtual orbitals by a shift ``b``
   (implemented metric-consistently as ``F + b (S - S P_occ S)``),
3. ``diis_reset``  — drop the DIIS subspace and restart extrapolation
   from the damped, shifted iterates.

Only after all three stages have been applied and the trace is *still*
sick does the guard declare the run unrecoverable; the SCF driver then
raises :class:`~repro.resilience.errors.SCFConvergenceError` carrying
the partial result.  A healthy run never triggers the guard, so
enabling it is bitwise-neutral for converging cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_metrics
from repro.resilience.errors import SCFConvergenceError

__all__ = [
    "RECOVERY_STAGES",
    "RecoveryAction",
    "ConvergenceGuard",
    "SCFConvergenceError",
]

#: Escalation order of the staged fallback.
RECOVERY_STAGES = ("damping", "level_shift", "diis_reset")


@dataclass(frozen=True)
class RecoveryAction:
    """One prescribed fallback step.

    Attributes
    ----------
    stage:
        Stage name (one of :data:`RECOVERY_STAGES`).
    level:
        1-based escalation level (1 = damping, ...).
    reason:
        The diagnosis that triggered it (``diverging`` / ``oscillating``).
    iteration:
        SCF cycle the action was prescribed at.
    """

    stage: str
    level: int
    reason: str
    iteration: int


class ConvergenceGuard:
    """Sliding-window divergence/oscillation detector with staged fallback.

    Parameters
    ----------
    window:
        Cycles of trace inspected per diagnosis (and the minimum trace
        length before the guard speaks up at all).
    patience:
        Cycles a freshly applied stage is given before escalation.
    damping:
        Density mixing factor prescribed by stage 1.
    level_shift:
        Virtual-orbital shift (Hartree) prescribed by stage 2.
    rise_tol:
        Energy increase (Hartree) below which a step is not counted as
        "rising" — guards against round-off flicker near convergence.
    """

    def __init__(
        self,
        *,
        window: int = 6,
        patience: int = 4,
        damping: float = 0.5,
        level_shift: float = 0.5,
        rise_tol: float = 1.0e-10,
    ) -> None:
        if window < 3:
            raise ValueError("guard window must be >= 3 cycles")
        if patience < 1:
            raise ValueError("guard patience must be >= 1 cycle")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        if level_shift <= 0.0:
            raise ValueError("level shift must be positive")
        self.window = window
        self.patience = patience
        self.damping = damping
        self.level_shift = level_shift
        self.rise_tol = rise_tol
        self._energies: list[float] = []
        self._rms: list[float] = []
        self._iterations: list[int] = []
        self._actions: list[RecoveryAction] = []
        self._last_action_at: int | None = None
        self._gave_up = False

    # -- trace & diagnosis --------------------------------------------------

    def diagnose(self) -> str | None:
        """Classify the recent trace: ``diverging``, ``oscillating``, None."""
        if len(self._energies) < self.window:
            return None
        e = np.asarray(self._energies[-self.window:])
        r = np.asarray(self._rms[-self.window:])
        de = np.diff(e)

        rising = int(np.sum(de > self.rise_tol))
        rms_growing = bool(r[-1] > 10.0 * np.min(r) and r[-1] > r[0])
        if rising >= len(de) - 1 or (rms_growing and rising >= len(de) // 2):
            return "diverging"

        signs = np.sign(de[np.abs(de) > self.rise_tol])
        if len(signs) >= self.window - 2:
            flips = int(np.sum(signs[1:] != signs[:-1]))
            half = len(de) // 2
            early = float(np.mean(np.abs(de[:half]))) if half else 0.0
            late = float(np.mean(np.abs(de[half:])))
            if flips >= len(signs) - 1 and late >= 0.5 * early:
                return "oscillating"
        return None

    def observe(
        self, iteration: int, energy: float, density_rms: float
    ) -> RecoveryAction | None:
        """Feed one cycle's record; returns a fallback to apply, if any.

        The returned action takes effect from the *next* cycle — the SCF
        driver applies it to its iteration state (damping factor, level
        shift, DIIS reset) and keeps iterating.
        """
        self._iterations.append(iteration)
        self._energies.append(float(energy))
        self._rms.append(float(density_rms))

        diagnosis = self.diagnose()
        if diagnosis is None:
            return None
        if self._last_action_at is not None and (
            iteration - self._last_action_at < self.patience
        ):
            return None  # let the current stage work
        if len(self._actions) >= len(RECOVERY_STAGES):
            self._gave_up = True
            return None

        level = len(self._actions) + 1
        action = RecoveryAction(
            stage=RECOVERY_STAGES[level - 1],
            level=level,
            reason=diagnosis,
            iteration=iteration,
        )
        self._actions.append(action)
        self._last_action_at = iteration
        registry = get_metrics()
        if registry is not None:
            registry.gauge("scf.recovery_stage").set(level)
            registry.counter(
                "scf.recovery_actions", stage=action.stage
            ).inc()
        return action

    # -- state --------------------------------------------------------------

    @property
    def actions(self) -> tuple[RecoveryAction, ...]:
        """Fallback steps prescribed so far, in escalation order."""
        return tuple(self._actions)

    @property
    def stages_applied(self) -> tuple[str, ...]:
        """Names of the stages applied so far."""
        return tuple(a.stage for a in self._actions)

    @property
    def exhausted(self) -> bool:
        """True once every stage was tried and the trace is still sick."""
        return self._gave_up

    def failure_message(self) -> str:
        """Human-readable post-mortem for :class:`SCFConvergenceError`."""
        last = self._actions[-1] if self._actions else None
        tail = (
            f"; last diagnosis {last.reason!r} at cycle {last.iteration}"
            if last
            else ""
        )
        return (
            "SCF unrecoverable: all "
            f"{len(RECOVERY_STAGES)} recovery stages "
            f"({', '.join(RECOVERY_STAGES)}) were exhausted{tail}"
        )


def level_shifted(
    F: np.ndarray, S: np.ndarray, D_occ: np.ndarray, shift: float
) -> np.ndarray:
    """Apply a virtual-orbital level shift to a Fock matrix.

    ``F + shift * (S - S D_occ S)`` where ``D_occ`` is the *idempotent*
    occupied projector in the AO basis (``C_occ C_occ^T``; for a
    closed-shell density with occupation 2 pass ``D / 2``).  Occupied
    orbitals are untouched, virtual eigenvalues rise by ``shift``,
    which damps occupied-virtual rotations.
    """
    return F + shift * (S - S @ D_occ @ S)
