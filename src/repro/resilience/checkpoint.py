"""SCF checkpoint/restart: serialize the iteration state to ``.npz``.

A checkpoint captures *exactly* the state the SCF loop carries from one
cycle to the next — current density (or spin densities), the DIIS
Fock/error history, the electronic energy of the last cycle, the cycle
counter, and the convergence trace — all as float64 binary, so a
restarted run replays the remaining cycles bit-for-bit: same energies,
same iterate count, same final wavefunction.  Metadata (format version,
driver kind, basis size, electron count) guards against resuming with a
mismatched run; there is deliberately no RNG state because the whole
stack is RNG-free.

Per-cycle Fock-build statistics are *not* serialized (they describe the
completed builds of the interrupted process, not SCF state); restored
history entries carry empty stats dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.obs.events import get_event_log
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.errors import CheckpointError

#: On-disk format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

_KINDS = ("rhf", "uhf")


@dataclass
class SCFCheckpoint:
    """One SCF cycle boundary, ready to serialize.

    Attributes
    ----------
    kind:
        ``"rhf"`` or ``"uhf"``.
    cycle:
        1-based index of the last completed SCF cycle.
    energy:
        Electronic energy of that cycle (the loop's ``e_old``).
    densities:
        ``(D,)`` for RHF, ``(D_alpha, D_beta)`` for UHF.
    diis_focks / diis_errors:
        The DIIS subspace in push order (possibly empty).
    history:
        ``(cycle, 4)`` array of per-cycle records
        ``[iteration, total_energy, density_rms, energy_change]``.
    nbf / nelectrons:
        Consistency guards checked on restart.
    label:
        Free-form run label (molecule/basis), informational only.
    """

    kind: str
    cycle: int
    energy: float
    densities: tuple[np.ndarray, ...]
    diis_focks: list[np.ndarray] = field(default_factory=list)
    diis_errors: list[np.ndarray] = field(default_factory=list)
    history: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 4), dtype=np.float64)
    )
    nbf: int = 0
    nelectrons: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise CheckpointError(
                f"checkpoint kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.cycle < 1:
            raise CheckpointError(
                f"checkpoint cycle must be >= 1, got {self.cycle}"
            )
        if len(self.diis_focks) != len(self.diis_errors):
            raise CheckpointError(
                f"DIIS history mismatch: {len(self.diis_focks)} Fock vs "
                f"{len(self.diis_errors)} error vectors"
            )

    # -- serialization ------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the checkpoint as an ``.npz`` archive; returns the path."""
        path = Path(path)
        payload: dict[str, np.ndarray] = {
            "version": np.array(FORMAT_VERSION),
            "kind": np.array(self.kind),
            "cycle": np.array(self.cycle),
            "energy": np.array(self.energy, dtype=np.float64),
            "ndensities": np.array(len(self.densities)),
            "ndiis": np.array(len(self.diis_focks)),
            "history": np.asarray(self.history, dtype=np.float64),
            "nbf": np.array(self.nbf),
            "nelectrons": np.array(self.nelectrons),
            "label": np.array(self.label),
        }
        for i, d in enumerate(self.densities):
            payload[f"density_{i}"] = np.asarray(d, dtype=np.float64)
        for i, (f, e) in enumerate(zip(self.diis_focks, self.diis_errors)):
            payload[f"diis_fock_{i}"] = np.asarray(f, dtype=np.float64)
            payload[f"diis_error_{i}"] = np.asarray(e, dtype=np.float64)
        with path.open("wb") as fh:
            np.savez(fh, **payload)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SCFCheckpoint":
        """Read a checkpoint written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"checkpoint file not found: {path}")
        try:
            with np.load(path, allow_pickle=False) as z:
                version = int(z["version"])
                if version != FORMAT_VERSION:
                    raise CheckpointError(
                        f"checkpoint {path} has format version {version}; "
                        f"this build reads version {FORMAT_VERSION}"
                    )
                ndens = int(z["ndensities"])
                ndiis = int(z["ndiis"])
                return cls(
                    kind=str(z["kind"]),
                    cycle=int(z["cycle"]),
                    energy=float(z["energy"]),
                    densities=tuple(
                        z[f"density_{i}"] for i in range(ndens)
                    ),
                    diis_focks=[z[f"diis_fock_{i}"] for i in range(ndiis)],
                    diis_errors=[z[f"diis_error_{i}"] for i in range(ndiis)],
                    history=z["history"],
                    nbf=int(z["nbf"]),
                    nelectrons=int(z["nelectrons"]),
                    label=str(z["label"]),
                )
        except CheckpointError:
            raise
        except (KeyError, ValueError, OSError) as exc:
            raise CheckpointError(
                f"checkpoint {path} is malformed: {exc}"
            ) from exc

    # -- restart validation -------------------------------------------------

    def check_compatible(self, *, kind: str, nbf: int, nelectrons: int) -> None:
        """Raise :class:`CheckpointError` if this checkpoint cannot seed
        a run with the given driver kind and system size."""
        if self.kind != kind:
            raise CheckpointError(
                f"checkpoint was written by a {self.kind.upper()} run; "
                f"cannot restart a {kind.upper()} run from it"
            )
        if self.nbf != nbf:
            raise CheckpointError(
                f"checkpoint has {self.nbf} basis functions, run has {nbf}"
            )
        if self.nelectrons != nelectrons:
            raise CheckpointError(
                f"checkpoint has {self.nelectrons} electrons, "
                f"run has {nelectrons}"
            )

    def history_rows(self) -> list[tuple[int, float, float, float]]:
        """Convergence trace as ``(iteration, energy, d_rms, de)`` rows."""
        return [
            (int(row[0]), float(row[1]), float(row[2]), float(row[3]))
            for row in np.asarray(self.history)
        ]


def load_checkpoint(source: "SCFCheckpoint | str | Path") -> SCFCheckpoint:
    """Coerce a checkpoint object or an ``.npz`` path to a checkpoint."""
    if isinstance(source, SCFCheckpoint):
        return source
    return SCFCheckpoint.load(source)


class CheckpointManager:
    """Writes a checkpoint every ``every`` completed SCF cycles.

    The manager always writes to the same path (the latest checkpoint
    supersedes older ones — restart wants the most recent cycle) and
    meters each write as ``resilience.checkpoints_written``.
    """

    def __init__(self, path: str | Path, every: int = 5) -> None:
        if every < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {every}"
            )
        self.path = Path(path)
        self.every = every
        self.writes = 0

    def maybe_save(self, checkpoint: SCFCheckpoint) -> bool:
        """Persist ``checkpoint`` if its cycle hits the interval."""
        if checkpoint.cycle % self.every != 0:
            return False
        with get_tracer().span(
            "scf/checkpoint", cycle=checkpoint.cycle, path=str(self.path)
        ):
            checkpoint.save(self.path)
        self.writes += 1
        registry = get_metrics()
        if registry is not None:
            registry.counter("resilience.checkpoints_written").inc()
            registry.gauge("resilience.last_checkpoint_cycle").set(
                checkpoint.cycle
            )
        log = get_event_log()
        if log is not None:
            log.emit(
                "scf.checkpoint", cycle=checkpoint.cycle, path=str(self.path)
            )
        return True
