"""Fault tolerance for the simulated parallel SCF stack.

Three cooperating pieces, motivated by the paper's at-scale runs (3,000
nodes / 192,000 cores — a regime where rank failures, stragglers, and
SCF divergence are routine):

* :mod:`repro.resilience.faults` — seeded, deterministic fault
  injection (:class:`FaultPlan`): kill a rank mid-Fock-build, delay it,
  or corrupt its reduction contribution.  The runtime re-queues a dead
  rank's unfinished DLB tasks to survivors and validates reduction
  payloads, keeping recovered results bitwise identical to fault-free
  runs.
* :mod:`repro.resilience.checkpoint` — ``.npz`` SCF checkpoints
  (:class:`SCFCheckpoint`, :class:`CheckpointManager`); a restarted run
  resumes at the saved cycle and converges bit-for-bit.
* :mod:`repro.resilience.recovery` — :class:`ConvergenceGuard`, a
  divergence/oscillation detector with a staged fallback (density
  damping → level shifting → DIIS reset) and the typed
  :class:`SCFConvergenceError` carrying the partial result.
"""

from repro.resilience.checkpoint import (
    FORMAT_VERSION,
    CheckpointManager,
    SCFCheckpoint,
    load_checkpoint,
)
from repro.resilience.errors import (
    CheckpointError,
    CorruptContributionError,
    FaultSpecError,
    NonFiniteDensityError,
    RankLostError,
    ResilienceError,
    SCFConvergenceError,
)
from repro.resilience.faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    corrupt_copy,
    resilient_grants,
)
from repro.resilience.recovery import (
    RECOVERY_STAGES,
    ConvergenceGuard,
    RecoveryAction,
    level_shifted,
)

__all__ = [
    "FORMAT_VERSION",
    "RECOVERY_STAGES",
    "CheckpointError",
    "CheckpointManager",
    "ConvergenceGuard",
    "CorruptContributionError",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpecError",
    "NonFiniteDensityError",
    "RankLostError",
    "RecoveryAction",
    "ResilienceError",
    "SCFCheckpoint",
    "SCFConvergenceError",
    "corrupt_copy",
    "level_shifted",
    "load_checkpoint",
    "resilient_grants",
]
