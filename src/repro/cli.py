"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``scf``        Run RHF/UHF on an XYZ file with any of the parallel
               Fock algorithms.
``profile``    Run an SCF under the tracer and export a Chrome-trace
               timeline, a text profile, NDJSON spans/metrics/events —
               plus, with ``--timeline``, the per-rank busy/idle/wait
               and load-imbalance analysis.
``timeline``   Analyze saved ``spans.ndjson`` / ``events.ndjson`` dumps
               (one or several runs) and optionally merge them into a
               single multi-run Chrome trace.
``compare``    Diff two or more benchmark/metric records under a noise
               tolerance; exits nonzero on regressions (the CI
               ``bench-regress`` gate).
``monitor``    Attach to a running SCF's live telemetry socket (or
               replay a recorded ``telemetry.ndjson``) and render the
               per-rank activity / convergence / worker-health
               dashboard.
``runs``       Query the persistent run registry (``.repro/runs``):
               list runs, show one run's record, diff two runs'
               final metrics through the comparison engine, or prune
               old run directories under a retention policy.
``serve``      Run the SCF job service: a daemon with a durable
               (write-ahead-journaled) queue, a supervised worker
               fleet, retry/backoff, and graceful degradation.
``batch``      Run a workload manifest (many jobs, mixed systems)
               through the service under a pluggable batch-scheduling
               policy; report jobs/s, queue-wait p95, amortization.
``submit``     Submit an SCF job to a running service.
``status``     One job's record, or the whole queue + fleet health.
``result``     Wait for a job and print its result.
``cancel``     Cancel a queued or running job.
``trace``      Stitch one job's distributed trace (client, daemon,
               every worker attempt) into a single Chrome trace with
               synthetic queue-wait/backoff/resume segments and the
               cross-process critical path.
``slo``        Latency/SLO report: p50/p95/p99 queue-wait/run/total
               per job class, error-budget burn rates, and breach
               counts — live from a daemon or from recorded telemetry.
``dataset``    Describe one of the paper's graphene datasets (sizes,
               screening statistics).
``simulate``   Predict the Fock-build time of one run configuration.
``reproduce``  Regenerate a paper table or figure.

Every command accepts ``--log-level`` / ``--quiet`` (before or after
the subcommand name): diagnostics go to stderr via :mod:`logging`,
primary results stay on stdout, so piped output remains parseable.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from pathlib import Path

logger = logging.getLogger("repro.cli")

ALGORITHMS = ("mpi-only", "private-fock", "shared-fock")
BACKENDS = ("sim", "process")
SCHEDULES = ("dlb", "static", "guided", "steal")
BATCH_POLICIES = ("fifo", "binned", "sjf", "auto")
DATASETS = ("0.5nm", "1.0nm", "1.5nm", "2.0nm", "5.0nm")
TARGETS = (
    "table2", "table3", "table4",
    "fig3", "fig4", "fig5", "fig6", "fig7",
    "all",
)


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float (rejects 0 and negatives)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type: an integer >= 0 (0 legitimately disables retries)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _nonneg_float(text: str) -> float:
    """argparse type: a float >= 0 (tolerances may legitimately be 0)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _add_cache_args(sub: argparse.ArgumentParser) -> None:
    """Semi-direct SCF knobs shared by the ``scf`` and ``profile`` commands."""
    sub.add_argument(
        "--eri-cache-mb", type=_positive_float, default=64.0, metavar="MB",
        help="byte budget of the cross-cycle quartet ERI cache "
             "(default: 64 MB; LRU eviction once the budget is exceeded)",
    )
    sub.add_argument(
        "--no-eri-cache", action="store_true",
        help="disable the quartet cache (fully direct SCF: every cycle "
             "re-evaluates every surviving quartet)",
    )


def _add_resilience_args(
    sub: argparse.ArgumentParser, *, restartable: bool
) -> None:
    """Fault-tolerance knobs (``scf`` gets checkpoint/restart too)."""
    sub.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="deterministic fault-injection spec, ';'-separated events: "
             '"kill:rank=1:cycle=2:after=5;delay:rank=3:cycle=1:factor=4;'
             'corrupt:rank=0:cycle=2:payload=inf"',
    )
    sub.add_argument(
        "--scf-recovery", action="store_true",
        help="enable the convergence guard (staged density damping -> "
             "level shifting -> DIIS reset on divergence/oscillation)",
    )
    if restartable:
        sub.add_argument(
            "--checkpoint", type=Path, default=None, metavar="NPZ",
            help="write the SCF state (density, DIIS history, trace) to "
                 "this .npz every --checkpoint-every cycles",
        )
        sub.add_argument(
            "--checkpoint-every", type=_positive_int, default=5, metavar="N",
            help="checkpoint write interval in SCF cycles (default: 5)",
        )
        sub.add_argument(
            "--restart", type=Path, default=None, metavar="NPZ",
            help="resume from a checkpoint written by --checkpoint; the "
                 "restarted run converges bitwise identically",
        )


def _add_logging_args(p: argparse.ArgumentParser, *, top: bool = False) -> None:
    """``--log-level`` / ``--quiet``, accepted before or after the command.

    The root parser carries the defaults; subparsers use
    ``argparse.SUPPRESS`` so an unset subcommand-level flag leaves the
    root value in the namespace instead of clobbering it.
    """
    from repro.obs.logctl import LEVELS

    p.add_argument(
        "--log-level", choices=LEVELS,
        **({"default": "warning"} if top else {"default": argparse.SUPPRESS}),
        help="diagnostic verbosity on stderr (default: warning); stdout "
             "output is unaffected",
    )
    p.add_argument(
        "--quiet", "-q", action="store_true",
        **({} if top else {"default": argparse.SUPPRESS}),
        help="suppress informational output: only primary results on "
             "stdout, only errors on stderr",
    )


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    """Run-registry / live-telemetry knobs shared by ``scf``/``profile``."""
    sub.add_argument(
        "--telemetry", action="store_true",
        help="publish live telemetry (worker heartbeats, SCF cycles, "
             "metric snapshots) to the run directory's NDJSON sink and a "
             "unix socket 'repro monitor' can attach to mid-run",
    )
    sub.add_argument(
        "--no-registry", action="store_true",
        help="do not record this run in the persistent run registry",
    )
    sub.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root (default: $REPRO_RUNS_DIR or .repro/runs)",
    )


def _add_backend_args(sub: argparse.ArgumentParser) -> None:
    """Execution-backend knobs shared by ``scf`` and ``profile``."""
    sub.add_argument(
        "--schedule", choices=SCHEDULES, default="dlb",
        help="task-distribution strategy: 'dlb' is the paper's dynamic "
             "shared counter (default); 'static' pre-partitions with "
             "Schwarz work estimates (zero counter traffic); 'guided' "
             "claims shrinking chunks; 'steal' gives each rank a deque "
             "and steals deterministically when one drains",
    )
    sub.add_argument(
        "--steal-seed", type=int, default=0, metavar="SEED",
        help="victim scan-order seed of --schedule steal (default: 0)",
    )
    sub.add_argument(
        "--backend", choices=BACKENDS, default="sim",
        help="execution backend: 'sim' runs ranks on the deterministic "
             "in-process cooperative runtime (default); 'process' runs "
             "the same rank programs on real OS worker processes with "
             "shared-memory matrices and a lock-backed DLB counter",
    )
    sub.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="process-backend worker count (default: --ranks); must be "
             ">= 1 — ignored (with a warning) by the sim backend",
    )
    sub.add_argument(
        "--schedule-seed", type=int, default=None, metavar="SEED",
        help="process-backend scheduling-jitter seed: perturbs DLB "
             "claim arrival order for nondeterminism hunting (results "
             "must not change; the parity suite sweeps several seeds)",
    )
    sub.add_argument(
        "--heartbeat-interval", type=_positive_float, default=None,
        metavar="S",
        help="process-backend worker heartbeat rate limit in seconds "
             "(default: 0.25); workers beat in-band at DLB claim "
             "boundaries",
    )
    sub.add_argument(
        "--heartbeat-timeout", type=_positive_float, default=None,
        metavar="S",
        help="seconds of heartbeat silence before a pending worker is "
             "flagged suspect and a worker.hung event fires "
             "(default: 2.0)",
    )


def _backend_setup(args: argparse.Namespace) -> tuple[str, int, dict]:
    """Resolve (backend name, effective nranks, backend options).

    Under the process backend ``--workers`` *is* the rank count (one
    real process per rank); under the sim backend ``--workers`` has no
    meaning and earns a warning rather than silently steering nothing.
    """
    workers = getattr(args, "workers", None)
    if args.backend == "sim":
        if workers is not None:
            logger.warning(
                "--workers is ignored by the sim backend "
                "(use --ranks, or --backend process)"
            )
        return "sim", args.ranks, {}
    nranks = workers if workers is not None else args.ranks
    options: dict = {}
    if getattr(args, "schedule_seed", None) is not None:
        options["schedule_seed"] = args.schedule_seed
    if getattr(args, "heartbeat_interval", None) is not None:
        options["heartbeat_interval_s"] = args.heartbeat_interval
    if getattr(args, "heartbeat_timeout", None) is not None:
        options["heartbeat_timeout_s"] = args.heartbeat_timeout
    return "process", nranks, options


def _fault_plan(args: argparse.Namespace, nranks: int | None = None):
    """Parse --fault-plan against the run's rank count (None if unset)."""
    from repro.resilience import FaultPlan

    if not getattr(args, "fault_plan", None):
        return None
    return FaultPlan.from_spec(
        args.fault_plan, nranks=args.ranks if nranks is None else nranks
    )


def _cache_mb(args: argparse.Namespace) -> float | None:
    return None if args.no_eri_cache else args.eri_cache_mb


class _ObsSession:
    """Run-registry record plus (optional) live telemetry for one run.

    Owns the whole observability envelope of a ``scf`` / ``profile``
    invocation: registers the run (unless ``--no-registry``), streams
    the event log incrementally into the run directory, and — with
    ``--telemetry`` — installs a global
    :class:`~repro.obs.telemetry.TelemetryChannel` with an NDJSON sink
    and a unix socket ``repro monitor`` can attach to mid-run.
    ``finalize`` writes the final metrics snapshot (JSON + Prometheus
    text) and closes the record; everything degrades to no-ops when the
    registry or telemetry is off.
    """

    def __init__(
        self,
        args: argparse.Namespace,
        kind: str,
        config: dict,
        *,
        log=None,
        metrics=None,
    ) -> None:
        from repro.obs import (
            EventLog,
            MetricsRegistry,
            NDJSONTelemetrySink,
            ObsStreamer,
            RunRegistry,
            TelemetryChannel,
            default_socket_path,
        )
        from repro.obs.events import get_event_log, set_event_log
        from repro.obs.metrics import get_metrics, set_metrics
        from repro.obs.telemetry import get_telemetry, set_telemetry

        self.handle = None
        self.channel = None
        self._sink = None
        self._streamer = None
        self._finalized = False
        self._restore: list = []

        if not getattr(args, "no_registry", False):
            registry = RunRegistry(getattr(args, "runs_dir", None))
            self.handle = registry.register(kind, config=config)

        # scf runs without instruments otherwise; install an event log
        # + metrics registry so heartbeat/recovery events have a home.
        if log is None:
            log = EventLog()
            self._restore.append((set_event_log, get_event_log()))
            set_event_log(log)
        if metrics is None:
            metrics = MetricsRegistry()
            self._restore.append((set_metrics, get_metrics()))
            set_metrics(metrics)
        self.log = log
        self.metrics = metrics

        if self.handle is not None:
            # Incremental: each event is durable the moment it is
            # emitted, so a crashed run still leaves its event trail.
            self._streamer = ObsStreamer(self.handle.directory, log=log)

        if getattr(args, "telemetry", False):
            self.channel = TelemetryChannel()
            if self.handle is not None:
                self._sink = NDJSONTelemetrySink(
                    self.handle.path("telemetry.ndjson")
                )
                self.channel.subscribe(self._sink)
                sock = self.channel.serve(
                    default_socket_path(self.handle.directory)
                )
            else:
                import tempfile

                import os as _os

                sock = self.channel.serve(
                    Path(tempfile.gettempdir())
                    / f"repro-telemetry-{_os.getpid()}.sock"
                )
            self._restore.append((set_telemetry, get_telemetry()))
            set_telemetry(self.channel)
            if sock is not None:
                logger.info("telemetry socket: %s", sock)

    @property
    def run_dir(self) -> Path | None:
        return self.handle.directory if self.handle is not None else None

    def announce(self) -> None:
        """Print the run id / socket for interactive use (quiet-gated)."""
        from repro.obs.logctl import quiet_enabled

        if quiet_enabled():
            return
        if self.handle is not None:
            print(f"run id       : {self.handle.run_id}")
        if self.channel is not None and self.channel.socket_path is not None:
            print(f"telemetry    : repro monitor {self.channel.socket_path}")

    def finalize(self, *, status: str, summary: dict | None = None) -> None:
        """Write the final snapshot and close the run record."""
        if self._finalized:
            return
        self._finalized = True
        if self.handle is not None:
            from repro.obs import write_prometheus

            counts: dict[str, int] = {}
            for ev in self.log:
                counts[ev.kind] = counts.get(ev.kind, 0) + 1
            snapshot = {
                k: v
                for k, v in self.metrics.snapshot().items()
                if isinstance(v, (int, float, dict, list))
            }
            if summary:
                snapshot.update(
                    {f"summary.{k}": v for k, v in summary.items()
                     if isinstance(v, (int, float))}
                )
            try:
                write_prometheus(
                    self.metrics, self.handle.path("metrics.prom")
                )
                self.handle.add_artifact(
                    "metrics.prom", self.handle.path("metrics.prom")
                )
            except OSError as exc:  # pragma: no cover - fs failure path
                logger.warning("prometheus export failed: %s", exc)
            for name in ("events.ndjson", "telemetry.ndjson"):
                if self.handle.path(name).exists():
                    self.handle.add_artifact(name, self.handle.path(name))
            self.handle.finalize(
                status=status, metrics=snapshot, summary=summary,
                event_counts=counts,
            )

    def close(self) -> None:
        """Tear down telemetry/streams and restore the global instruments."""
        if not self._finalized:
            self.finalize(status="failed")
        if self.channel is not None:
            self.channel.close()
            self.channel = None
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if self._streamer is not None:
            self._streamer.close()
            self._streamer = None
        for setter, previous in reversed(self._restore):
            setter(previous)
        self._restore.clear()


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MPI/OpenMP parallel Hartree-Fock (SC'17 reproduction)",
    )
    _add_logging_args(p, top=True)
    sub = p.add_subparsers(dest="command", required=True)

    scf = sub.add_parser("scf", help="run an SCF calculation")
    scf.add_argument("xyz", type=Path, help="XYZ geometry file")
    scf.add_argument("--basis", default="sto-3g")
    scf.add_argument("--algorithm", choices=ALGORITHMS, default="shared-fock")
    scf.add_argument("--ranks", type=_positive_int, default=1)
    scf.add_argument("--threads", type=_positive_int, default=1)
    scf.add_argument("--charge", type=int, default=0)
    scf.add_argument("--uhf", action="store_true")
    scf.add_argument("--multiplicity", type=int, default=1)
    scf.add_argument(
        "--incremental", action="store_true",
        help="delta-density Fock builds after the first cycle, with "
             "density-aware screening (RHF only)",
    )
    scf.add_argument(
        "--rebuild-every", type=_positive_int, default=10, metavar="N",
        help="full-rebuild period of --incremental (default: 10)",
    )
    _add_backend_args(scf)
    _add_cache_args(scf)
    _add_resilience_args(scf, restartable=True)
    _add_obs_args(scf)

    prof = sub.add_parser(
        "profile",
        help="run an SCF under the tracer; emit Chrome trace + profile",
    )
    prof.add_argument(
        "xyz", nargs="?", type=Path, default=None,
        help="XYZ geometry file (default: built-in water)",
    )
    prof.add_argument("--basis", default="sto-3g")
    prof.add_argument("--algorithm", choices=ALGORITHMS, default="shared-fock")
    prof.add_argument("--ranks", type=_positive_int, default=2)
    prof.add_argument("--threads", type=_positive_int, default=4)
    prof.add_argument("--charge", type=int, default=0)
    prof.add_argument(
        "--output-dir", type=Path, default=Path("profile_out"),
        help="directory for trace.json / profile.txt / metrics.ndjson "
             "/ spans.ndjson / events.ndjson",
    )
    prof.add_argument(
        "--timeline", action="store_true",
        help="run the timeline analyzer: per-rank busy/idle/wait "
             "breakdown, load-imbalance decomposition, critical path, "
             "and DLB Gantt (writes timeline.txt + timeline.json)",
    )
    _add_backend_args(prof)
    _add_cache_args(prof)
    _add_resilience_args(prof, restartable=False)
    _add_obs_args(prof)

    mon = sub.add_parser(
        "monitor",
        help="live dashboard over a running SCF's telemetry socket, or "
             "a replay of a recorded telemetry.ndjson",
    )
    mon.add_argument(
        "source", nargs="?", default="latest", metavar="SOURCE",
        help="a telemetry socket path, a telemetry.ndjson file, a run-id "
             "prefix from the registry, or 'latest' (default)",
    )
    mon.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root used to resolve run ids "
             "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    mon.add_argument(
        "--interval", type=_positive_float, default=0.5, metavar="S",
        help="refresh interval in seconds (default: 0.5)",
    )
    mon.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit (no refresh loop)",
    )
    mon.add_argument(
        "--plain", action="store_true",
        help="append frames instead of clearing the screen (for logs "
             "and non-ANSI terminals)",
    )

    runs = sub.add_parser(
        "runs", help="query the persistent run registry",
    )
    runs.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root (default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_sub.add_parser("list", help="table of all registered runs")
    runs_show = runs_sub.add_parser(
        "show", help="full record of one run (id prefix or 'latest')",
    )
    runs_show.add_argument(
        "run", nargs="?", default="latest", metavar="RUN",
        help="run-id prefix, or 'latest' (default)",
    )
    runs_diff = runs_sub.add_parser(
        "diff",
        help="diff two runs' final metrics through the comparison "
             "engine; exits 1 on regressions",
    )
    runs_diff.add_argument(
        "baseline", metavar="BASELINE",
        help="baseline run-id prefix (or 'latest')",
    )
    runs_diff.add_argument(
        "candidate", metavar="CANDIDATE",
        help="candidate run-id prefix (or 'latest')",
    )
    runs_diff.add_argument(
        "--tolerance", type=_nonneg_float, default=0.05, metavar="REL",
        help="relative change treated as noise (default: 0.05 = ±5%%)",
    )
    runs_diff.add_argument(
        "--abs-tolerance", type=_nonneg_float, default=1e-9, metavar="ABS",
        help="absolute change treated as noise (default: 1e-9)",
    )
    runs_diff.add_argument(
        "--ignore", action="append", default=[], metavar="GLOB",
        help="skip keys matching this glob (repeatable), e.g. '*wall_s'",
    )
    runs_prune = runs_sub.add_parser(
        "prune",
        help="retention GC: delete old run directories (never runs "
             "still marked running)",
    )
    runs_prune.add_argument(
        "--keep-last", type=_nonneg_int, default=None, metavar="N",
        help="keep only the newest N runs",
    )
    runs_prune.add_argument(
        "--max-age", type=_positive_float, default=None, metavar="S",
        help="delete runs whose record is older than S seconds",
    )
    runs_prune.add_argument(
        "--max-bytes", type=_positive_float, default=None, metavar="B",
        help="delete oldest runs until the registry fits B bytes",
    )
    runs_prune.add_argument(
        "--dry-run", action="store_true",
        help="list what would be deleted without deleting anything",
    )

    tl = sub.add_parser(
        "timeline",
        help="analyze saved spans.ndjson dumps; optionally merge runs "
             "into one Chrome trace",
    )
    tl.add_argument(
        "spans", nargs="+", type=Path, metavar="SPANS_NDJSON",
        help="spans.ndjson file(s) written by 'repro profile', one per run",
    )
    tl.add_argument(
        "--events", action="append", type=Path, default=[], metavar="NDJSON",
        help="events.ndjson for the corresponding run (repeatable; "
             "matched positionally to the spans files)",
    )
    tl.add_argument(
        "--labels", default=None, metavar="A,B,...",
        help="comma-separated run labels (default: each file's parent "
             "directory name)",
    )
    tl.add_argument(
        "--merged-trace", type=Path, default=None, metavar="JSON",
        help="write all runs side by side as one Chrome trace document",
    )
    tl.add_argument(
        "--report", type=Path, default=None, metavar="TXT",
        help="also write the per-run timeline reports to this file",
    )

    cmp_ = sub.add_parser(
        "compare",
        help="diff benchmark/metric records under a noise tolerance; "
             "exits 1 on regressions",
    )
    cmp_.add_argument(
        "baseline", type=Path,
        help="baseline record: a BENCH_*.json or an NDJSON metrics dump",
    )
    cmp_.add_argument(
        "candidates", nargs="+", type=Path,
        help="candidate record(s) to gate against the baseline",
    )
    cmp_.add_argument(
        "--tolerance", type=_nonneg_float, default=0.05, metavar="REL",
        help="relative change treated as noise (default: 0.05 = ±5%%)",
    )
    cmp_.add_argument(
        "--abs-tolerance", type=_nonneg_float, default=1e-9, metavar="ABS",
        help="absolute change treated as noise (default: 1e-9)",
    )
    cmp_.add_argument(
        "--ignore", action="append", default=[], metavar="GLOB",
        help="skip keys matching this glob (repeatable), e.g. '*wall_s'",
    )
    cmp_.add_argument(
        "--only", action="append", default=[], metavar="GLOB",
        help="compare only keys matching this glob (repeatable)",
    )
    cmp_.add_argument(
        "--allow-missing", action="store_true",
        help="keys absent from a candidate are OK instead of 'removed'",
    )
    cmp_.add_argument(
        "--json", type=Path, default=None, metavar="OUT",
        help="write the machine-readable verdict(s) to this JSON file",
    )
    cmp_.add_argument(
        "--report", type=Path, default=None, metavar="OUT",
        help="also write the human-readable report to this file",
    )

    def _add_service_dir(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--service-dir", type=Path,
            default=Path(".repro") / "service", metavar="DIR",
            help="service state directory: socket, journal, job "
                 "checkpoints (default: .repro/service)",
        )

    srv = sub.add_parser(
        "serve",
        help="run the SCF job service (durable queue + worker fleet)",
    )
    _add_service_dir(srv)
    srv.add_argument(
        "--fleet", type=_positive_int, default=2, metavar="N",
        help="persistent job-worker processes (default: 2)",
    )
    srv.add_argument(
        "--max-queue-depth", type=_positive_int, default=64, metavar="N",
        help="open-job admission bound; submissions beyond it are shed "
             "with a typed ServiceOverloaded error (default: 64)",
    )
    srv.add_argument(
        "--job-timeout", type=_positive_float, default=120.0, metavar="S",
        help="per-job wall-clock deadline; a job past it has its worker "
             "killed and is retried (default: 120)",
    )
    srv.add_argument(
        "--max-retries", type=_nonneg_int, default=3, metavar="N",
        help="retry budget per job after the first attempt; 0 disables "
             "retries (default: 3)",
    )
    srv.add_argument(
        "--backoff-base", type=_positive_float, default=0.25, metavar="S",
        help="delay before the first retry; doubles per attempt, "
             "capped by --backoff-cap (default: 0.25)",
    )
    srv.add_argument(
        "--backoff-cap", type=_positive_float, default=30.0, metavar="S",
        help="upper bound on any single retry delay (default: 30)",
    )
    srv.add_argument(
        "--retry-seed", type=int, default=0, metavar="SEED",
        help="backoff-jitter seed: the same seed reproduces the same "
             "retry schedule for every (job, attempt) (default: 0)",
    )
    srv.add_argument(
        "--process-budget", type=_nonneg_int, default=4, metavar="N",
        help="real process-backend workers the fleet may run at once; "
             "jobs beyond it degrade to the sim backend (default: 4)",
    )
    srv.add_argument(
        "--heartbeat-timeout", type=_positive_float, default=10.0,
        metavar="S",
        help="seconds of worker silence before a busy slot is flagged "
             "suspect (worker.hung) (default: 10)",
    )
    srv.add_argument(
        "--checkpoint-every", type=_positive_int, default=1, metavar="N",
        help="job checkpoint write interval in SCF cycles (default: 1; "
             "retries and daemon restarts resume from the checkpoint)",
    )
    srv.add_argument(
        "--idle-exit", type=_positive_float, default=None, metavar="S",
        help="exit after this many seconds with no open jobs "
             "(default: run until signalled; used by CI)",
    )
    srv.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root (default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    srv.add_argument(
        "--keep", type=_positive_int, default=None, metavar="N",
        help="run-registry retention: after each job finishes, prune "
             "the registry down to the newest N runs (running jobs and "
             "the service's own run are never pruned; default: keep "
             "everything)",
    )
    srv.add_argument(
        "--slo", action="append", default=None, metavar="TARGET",
        help="SLO target, repeatable: 'total:p95<60', "
             "'queue_wait:p95<30', or 'error_rate<0.25' (defaults to "
             "exactly those three); drives slo.burn_rate/slo.breach "
             "telemetry and the 'repro slo' report",
    )
    srv.add_argument(
        "--manifest", type=Path, default=None, metavar="FILE",
        help="workload manifest (.ndjson/.toml) to enqueue at startup; "
             "intake is exactly-once across restarts (a plan-fingerprint "
             "marker in the service dir suppresses re-enqueueing)",
    )
    srv.add_argument(
        "--batch-policy", choices=BATCH_POLICIES, default="binned",
        metavar="POLICY",
        help="batch scheduling policy for --manifest intake: "
             f"{', '.join(BATCH_POLICIES)} (default: binned)",
    )
    srv.add_argument(
        "--batch-seed", type=int, default=0, metavar="SEED",
        help="batch-plan tie-break seed; the same seed reproduces the "
             "identical plan (default: 0)",
    )
    srv.add_argument(
        "--batch-window", type=_positive_int, default=None, metavar="N",
        help="batch reordering window: no job moves more than N "
             "positions from manifest order (default: 256)",
    )

    bat = sub.add_parser(
        "batch",
        help="run a workload manifest through the service and report "
             "fleet throughput (jobs/s, queue-wait p95, amortization)",
    )
    bat.add_argument(
        "manifest", type=Path, metavar="FILE",
        help="workload manifest: .ndjson/.jsonl/.json (one job object "
             "per line) or .toml ([defaults] + [[job]] tables)",
    )
    _add_service_dir(bat)
    bat.add_argument(
        "--policy", choices=BATCH_POLICIES, default="binned",
        help="batch scheduling policy (default: binned)",
    )
    bat.add_argument(
        "--seed", type=int, default=0, metavar="SEED",
        help="plan tie-break seed (default: 0)",
    )
    bat.add_argument(
        "--window", type=_positive_int, default=None, metavar="N",
        help="reordering window / starvation bound (default: 256)",
    )
    bat.add_argument(
        "--plan-only", action="store_true",
        help="print the deterministic batch plan as JSON and exit "
             "without contacting a daemon",
    )
    bat.add_argument(
        "--output", "-o", type=Path, default=None, metavar="JSON",
        help="throughput report path "
             "(default: BENCH_throughput.json in the CWD)",
    )
    bat.add_argument(
        "--timeout", type=_positive_float, default=600.0, metavar="S",
        help="client-side budget for the whole batch (default: 600)",
    )
    bat.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root for the batch record "
             "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    bat.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report instead of the table",
    )

    sbm = sub.add_parser("submit", help="submit an SCF job to the service")
    sbm.add_argument("xyz", type=Path, help="XYZ geometry file")
    _add_service_dir(sbm)
    sbm.add_argument("--basis", default="sto-3g")
    sbm.add_argument("--algorithm", choices=ALGORITHMS, default="shared-fock")
    sbm.add_argument("--ranks", type=_positive_int, default=1)
    sbm.add_argument("--threads", type=_positive_int, default=1)
    sbm.add_argument("--charge", type=int, default=0)
    sbm.add_argument(
        "--backend", choices=BACKENDS, default="sim",
        help="execution backend for this job; 'process' jobs beyond the "
             "service's --process-budget degrade to 'sim'",
    )
    sbm.add_argument("--schedule", choices=SCHEDULES, default="dlb")
    sbm.add_argument(
        "--incremental", action="store_true",
        help="delta-density Fock builds after the first cycle",
    )
    sbm.add_argument(
        "--max-iterations", type=_positive_int, default=None, metavar="N",
        help="SCF iteration cap for this job (convergence failure is "
             "terminal: it is never retried)",
    )
    _add_cache_args(sbm)
    sbm.add_argument(
        "--fault-plan", metavar="SPEC", default=None,
        help="deterministic intra-run fault-injection spec "
             "(see 'repro scf --help')",
    )
    sbm.add_argument(
        "--tag", default=None, metavar="NAME",
        help="free-form label shown in status listings",
    )
    sbm.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    sbm.add_argument(
        "--timeout", type=_positive_float, default=600.0, metavar="S",
        help="client-side wait budget with --wait (default: 600)",
    )
    # Chaos knobs (used by the resilience suites; harmless elsewhere).
    sbm.add_argument(
        "--chaos-die-on-attempt", type=_positive_int, default=None,
        metavar="K", help="worker kills itself mid-job on attempt K "
                          "(tests worker-loss retry)",
    )
    sbm.add_argument(
        "--chaos-cycle-delay", type=_nonneg_float, default=0.0, metavar="S",
        help="sleep this long before every Fock build (slow-job chaos)",
    )
    sbm.add_argument(
        "--chaos-sleep", type=_nonneg_float, default=0.0, metavar="S",
        help="wedge the worker this long before starting (tests "
             "hung-job detection and deadline kills)",
    )

    sta = sub.add_parser(
        "status", help="job or queue status from a running service",
    )
    sta.add_argument(
        "job", nargs="?", default=None, metavar="JOB",
        help="job id or unambiguous prefix (default: list the queue)",
    )
    _add_service_dir(sta)

    rslt = sub.add_parser("result", help="wait for a job; print its result")
    rslt.add_argument("job", metavar="JOB", help="job id or prefix")
    _add_service_dir(rslt)
    rslt.add_argument(
        "--no-wait", action="store_true",
        help="print the current state instead of blocking until terminal",
    )
    rslt.add_argument(
        "--timeout", type=_positive_float, default=600.0, metavar="S",
        help="client-side wait budget (default: 600)",
    )

    cncl = sub.add_parser("cancel", help="cancel a queued or running job")
    cncl.add_argument("job", metavar="JOB", help="job id or prefix")
    _add_service_dir(cncl)

    trc = sub.add_parser(
        "trace",
        help="assemble one job's end-to-end distributed trace (client "
             "+ daemon + every worker attempt) into a Chrome trace",
    )
    trc.add_argument(
        "job", metavar="JOB",
        help="job id or unambiguous prefix (from 'repro submit')",
    )
    _add_service_dir(trc)
    trc.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root holding the job's worker span files "
             "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    trc.add_argument(
        "--output", "-o", type=Path, default=None, metavar="JSON",
        help="Chrome trace output path "
             "(default: trace-<job>.json in the CWD)",
    )
    trc.add_argument(
        "--no-report", action="store_true",
        help="write the trace file only; skip the critical-path table",
    )

    slo_p = sub.add_parser(
        "slo",
        help="latency quantiles + SLO burn rates per job class, from a "
             "live service or recorded telemetry",
    )
    slo_p.add_argument(
        "source", nargs="?", default="live", metavar="SOURCE",
        help="'live' queries the running service daemon (default); "
             "otherwise a telemetry.ndjson path, a run-id prefix, or "
             "'latest'",
    )
    _add_service_dir(slo_p)
    slo_p.add_argument(
        "--runs-dir", type=Path, default=None, metavar="DIR",
        help="run registry root used to resolve run ids "
             "(default: $REPRO_RUNS_DIR or .repro/runs)",
    )
    slo_p.add_argument(
        "--slo", action="append", default=None, metavar="TARGET",
        dest="targets",
        help="SLO target to evaluate recorded telemetry against "
             "(repeatable; ignored for 'live' — the daemon's own "
             "targets apply there)",
    )
    slo_p.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report instead of the table",
    )

    ds = sub.add_parser("dataset", help="describe a benchmark dataset")
    ds.add_argument("label", choices=DATASETS)

    sim = sub.add_parser("simulate", help="predict a run's Fock-build time")
    sim.add_argument("--dataset", choices=DATASETS, default="2.0nm")
    sim.add_argument("--algorithm", choices=ALGORITHMS, default="shared-fock")
    sim.add_argument("--nodes", type=int, default=4)
    sim.add_argument("--ranks-per-node", type=int, default=None)
    sim.add_argument("--threads", type=int, default=64)
    sim.add_argument("--system", choices=("theta", "jlse"), default="theta")
    sim.add_argument("--cluster-mode", default="quadrant")
    sim.add_argument("--memory-mode", default="cache")
    sim.add_argument(
        "--schedule", choices=SCHEDULES, default="dlb",
        help="task distribution strategy for the grant model",
    )

    rep = sub.add_parser("reproduce", help="regenerate a paper table/figure")
    rep.add_argument("target", choices=TARGETS)

    # --log-level/--quiet are accepted after the (sub)command too.
    for parser in [*sub.choices.values(), *runs_sub.choices.values()]:
        _add_logging_args(parser)
    return p


def cmd_scf(args: argparse.Namespace) -> int:
    from repro.chem.basis import BasisSet
    from repro.chem.molecule import Molecule
    from repro.resilience import (
        CheckpointManager,
        FaultSpecError,
        ResilienceError,
        SCFConvergenceError,
    )

    from repro.obs.logctl import quiet_enabled

    mol = Molecule.from_xyz(args.xyz.read_text(), charge=args.charge)
    basis = BasisSet(mol, args.basis)
    if not quiet_enabled():
        print(f"{mol.name}: {mol.natoms} atoms, {basis.nbf} basis "
              f"functions, {basis.nshells} shells ({args.basis})")

    backend, nranks, backend_options = _backend_setup(args)
    if args.uhf and args.incremental:
        print("error: --incremental is not supported with --uhf",
              file=sys.stderr)
        return 2
    if backend == "process" and not quiet_enabled():
        print(f"backend      : process ({nranks} worker process(es))")

    try:
        plan = _fault_plan(args, nranks)
    except FaultSpecError as exc:
        print(f"error: invalid --fault-plan: {exc}", file=sys.stderr)
        return 2
    manager = (
        CheckpointManager(args.checkpoint, every=args.checkpoint_every)
        if args.checkpoint is not None else None
    )
    run_kwargs = dict(
        restart=args.restart,
        checkpoint=manager,
        recovery=True if args.scf_recovery else None,
    )

    obs = _ObsSession(
        args, "scf",
        {
            "molecule": mol.name,
            "basis": args.basis,
            "algorithm": args.algorithm,
            "method": "uhf" if args.uhf else "rhf",
            "nranks": nranks,
            "nthreads": args.threads,
            "backend": backend,
            "fault_plan": args.fault_plan,
        },
    )
    if (
        backend == "process"
        and getattr(args, "telemetry", False)
        and obs.run_dir is not None
    ):
        # Worker spans/events stream into the run directory too, so the
        # registry's record of a chaos run includes the killed workers'
        # last completed spans.
        backend_options["obs_dir"] = obs.run_dir / "workers"
    obs.announce()
    try:
        if args.uhf:
            from repro.core.fock_uhf import UHFBuilderAdapter, UHFPrivateFockBuilder
            from repro.integrals.onee import kinetic_matrix, nuclear_matrix
            from repro.parallel.backend import make_backend
            from repro.scf.uhf import UHF

            h = kinetic_matrix(basis) + nuclear_matrix(basis)
            inner = UHFPrivateFockBuilder(
                basis, h, nranks=nranks, nthreads=args.threads,
                eri_cache_mb=_cache_mb(args), fault_plan=plan,
                schedule=args.schedule, steal_seed=args.steal_seed,
            )
            backend_obj = make_backend(
                backend, workers=nranks, **backend_options
            )
            fock_builder = backend_obj.wrap_builder(inner)
            if backend == "process":
                # The process backend speaks the stacked-density
                # single-argument protocol; adapt back to (da, db).
                fock_builder = UHFBuilderAdapter(fock_builder)
            try:
                res = UHF(basis, multiplicity=args.multiplicity,
                          fock_builder=fock_builder).run(**run_kwargs)
            except SCFConvergenceError as exc:
                print(f"SCF failed: {exc}", file=sys.stderr)
                return 1
            except ResilienceError as exc:
                print(f"unrecoverable fault: {exc}", file=sys.stderr)
                return 3
            finally:
                backend_obj.shutdown()
            print(f"UHF energy   : {res.energy:.10f} Eh "
                  f"(converged={res.converged}, {res.niterations} "
                  f"iterations)")
            print(f"<S^2>        : {res.s_squared:.6f}")
            if manager is not None and not quiet_enabled():
                print(f"checkpoints  : {manager.writes} written -> "
                      f"{args.checkpoint}")
            obs.finalize(
                status="done" if res.converged else "unconverged",
                summary={
                    "energy": res.energy,
                    "converged": res.converged,
                    "iterations": res.niterations,
                },
            )
            return 0 if res.converged else 1

        from repro.core.scf_driver import ParallelSCF

        try:
            with ParallelSCF(
                basis, args.algorithm, nranks=nranks, nthreads=args.threads,
                backend=backend, backend_options=backend_options,
                eri_cache_mb=_cache_mb(args), fault_plan=plan,
                schedule=args.schedule, steal_seed=args.steal_seed,
                incremental=args.incremental,
                rebuild_every=args.rebuild_every,
            ) as scf:
                res = scf.run(**run_kwargs)
        except SCFConvergenceError as exc:
            print(f"SCF failed: {exc}", file=sys.stderr)
            return 1
        except ResilienceError as exc:
            print(f"unrecoverable fault: {exc}", file=sys.stderr)
            return 3
        print(f"RHF energy   : {res.energy:.10f} Eh "
              f"(converged={res.converged}, {res.scf.niterations} "
              f"iterations)")
        stats = res.fock_stats[-1]
        if not quiet_enabled():
            print(f"Fock build   : {stats.quartets_computed} quartets, "
                  f"{stats.quartets_screened} screened, algorithm "
                  f"{stats.algorithm}, {stats.nranks} ranks x "
                  f"{stats.nthreads} threads")
            if not args.no_eri_cache:
                hits = sum(s.eri_cache_hits for s in res.fock_stats)
                misses = sum(s.eri_cache_misses for s in res.fock_stats)
                total = hits + misses
                rate = 100.0 * hits / total if total else 0.0
                print(f"ERI cache    : {hits} hits / {misses} misses "
                      f"({rate:.1f}% hit rate, last cycle "
                      f"{100.0 * stats.eri_cache_hit_rate:.1f}%)")
            if manager is not None:
                print(f"checkpoints  : {manager.writes} written -> "
                      f"{args.checkpoint}")
        obs.finalize(
            status="done" if res.converged else "unconverged",
            summary={
                "energy": res.energy,
                "converged": res.converged,
                "iterations": res.scf.niterations,
                "quartets_computed": res.total_quartets_computed,
                "rank_imbalance": res.rank_imbalance,
            },
        )
        return 0 if res.converged else 1
    finally:
        obs.close()


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.chem.basis import BasisSet
    from repro.chem.molecule import Molecule, water
    from repro.core.scf_driver import ParallelSCF
    from repro.obs import EventLog, MetricsRegistry, Tracer
    from repro.obs.logctl import quiet_enabled

    if args.xyz is not None:
        mol = Molecule.from_xyz(args.xyz.read_text(), charge=args.charge)
    else:
        mol = water()
    basis = BasisSet(mol, args.basis)
    nthreads = 1 if args.algorithm == "mpi-only" else args.threads
    backend, nranks, backend_options = _backend_setup(args)
    if not quiet_enabled():
        print(f"{mol.name}: {mol.natoms} atoms, {basis.nbf} basis "
              f"functions, {basis.nshells} shells ({args.basis})")
        print(f"profiling {args.algorithm} on {nranks} rank(s) x "
              f"{nthreads} thread(s) [{backend} backend]")

    from repro.resilience import (
        FaultSpecError,
        ResilienceError,
        SCFConvergenceError,
    )

    try:
        plan = _fault_plan(args, nranks)
    except FaultSpecError as exc:
        print(f"error: invalid --fault-plan: {exc}", file=sys.stderr)
        return 2

    workers_dir = args.output_dir / "workers"
    if backend == "process":
        # Workers dump their own spans/events NDJSON here (one shared
        # time base), merged with the parent trace below.
        backend_options["obs_dir"] = workers_dir

    # Setup (integrals, Schwarz matrix) stays outside the measured
    # window so the traced span total is comparable to the SCF wall.
    scf = ParallelSCF(
        basis, args.algorithm, nranks=nranks, nthreads=nthreads,
        backend=backend, backend_options=backend_options,
        eri_cache_mb=_cache_mb(args), fault_plan=plan,
        schedule=args.schedule, steal_seed=args.steal_seed,
    )
    tracer = Tracer()
    registry = MetricsRegistry()
    elog = EventLog()
    obs = _ObsSession(
        args, "profile",
        {
            "molecule": mol.name,
            "basis": args.basis,
            "algorithm": args.algorithm,
            "nranks": nranks,
            "nthreads": nthreads,
            "backend": backend,
            "output_dir": str(args.output_dir),
        },
        log=elog, metrics=registry,
    )
    obs.announce()
    try:
        return _profile_run(args, scf, tracer, registry, elog, obs,
                            backend, workers_dir)
    finally:
        obs.close()


def _profile_run(args, scf, tracer, registry, elog, obs, backend,
                 workers_dir) -> int:
    import json
    import time

    from repro.obs import (
        events_ndjson,
        metrics_ndjson,
        profile_report,
        spans_ndjson,
        use_event_log,
        use_metrics,
        use_tracer,
        write_chrome_trace,
        write_text,
    )
    from repro.resilience import ResilienceError, SCFConvergenceError

    with use_tracer(tracer), use_metrics(registry), use_event_log(elog):
        t0 = time.perf_counter()
        try:
            res = scf.run(recovery=True if args.scf_recovery else None)
        except (SCFConvergenceError, ResilienceError) as exc:
            print(f"SCF failed under injected faults: {exc}", file=sys.stderr)
            return 3
        finally:
            scf.shutdown()  # flush and stop process-backend workers
        wall = time.perf_counter() - t0

    traced = tracer.total_seconds()
    coverage = 100.0 * traced / wall if wall > 0 else 0.0
    report = profile_report(
        tracer, title=f"SCF profile ({args.algorithm})"
    )

    out = args.output_dir
    # Events share the spans' relative time base (earliest span start).
    span_starts = [s.start for s in tracer.walk() if s.end is not None]
    events_t0 = min(span_starts) if span_starts else None
    trace_path = write_chrome_trace(tracer, out / "trace.json", events=elog)
    report_path = write_text(out / "profile.txt", report)
    spans_path = write_text(out / "spans.ndjson", spans_ndjson(tracer))
    events_path = write_text(
        out / "events.ndjson", events_ndjson(elog, t0=events_t0)
    )
    metrics_path = out / "metrics.ndjson"
    lines = [metrics_ndjson(registry)]
    lines += [
        json.dumps({"fock_build": i + 1, **s.as_dict()})
        for i, s in enumerate(res.fock_stats)
    ]
    write_text(metrics_path, "\n".join(lines))

    merged_path = None
    if backend == "process":
        from repro.obs.analysis import merged_chrome_trace, timeline_spans
        from repro.parallel.backend.process import worker_obs_run

        runs = [("driver", timeline_spans(tracer), list(elog))]
        worker_run = worker_obs_run(workers_dir, label="workers")
        if worker_run[1] or worker_run[2]:
            runs.append(worker_run)
        merged_path = write_text(
            out / "merged_trace.json",
            json.dumps(merged_chrome_trace(runs)),
        )

    print(f"\n{report}\n")
    if args.timeline:
        from repro.obs.analysis import analyze_tracer, timeline_report

        analysis = analyze_tracer(tracer, elog)
        tl_report = timeline_report(
            analysis, title=f"timeline ({args.algorithm})"
        )
        tl_path = write_text(out / "timeline.txt", tl_report)
        write_text(
            out / "timeline.json",
            json.dumps(analysis.to_dict(), indent=2),
        )
        print(f"{tl_report}\n")
        print(f"timeline     : {tl_path} (+ timeline.json)")
    print(f"RHF energy   : {res.energy:.10f} Eh "
          f"(converged={res.converged}, {res.scf.niterations} iterations)")
    print(f"load balance : rank imbalance {res.rank_imbalance:.3f}, "
          f"thread imbalance {res.thread_imbalance:.3f}")
    print(f"SCF wall     : {wall:.6f} s; traced {traced:.6f} s "
          f"({coverage:.1f}% of wall)")
    print(f"trace        : {trace_path} (open in chrome://tracing or "
          f"ui.perfetto.dev)")
    print(f"profile      : {report_path}")
    print(f"metrics      : {metrics_path}")
    print(f"spans        : {spans_path}")
    print(f"events       : {events_path} ({len(elog)} events)")
    if merged_path is not None:
        print(f"merged trace : {merged_path} (driver + per-worker spans "
              f"on one timeline)")
    obs.finalize(
        status="done" if res.converged else "unconverged",
        summary={
            "energy": res.energy,
            "converged": res.converged,
            "iterations": res.scf.niterations,
            "wall_s": wall,
            "traced_s": traced,
            "rank_imbalance": res.rank_imbalance,
            "thread_imbalance": res.thread_imbalance,
        },
    )
    if obs.handle is not None:
        for name, path in (
            ("trace.json", trace_path), ("profile.txt", report_path),
            ("spans.ndjson", spans_path), ("metrics.ndjson", metrics_path),
        ):
            obs.handle.add_artifact(name, path)
        obs.handle.save()
    return 0 if res.converged else 1


def cmd_monitor(args: argparse.Namespace) -> int:
    import stat

    from repro.obs.monitor import MonitorState
    from repro.obs.registry import RunRegistry
    from repro.obs.telemetry import TelemetryClient, records_from_ndjson

    sock: Path | None = None
    ndjson: Path | None = None
    src = Path(args.source)
    if src.exists():
        if stat.S_ISSOCK(src.stat().st_mode):
            sock = src
        else:
            ndjson = src
    else:
        registry = RunRegistry(args.runs_dir)
        try:
            run_id = registry.find(args.source)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        run_dir = registry.run_dir(run_id)
        live = run_dir / "telemetry.sock"
        recorded = run_dir / "telemetry.ndjson"
        if live.exists() and stat.S_ISSOCK(live.stat().st_mode):
            sock = live
        elif recorded.exists():
            ndjson = recorded
        else:
            print(
                f"error: run {run_id} has no telemetry "
                "(was it started with --telemetry?)",
                file=sys.stderr,
            )
            return 2

    state = MonitorState()
    if ndjson is not None:
        state.apply_all(records_from_ndjson(ndjson.read_text()))
        print(state.render())
        return 0

    assert sock is not None
    try:
        client = TelemetryClient(sock)
    except OSError as exc:
        # A stale socket from a finished run: fall back to the sink file.
        recorded = sock.parent / "telemetry.ndjson"
        if recorded.exists():
            logger.info("socket %s is stale (%s); replaying sink", sock, exc)
            state.apply_all(records_from_ndjson(recorded.read_text()))
            print(state.render())
            return 0
        print(f"error: cannot connect to {sock}: {exc}", file=sys.stderr)
        return 2
    try:
        while True:
            records = client.poll(args.interval)
            state.apply_all(records)
            if client.eof and state.nrecords == 0:
                # The run ended between resolving the socket and our
                # first read (hung up before the backlog arrived):
                # render from the recorded sink instead of an empty
                # frame.
                recorded = sock.parent / "telemetry.ndjson"
                if recorded.exists():
                    state.apply_all(
                        records_from_ndjson(recorded.read_text())
                    )
            frame = state.render()
            if not args.plain:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame, flush=True)
            if args.once or client.eof:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs.analysis.compare import compare_runs, load_run
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(args.runs_dir)
    if args.runs_command == "list":
        print(registry.list_table())
        return 0

    if args.runs_command == "show":
        try:
            run_id = registry.find(args.run)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        print(registry.show(run_id))
        return 0

    if args.runs_command == "prune":
        if (args.keep_last is None and args.max_age is None
                and args.max_bytes is None):
            print(
                "error: give at least one of --keep-last / --max-age "
                "/ --max-bytes",
                file=sys.stderr,
            )
            return 2
        removed = registry.prune(
            keep_last=args.keep_last,
            max_age_s=args.max_age,
            max_bytes=(int(args.max_bytes)
                       if args.max_bytes is not None else None),
            dry_run=args.dry_run,
        )
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {len(removed)} run(s)")
        for run_id in removed:
            print(f"  {run_id}")
        return 0

    # diff: hand the two runs' final metrics snapshots to the PR-4
    # comparison engine — run-to-run diffs gate exactly like benchmarks.
    try:
        base_id = registry.find(args.baseline)
        cand_id = registry.find(args.candidate)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    for run_id in (base_id, cand_id):
        if not registry.metrics_path(run_id).exists():
            print(
                f"error: run {run_id} has no metrics.json "
                "(did it finish?)",
                file=sys.stderr,
            )
            return 2
    comparison = compare_runs(
        load_run(registry.metrics_path(base_id), label=base_id),
        load_run(registry.metrics_path(cand_id), label=cand_id),
        tolerance=args.tolerance,
        abs_tolerance=args.abs_tolerance,
        ignore=args.ignore,
    )
    print(comparison.report())
    return 1 if comparison.verdict == "fail" else 0


def cmd_timeline(args: argparse.Namespace) -> int:
    import json

    from repro.obs import events_from_ndjson, write_text
    from repro.obs.analysis import (
        analyze_timeline,
        merged_chrome_trace,
        spans_from_ndjson,
        timeline_report,
    )

    if args.events and len(args.events) != len(args.spans):
        print(
            f"error: {len(args.events)} --events file(s) for "
            f"{len(args.spans)} spans file(s); counts must match",
            file=sys.stderr,
        )
        return 2
    if args.labels is not None:
        labels = [s.strip() for s in args.labels.split(",")]
        if len(labels) != len(args.spans):
            print(
                f"error: {len(labels)} label(s) for {len(args.spans)} "
                f"spans file(s); counts must match",
                file=sys.stderr,
            )
            return 2
    else:
        labels = [p.resolve().parent.name or p.stem for p in args.spans]

    runs = []
    for i, spans_path in enumerate(args.spans):
        if not spans_path.exists():
            print(f"error: no such file: {spans_path}", file=sys.stderr)
            return 2
        spans = spans_from_ndjson(spans_path.read_text())
        events = (
            events_from_ndjson(args.events[i].read_text())
            if args.events else []
        )
        runs.append((labels[i], spans, events))

    reports = []
    for label, spans, events in runs:
        analysis = analyze_timeline(spans, events)
        reports.append(timeline_report(analysis, title=f"timeline ({label})"))
    body = "\n\n".join(reports)
    print(body)
    if args.report is not None:
        write_text(args.report, body)
        print(f"\nreport       : {args.report}")
    if args.merged_trace is not None:
        write_text(args.merged_trace, json.dumps(merged_chrome_trace(runs)))
        print(f"merged trace : {args.merged_trace} "
              f"({len(runs)} run(s); open in ui.perfetto.dev)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import json

    from repro.obs import write_text
    from repro.obs.analysis import compare_runs, load_run

    for path in [args.baseline, *args.candidates]:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2

    baseline = load_run(args.baseline)
    comparisons = [
        compare_runs(
            baseline,
            load_run(candidate),
            tolerance=args.tolerance,
            abs_tolerance=args.abs_tolerance,
            ignore=args.ignore,
            only=args.only,
            allow_missing=args.allow_missing,
        )
        for candidate in args.candidates
    ]

    body = "\n\n".join(c.report() for c in comparisons)
    print(body)
    if args.report is not None:
        write_text(args.report, body)
    if args.json is not None:
        verdicts = [c.to_dict() for c in comparisons]
        payload = verdicts[0] if len(verdicts) == 1 else verdicts
        write_text(args.json, json.dumps(payload, indent=2))
    return 1 if any(c.verdict == "fail" for c in comparisons) else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.logctl import quiet_enabled
    from repro.service import (
        DaemonAlreadyRunning,
        ServiceConfig,
        ServiceDaemon,
        service_socket_path,
    )

    config = ServiceConfig(
        service_dir=str(args.service_dir),
        fleet=args.fleet,
        max_queue_depth=args.max_queue_depth,
        job_timeout_s=args.job_timeout,
        max_retries=args.max_retries,
        backoff_base_s=args.backoff_base,
        backoff_cap_s=args.backoff_cap,
        retry_seed=args.retry_seed,
        process_budget=args.process_budget,
        heartbeat_timeout_s=args.heartbeat_timeout,
        checkpoint_every=args.checkpoint_every,
        idle_exit_s=args.idle_exit,
        runs_dir=str(args.runs_dir) if args.runs_dir is not None else None,
        keep_runs=args.keep,
        manifest=(str(args.manifest) if args.manifest is not None
                  else None),
        batch_policy=args.batch_policy,
        batch_seed=args.batch_seed,
        batch_window=args.batch_window,
        **({"slo_targets": tuple(args.slo)} if args.slo else {}),
    )
    try:
        daemon = ServiceDaemon(config).start()
    except DaemonAlreadyRunning as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad flag combination (e.g. cap < base)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not quiet_enabled():
        print(f"service      : {service_socket_path(args.service_dir)}")
        print(f"journal      : {args.service_dir / 'journal.ndjson'}")
        print(f"telemetry    : repro monitor "
              f"{args.service_dir / 'telemetry.sock'}")
        if daemon.queue.recovered_jobs:
            print(f"recovered    : {len(daemon.queue.recovered_jobs)} "
                  f"interrupted job(s) re-queued from the journal")
    try:
        daemon.install_signal_handlers()
        daemon.run_forever()
    finally:
        daemon.close()
    return 0


def _job_client(args: argparse.Namespace):
    from repro.service import JobClient

    return JobClient(args.service_dir)


def _print_job(job: dict, *, verbose: bool = True) -> None:
    state = job["state"]
    line = f"job {job['id']}: {state}"
    if job.get("tag"):
        line += f" ({job['tag']})"
    if job.get("degraded"):
        line += " [degraded to sim backend]"
    print(line)
    if not verbose:
        return
    if state == "done" and job.get("result"):
        res = job["result"]
        print(f"RHF energy   : {res['energy']:.10f} Eh "
              f"(converged={res['converged']}, {res['iterations']} "
              f"iterations, attempt {job['attempt']})")
        if res.get("resumed"):
            print("resumed      : from checkpoint")
    elif state in ("failed", "cancelled") and job.get("error"):
        print(f"error        : [{job.get('error_type')}] {job['error']}")
    elif state == "retrying":
        import time as _time

        wait = max(0.0, job.get("not_before", 0.0) - _time.time())
        print(f"retry        : attempt {job['attempt']} failed "
              f"([{job.get('error_type')}]); next try in {wait:.2f}s")
    if job.get("run_id"):
        print(f"run id       : {job['run_id']}")


def _handle_service_errors(fn):
    """Map typed service errors to exit codes (3 unavailable, 4 shed)."""
    from repro.service import (
        JobNotFound,
        JobSpecError,
        ManifestError,
        ServiceOverloaded,
        ServiceUnavailable,
    )

    try:
        return fn()
    except ServiceOverloaded as exc:
        print(f"error: service overloaded: {exc}", file=sys.stderr)
        return 4
    except ServiceUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except (JobNotFound, JobSpecError, ManifestError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_batch(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.logctl import quiet_enabled
    from repro.obs.registry import RunRegistry
    from repro.workload import WorkloadManager, load_manifest

    def run() -> int:
        specs = load_manifest(args.manifest)
        manager = WorkloadManager(
            _job_client(args),
            policy=args.policy, seed=args.seed, window=args.window,
            registry=None if args.plan_only else RunRegistry(args.runs_dir),
        )
        if args.plan_only:
            plan = manager.plan(specs)
            print(_json.dumps(plan.to_dict(), indent=2, sort_keys=True))
            return 0
        output = args.output or Path("BENCH_throughput.json")
        try:
            report = manager.run(
                specs, manifest_path=str(args.manifest),
                timeout_s=args.timeout, output=output,
            )
        except TimeoutError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 5
        m = report.metrics
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        elif not quiet_enabled():
            print(f"manifest     : {args.manifest} "
                  f"({m['jobs_total']} jobs, {m['n_batches']} batches, "
                  f"policy {report.plan.policy})")
            print(f"completed    : {m['jobs_done']} done, "
                  f"{m['jobs_failed']} failed in {m['wall_s']:.2f}s "
                  f"({m['jobs_per_s']:.2f} jobs/s)")
            print(f"queue wait   : p50 {m['queue_wait_p50_s']*1e3:.1f} ms, "
                  f"p95 {m['queue_wait_p95_s']*1e3:.1f} ms")
            print(f"amortization : {m['cache_amortization_ratio']:.2f} "
                  f"jobs per cold setup ({m['warm_setups']} warm / "
                  f"{m['cold_setups']} cold; ERI hit rate "
                  f"{m['eri_cache_hit_rate']:.2f})")
            print(f"report       : {output}")
        return 0 if m["jobs_failed"] == 0 else 1

    return _handle_service_errors(run)


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.obs.logctl import quiet_enabled

    spec = {
        "xyz": args.xyz.read_text(),
        "basis": args.basis,
        "algorithm": args.algorithm,
        "nranks": args.ranks,
        "nthreads": args.threads,
        "backend": args.backend,
        "schedule": args.schedule,
        "charge": args.charge,
        "eri_cache_mb": _cache_mb(args),
        "incremental": args.incremental,
        "max_iterations": args.max_iterations,
        "fault_plan": args.fault_plan,
        "tag": args.tag or args.xyz.stem,
        "sleep_s": args.chaos_sleep,
        "cycle_delay_s": args.chaos_cycle_delay,
        "die_on_attempt": args.chaos_die_on_attempt,
    }

    def run() -> int:
        client = _job_client(args)
        job = client.submit(spec)
        if not quiet_enabled():
            print(f"submitted    : {job['id']} "
                  f"({job['tag']}, {job['basis']}, {job['algorithm']})")
        else:
            print(job["id"])
        if not args.wait:
            return 0
        done = client.result(job["id"], timeout_s=args.timeout)
        _print_job(done)
        return 0 if done["state"] == "done" else 1

    return _handle_service_errors(run)


def cmd_status(args: argparse.Namespace) -> int:
    def run() -> int:
        client = _job_client(args)
        if args.job is not None:
            _print_job(client.status(args.job))
            return 0
        listing = client.status()
        depth, fleet = listing["depth"], listing["fleet"]
        print(f"queue        : {depth['open']} open "
              f"({depth['pending']} pending, {depth['running']} running, "
              f"{depth['retrying']} retrying) / {depth['done']} done, "
              f"{depth['failed']} failed, {depth['cancelled']} cancelled")
        print(f"fleet        : {fleet['busy']}/{fleet['size']} busy, "
              f"{fleet['lost_workers']} lost, {fleet['timeouts']} timed "
              f"out, {fleet['degraded_jobs']} degraded, "
              f"{fleet['respawns']} respawns")
        for job in listing["jobs"]:
            tag = f"  ({job['tag']})" if job.get("tag") else ""
            flags = " [degraded]" if job.get("degraded") else ""
            print(f"  {job['id']}  {job['state']:<9} "
                  f"attempt {job['attempt']}{flags}{tag}")
        return 0

    return _handle_service_errors(run)


def cmd_result(args: argparse.Namespace) -> int:
    def run() -> int:
        from repro.service import JobTimeoutError

        client = _job_client(args)
        try:
            job = client.result(
                args.job, wait=not args.no_wait, timeout_s=args.timeout,
            )
        except JobTimeoutError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 5
        _print_job(job)
        if job["state"] == "done":
            return 0
        return 1 if job["state"] in ("failed", "cancelled") else 5

    return _handle_service_errors(run)


def cmd_cancel(args: argparse.Namespace) -> int:
    def run() -> int:
        client = _job_client(args)
        _print_job(client.cancel(args.job), verbose=False)
        return 0

    return _handle_service_errors(run)


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.logctl import quiet_enabled
    from repro.obs.registry import RunRegistry
    from repro.obs.trace_assembly import TraceAssemblyError, assemble_job_trace

    journal = args.service_dir / "journal.ndjson"
    if not journal.exists():
        print(f"error: no service journal at {journal} "
              "(is --service-dir right?)", file=sys.stderr)
        return 2
    try:
        assembled = assemble_job_trace(
            journal, args.job,
            runs_root=RunRegistry(args.runs_dir).root,
        )
    except TraceAssemblyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = args.output
    if out is None:
        out = Path(f"trace-{assembled.job_id}.json")
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(assembled.to_chrome_trace()))

    problems = assembled.validate()
    if not args.no_report:
        print(f"job {assembled.job_id}  trace_id {assembled.trace_id}")
        print(f"{len(assembled.segments)} span(s) across "
              f"{len({s.pid for s in assembled.segments})} process track(s)"
              f"; {sum(1 for s in assembled.segments if s.synthetic)} "
              f"synthetic")
        print()
        print(assembled.critical_path_report())
    if not quiet_enabled():
        for warning in assembled.warnings:
            print(f"warning      : {warning}", file=sys.stderr)
    for problem in problems:
        print(f"invalid      : {problem}", file=sys.stderr)
    if not args.no_report or not quiet_enabled():
        print(f"\ntrace        : {out} (open in chrome://tracing or "
              f"ui.perfetto.dev)")
    return 1 if problems else 0


def cmd_slo(args: argparse.Namespace) -> int:
    import json

    from repro.obs.slo import (
        SLOTargetError,
        engine_from_telemetry,
        render_slo_report,
    )

    if args.source == "live":
        def run() -> int:
            client = _job_client(args)
            report = client.status().get("slo")
            if report is None:
                print("error: the service reports no SLO engine "
                      "(older daemon?)", file=sys.stderr)
                return 2
            print(json.dumps(report, indent=2) if args.json
                  else render_slo_report(report))
            return 0

        return _handle_service_errors(run)

    from repro.obs.registry import RunRegistry
    from repro.obs.telemetry import records_from_ndjson

    src = Path(args.source)
    if src.exists() and src.is_file():
        ndjson = src
    elif args.source == "latest":
        # The sink lives in the *serving* daemon's run directory, not
        # the per-job runs: take the newest run that recorded one.
        registry = RunRegistry(args.runs_dir)
        candidates = [
            registry.run_dir(run_id) / "telemetry.ndjson"
            for run_id in reversed(registry.run_ids())
        ]
        ndjson = next((p for p in candidates if p.exists()), None)
        if ndjson is None:
            print(f"error: no run under {registry.root} has a "
                  "telemetry.ndjson", file=sys.stderr)
            return 2
    else:
        registry = RunRegistry(args.runs_dir)
        try:
            run_id = registry.find(args.source)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        ndjson = registry.run_dir(run_id) / "telemetry.ndjson"
        if not ndjson.exists():
            print(f"error: run {run_id} has no telemetry.ndjson",
                  file=sys.stderr)
            return 2
    try:
        engine = engine_from_telemetry(
            records_from_ndjson(ndjson.read_text()), targets=args.targets,
        )
    except SLOTargetError as exc:
        print(f"error: invalid --slo target: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(engine.report(), indent=2) if args.json
          else engine.report_text())
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    from repro.chem.graphene import PAPER_DATASETS
    from repro.perfsim.workload import Workload

    spec = PAPER_DATASETS[args.label]
    print(f"dataset {args.label}: {spec.natoms} atoms, {spec.nshells} "
          f"shells, {spec.nbf} basis functions (6-31G(d), bilayer graphene)")
    wl = Workload.for_dataset(args.label)
    print(f"bra (ij) tasks          : {wl.npair_tasks:,}")
    print(f"significant after prescr: {wl.n_significant_tasks:,}")
    print(f"surviving quartets      : {wl.total_quartets:.3e}")
    print(f"screened fraction       : {100 * wl.screening_fraction():.2f}%")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.machine.system import JLSE, THETA
    from repro.perfsim.cost_model import calibrated_cost_model
    from repro.perfsim.simulate import RunConfig, simulate_fock_build
    from repro.perfsim.workload import Workload

    system = THETA if args.system == "theta" else JLSE
    wl = Workload.for_dataset(args.dataset)
    if args.algorithm == "mpi-only":
        cfg = RunConfig.mpi_only(
            system=system, nodes=args.nodes,
            ranks_per_node=args.ranks_per_node,
            cluster_mode=args.cluster_mode, memory_mode=args.memory_mode,
            schedule=args.schedule,
        )
    else:
        cfg = RunConfig.hybrid(
            args.algorithm, system=system, nodes=args.nodes,
            ranks_per_node=args.ranks_per_node or 4,
            threads_per_rank=args.threads,
            cluster_mode=args.cluster_mode, memory_mode=args.memory_mode,
            schedule=args.schedule,
        )
    sim = simulate_fock_build(wl, cfg, calibrated_cost_model())
    if not sim.feasible:
        print(f"INFEASIBLE: {sim.infeasible_reason}")
        return 1
    print(f"{args.algorithm} on {args.nodes} {system.name} node(s): "
          f"{sim.ranks_per_node} ranks/node, "
          f"{sim.hardware_threads_per_node} hw threads/node")
    print(f"Fock-build time         : {sim.total_seconds:.1f} s "
          f"({sim.per_iteration_seconds:.2f} s/iteration)")
    print(f"node memory             : {sim.node_memory_gb:.1f} GB")
    print(f"effective bandwidth     : {sim.effective_bandwidth_gbs:.0f} GB/s")
    print(f"load imbalance          : {sim.imbalance:.2f}")
    for k, v in sorted(sim.breakdown.items()):
        print(f"  {k:<12s}: {v:10.2f} s")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.analysis import figures, tables
    from repro.analysis.plots import ascii_loglog
    from repro.analysis.report import render_series
    from repro.perfsim.cost_model import calibrated_cost_model

    t = args.target
    if t == "all":
        import argparse as _ap

        rc = 0
        for target in ("table4", "table2", "table3", "fig3", "fig4",
                       "fig5", "fig6", "fig7"):
            print(f"\n========== {target} ==========")
            rc |= cmd_reproduce(_ap.Namespace(target=target))
        return rc
    if t == "table4":
        rows = tables.table4_system_sizes()
        print(tables.render_table(
            ["dataset", "atoms", "shells", "BFs"],
            [[r.dataset, str(r.natoms), str(r.nshells), str(r.nbf)]
             for r in rows],
        ))
        return 0
    if t == "table2":
        rows = tables.table2_memory_footprints()
        print(tables.render_table(
            ["dataset", "MPI GB", "Pr.F GB", "Sh.F GB",
             "paper MPI", "paper Pr.F", "paper Sh.F"],
            [[r.dataset, f"{r.mpi_gb:.2f}", f"{r.private_gb:.2f}",
              f"{r.shared_gb:.3f}", f"{r.paper_mpi_gb:g}",
              f"{r.paper_private_gb:g}", f"{r.paper_shared_gb:g}"]
             for r in rows],
        ))
        return 0

    cost = calibrated_cost_model()
    if t == "table3":
        rows = tables.table3_multinode(cost)
        print(tables.render_table(
            ["nodes", "MPI s", "Pr.F s", "Sh.F s",
             "MPI eff%", "Pr.F eff%", "Sh.F eff%"],
            [[str(r.nodes)]
             + [f"{r.times[a]:.0f}" for a in ALGORITHMS]
             + [f"{r.efficiencies[a]:.0f}" for a in ALGORITHMS]
             for r in rows],
        ))
        return 0
    if t == "fig3":
        series = figures.figure3_affinity(cost)
        print(render_series(series, "Figure 3: affinity sweep (seconds)"))
        return 0
    if t == "fig4":
        series = figures.figure4_single_node(cost)
        print(ascii_loglog(series, title="Figure 4: single-node scaling "
                                         "(1.0 nm)", xlabel="hw threads"))
        return 0
    if t == "fig5":
        out = figures.figure5_modes(cost)
        for label, recs in out.items():
            print(f"\n{label}:")
            print(tables.render_table(
                ["cluster", "memory", "algorithm", "seconds"],
                [[r["cluster"], r["memory"], r["algorithm"],
                  f"{r['seconds']:.0f}" if r["feasible"] else "(mem)"]
                 for r in recs],
            ))
        return 0
    if t == "fig6":
        series = figures.figure6_scaling_curves(cost)
        print(ascii_loglog(series, title="Figure 6: multi-node scaling "
                                         "(2.0 nm, Theta)", xlabel="nodes"))
        return 0
    if t == "fig7":
        series = figures.figure7_5nm_scaling(cost)
        print(ascii_loglog([series], title="Figure 7: 5.0 nm shared-Fock "
                                           "scaling", xlabel="nodes"))
        return 0
    raise AssertionError(f"unhandled target {t}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.obs.logctl import setup_logging

    args = build_parser().parse_args(argv)
    setup_logging(
        getattr(args, "log_level", "warning"),
        quiet=getattr(args, "quiet", False),
    )
    handlers = {
        "scf": cmd_scf,
        "profile": cmd_profile,
        "monitor": cmd_monitor,
        "runs": cmd_runs,
        "serve": cmd_serve,
        "batch": cmd_batch,
        "submit": cmd_submit,
        "status": cmd_status,
        "result": cmd_result,
        "cancel": cmd_cancel,
        "trace": cmd_trace,
        "slo": cmd_slo,
        "timeline": cmd_timeline,
        "compare": cmd_compare,
        "dataset": cmd_dataset,
        "simulate": cmd_simulate,
        "reproduce": cmd_reproduce,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # stdout consumer (head, less, ...) hung up mid-print; standard
        # CLI etiquette is a quiet exit, not a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
