"""KNL cluster (cache-coherency) modes.

The distributed tag directory's placement relative to the memory
controllers determines coherency-traffic latency.  The paper (section
5.1, Figure 5) finds quadrant-cache best for the hybrid codes, with
all-to-all noticeably worse — enough that the stock MPI code (whose
coherency traffic is minimal because nothing is shared) overtakes the
shared-Fock code in all-to-all mode on small systems.

Each mode carries two scalar penalties applied by the performance
model:

``coherency``
    Multiplier on thread-synchronization and shared-write costs
    (barriers, buffer flushes, shared Fock updates).
``memory``
    Multiplier on effective memory latency for irregular access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ClusterMode(str, enum.Enum):
    """KNL mesh clustering configuration."""

    ALL_TO_ALL = "all-to-all"
    QUADRANT = "quadrant"
    HEMISPHERE = "hemisphere"
    SNC4 = "snc-4"
    SNC2 = "snc-2"


@dataclass(frozen=True)
class ClusterPenalties:
    """Relative cost multipliers of a cluster mode (quadrant = 1.0)."""

    coherency: float
    memory: float


_PENALTIES: dict[ClusterMode, ClusterPenalties] = {
    # Tag directory anywhere on the mesh: longest coherency paths.
    ClusterMode.ALL_TO_ALL: ClusterPenalties(coherency=1.9, memory=1.25),
    ClusterMode.QUADRANT: ClusterPenalties(coherency=1.0, memory=1.0),
    ClusterMode.HEMISPHERE: ClusterPenalties(coherency=1.08, memory=1.04),
    # Sub-NUMA modes: excellent locality when processes stay in their
    # cluster (4 MPI ranks map one-per-SNC4 domain), mild extra cost for
    # cross-domain sharing.
    ClusterMode.SNC4: ClusterPenalties(coherency=0.97, memory=1.02),
    ClusterMode.SNC2: ClusterPenalties(coherency=1.0, memory=1.02),
}


def cluster_penalties(mode: ClusterMode | str) -> ClusterPenalties:
    """Penalty factors for a cluster mode."""
    return _PENALTIES[ClusterMode(mode)]
