"""Second-generation Intel Xeon Phi ("Knights Landing") node model.

Models the characteristics the paper's single-node results hinge on:

* 64 cores at 1.3 GHz, paired into 32 tiles with shared L2;
* two VPUs per core that require *two* hardware threads to saturate
  (the core issues two instructions per cycle) — hence the paper's
  observation that two threads per core give the largest gain, with
  diminishing returns at three and four;
* 16 GB of MCDRAM (~400 GB/s) in front of 192 GB DDR4 (~100 GB/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KNLNodeSpec:
    """One Knights Landing processor/node.

    The ``smt_throughput`` table gives total core throughput (relative
    to one thread per core) when 1-4 hardware threads share the core:
    the paper reports the biggest step from one to two threads per core
    and small additional gains beyond.
    """

    model: str
    ncores: int = 64
    threads_per_core: int = 4
    tiles: int = 32
    frequency_ghz: float = 1.3
    peak_gflops: float = 2622.0
    mcdram_gb: float = 16.0
    mcdram_bw_gbs: float = 400.0
    ddr_gb: float = 192.0
    ddr_bw_gbs: float = 100.0
    smt_throughput: tuple[float, float, float, float] = (1.00, 1.45, 1.52, 1.55)

    @property
    def max_hw_threads(self) -> int:
        """Total hardware threads (256 for a 64-core KNL)."""
        return self.ncores * self.threads_per_core

    def core_throughput(self, threads_on_core: int) -> float:
        """Relative core throughput with ``threads_on_core`` resident threads."""
        if threads_on_core <= 0:
            return 0.0
        idx = min(threads_on_core, self.threads_per_core) - 1
        return self.smt_throughput[idx]

    def node_throughput(self, total_threads: int, *, spread: bool = True) -> float:
        """Aggregate node throughput (in single-thread-core units).

        ``spread=True`` places threads one per core before doubling up
        (scatter/balanced affinity); ``spread=False`` packs cores to
        their 2-thread sweet spot first (compact affinity).
        """
        if total_threads <= 0:
            return 0.0
        total_threads = min(total_threads, self.max_hw_threads)
        if spread:
            base, extra = divmod(total_threads, self.ncores)
            # extra cores carry (base + 1) threads, the rest carry base.
            return extra * self.core_throughput(base + 1) + (
                self.ncores - extra
            ) * self.core_throughput(base)
        # Compact: fill cores two threads at a time.
        full_pairs, rem = divmod(total_threads, 2)
        cores_full = min(full_pairs, self.ncores)
        th = cores_full * self.core_throughput(2)
        if rem and cores_full < self.ncores:
            th += self.core_throughput(1)
        # Beyond 2/core, wrap around adding 3rd/4th threads.
        overflow = total_threads - 2 * self.ncores
        if overflow > 0:
            th = self.ncores * self.core_throughput(2)
            three, rem3 = divmod(overflow, self.ncores)
            if three >= 1:
                th = self.ncores * self.core_throughput(3)
                extra4 = overflow - self.ncores
                if extra4 > 0:
                    th = (
                        extra4 * self.core_throughput(4)
                        + (self.ncores - extra4) * self.core_throughput(3)
                    )
            else:
                th = (
                    rem3 * self.core_throughput(3)
                    + (self.ncores - rem3) * self.core_throughput(2)
                )
        return th


#: JLSE single-node testbed processor.
XEON_PHI_7210 = KNLNodeSpec(model="Xeon Phi 7210")

#: Theta compute-node processor.
XEON_PHI_7230 = KNLNodeSpec(model="Xeon Phi 7230")

#: A contemporary dual-socket Xeon (Broadwell-class) node, for the
#: paper's closing claim that the hybrid codes are "beneficial on the
#: Intel Xeon multicore platform" as well: fewer, faster cores, 2-way
#: SMT with a smaller second-thread gain, one flat DDR4 memory level
#: (modelled as DDR-speed MCDRAM of node-memory size so every memory
#: mode degenerates to flat DDR behaviour).
XEON_BDW_2697 = KNLNodeSpec(
    model="2x Xeon E5-2697v4",
    ncores=36,
    threads_per_core=2,
    tiles=36,
    frequency_ghz=2.3,
    peak_gflops=1324.0,
    mcdram_gb=128.0,
    mcdram_bw_gbs=154.0,
    ddr_gb=128.0,
    ddr_bw_gbs=154.0,
    smt_throughput=(1.00, 1.25, 1.25, 1.25),
)
