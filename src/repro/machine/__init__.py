"""Hardware models: Intel Xeon Phi (KNL) nodes, fabrics, named systems.

These are *parametric performance models*, not emulators: each class
exposes the small set of hardware characteristics the paper's results
actually depend on — the per-core multi-threading throughput curve, the
two-level MCDRAM/DDR4 memory with its configurable modes, the mesh
cluster (cache-coherency) modes, and the multi-node interconnect's
reduction cost — with numbers taken from the paper's own hardware
description (Table 1) and public KNL documentation.
"""

from repro.machine.knl import (
    KNLNodeSpec,
    XEON_BDW_2697,
    XEON_PHI_7210,
    XEON_PHI_7230,
)
from repro.machine.memory_modes import MemoryMode, effective_bandwidth_gbs
from repro.machine.cluster_modes import ClusterMode, cluster_penalties
from repro.machine.interconnect import (
    ARIES_DRAGONFLY,
    OMNI_PATH,
    InterconnectSpec,
)
from repro.machine.system import JLSE, THETA, XEON_CLUSTER, SystemSpec

__all__ = [
    "KNLNodeSpec",
    "XEON_PHI_7210",
    "XEON_PHI_7230",
    "XEON_BDW_2697",
    "MemoryMode",
    "effective_bandwidth_gbs",
    "ClusterMode",
    "cluster_penalties",
    "InterconnectSpec",
    "ARIES_DRAGONFLY",
    "OMNI_PATH",
    "SystemSpec",
    "THETA",
    "JLSE",
    "XEON_CLUSTER",
]
