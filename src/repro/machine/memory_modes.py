"""MCDRAM memory modes: flat, cache, hybrid.

The memory mode determines the effective bandwidth the Fock build's
memory-bound phases (density reads, buffer flushes, Fock updates) see,
as a function of the per-node working set:

* **cache** — MCDRAM is a direct-mapped L3 in front of DDR4.  Working
  sets within MCDRAM run near MCDRAM bandwidth (minus a direct-mapped
  conflict-miss penalty); larger working sets degrade smoothly toward
  DDR4 bandwidth.
* **flat** — explicit placement: ``flat-mcdram`` allocations run at full
  MCDRAM bandwidth but *must fit* in 16 GB; ``flat-ddr`` runs at DDR4
  bandwidth regardless of size (the ``numactl`` choices).
* **hybrid** — half the MCDRAM is cache, half is allocatable; modelled
  with the cache curve over an 8 GB cache.
"""

from __future__ import annotations

import enum

from repro.machine.knl import KNLNodeSpec


class MemoryMode(str, enum.Enum):
    """KNL boot-time memory configuration."""

    CACHE = "cache"
    FLAT_MCDRAM = "flat-mcdram"
    FLAT_DDR = "flat-ddr"
    HYBRID = "hybrid"


#: Direct-mapped-cache efficiency relative to raw MCDRAM bandwidth.
_CACHE_MODE_EFFICIENCY = 0.85


def effective_bandwidth_gbs(
    mode: MemoryMode,
    working_set_gb: float,
    node: KNLNodeSpec,
) -> float:
    """Effective streaming bandwidth for a working set under a mode.

    Raises
    ------
    ValueError
        For ``flat-mcdram`` with a working set that does not fit in
        MCDRAM (the real run would fail to allocate).
    """
    mode = MemoryMode(mode)
    if working_set_gb < 0:
        raise ValueError("working set must be non-negative")

    if mode is MemoryMode.FLAT_DDR:
        return node.ddr_bw_gbs
    if mode is MemoryMode.FLAT_MCDRAM:
        if working_set_gb > node.mcdram_gb:
            raise ValueError(
                f"working set {working_set_gb:.1f} GB exceeds MCDRAM "
                f"({node.mcdram_gb:.0f} GB) in flat-mcdram mode"
            )
        return node.mcdram_bw_gbs

    cache_gb = node.mcdram_gb if mode is MemoryMode.CACHE else node.mcdram_gb / 2
    peak = node.mcdram_bw_gbs * _CACHE_MODE_EFFICIENCY
    if working_set_gb <= cache_gb:
        return peak
    # Smooth hit-rate degradation: the cached fraction runs at MCDRAM
    # speed, the rest at DDR speed.
    hit = cache_gb / working_set_gb
    return hit * peak + (1.0 - hit) * node.ddr_bw_gbs


def fits_in_node(
    mode: MemoryMode, working_set_gb: float, node: KNLNodeSpec
) -> bool:
    """Whether a working set is allocatable at all under the mode."""
    mode = MemoryMode(mode)
    if mode is MemoryMode.FLAT_MCDRAM:
        return working_set_gb <= node.mcdram_gb
    if mode is MemoryMode.HYBRID:
        return working_set_gb <= node.ddr_gb + node.mcdram_gb / 2
    if mode is MemoryMode.FLAT_DDR:
        return working_set_gb <= node.ddr_gb
    return working_set_gb <= node.ddr_gb  # cache mode: DDR capacity
