"""Multi-node interconnect models: Cray Aries (Theta), Intel Omni-Path (JLSE).

The Fock algorithms' inter-node communication is dominated by one
pattern: the SCF-iteration allreduce of the Fock matrix, plus the
steady trickle of DDI load-balancer counter fetches.  Both are modelled
with standard alpha-beta (latency-bandwidth) terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectSpec:
    """Alpha-beta fabric model.

    Attributes
    ----------
    name:
        Fabric family.
    latency_us:
        Small-message one-way latency.
    bandwidth_gbs:
        Per-node injection bandwidth.
    dlb_rtt_us:
        Round-trip time of one remote DLB counter fetch (an RMA
        fetch-and-add on the rank-0 node).
    """

    name: str
    latency_us: float
    bandwidth_gbs: float
    dlb_rtt_us: float

    def allreduce_seconds(self, nbytes: float, nranks: int) -> float:
        """Allreduce time: recursive-doubling tree (Rabenseifner-style).

        ``2 * log2(p)`` latency terms plus ``2 * (p-1)/p`` bandwidth
        terms — the standard large-message allreduce model.
        """
        if nranks <= 1:
            return 0.0
        p = float(nranks)
        lat = 2.0 * math.log2(p) * self.latency_us * 1e-6
        bw = 2.0 * (p - 1.0) / p * nbytes / (self.bandwidth_gbs * 1e9)
        return lat + bw

    def dlb_fetch_seconds(self, *, same_node: bool = False) -> float:
        """One dynamic-load-balancer counter fetch."""
        if same_node:
            return 0.3e-6  # shared-memory atomic
        return self.dlb_rtt_us * 1e-6


#: Theta's fabric: Aries with dragonfly topology.
ARIES_DRAGONFLY = InterconnectSpec(
    name="Aries dragonfly", latency_us=1.3, bandwidth_gbs=8.0, dlb_rtt_us=2.5
)

#: JLSE's fabric.
OMNI_PATH = InterconnectSpec(
    name="Intel Omni-Path", latency_us=1.0, bandwidth_gbs=12.5, dlb_rtt_us=2.0
)
