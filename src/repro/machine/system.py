"""Named benchmark systems: Theta (ALCF Cray XC40) and the JLSE cluster."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.interconnect import ARIES_DRAGONFLY, OMNI_PATH, InterconnectSpec
from repro.machine.knl import (
    KNLNodeSpec,
    XEON_BDW_2697,
    XEON_PHI_7210,
    XEON_PHI_7230,
)


@dataclass(frozen=True)
class SystemSpec:
    """A benchmark machine: homogeneous KNL nodes plus a fabric."""

    name: str
    node: KNLNodeSpec
    interconnect: InterconnectSpec
    max_nodes: int

    def validate_nodes(self, nodes: int) -> None:
        """Raise if a requested node count exceeds the machine."""
        if nodes < 1:
            raise ValueError("need at least one node")
        if nodes > self.max_nodes:
            raise ValueError(
                f"{self.name} has {self.max_nodes} nodes; {nodes} requested"
            )


#: The 3,624-node Cray XC40 at ALCF used for all multi-node results.
THETA = SystemSpec(
    name="Theta",
    node=XEON_PHI_7230,
    interconnect=ARIES_DRAGONFLY,
    max_nodes=3624,
)

#: The 10-node Joint Laboratory for System Evaluation testbed used for
#: all single-node results.
JLSE = SystemSpec(
    name="JLSE",
    node=XEON_PHI_7210,
    interconnect=OMNI_PATH,
    max_nodes=10,
)

#: A generic Xeon (Broadwell) cluster for the paper's portability claim
#: — the hybrid codes are expected to help on standard multicore Xeons
#: too, if less dramatically than on the many-core Phi.
XEON_CLUSTER = SystemSpec(
    name="Xeon-BDW cluster",
    node=XEON_BDW_2697,
    interconnect=OMNI_PATH,
    max_nodes=1024,
)
