"""Overlap integrals over contracted Cartesian Gaussian shells."""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shell import Shell
from repro.integrals.hermite import e_coefficients_3d


def overlap_shell_pair(sha: Shell, shb: Shell) -> np.ndarray:
    """Overlap block :math:`\\langle a | b \\rangle`.

    Returns
    -------
    numpy.ndarray
        Shape ``(sha.nfunc, shb.nfunc)`` in canonical Cartesian order.
    """
    A, B = sha.center, shb.center
    comps_a, comps_b = sha.components, shb.components
    out = np.zeros((sha.nfunc, shb.nfunc))

    for a, ca in zip(sha.exps, sha.coefs):
        for b, cb in zip(shb.exps, shb.coefs):
            p = a + b
            Ex, Ey, Ez = e_coefficients_3d(sha.l, shb.l, a, b, A, B)
            pref = ca * cb * (math.pi / p) ** 1.5
            for ia, (ax, ay, az) in enumerate(comps_a):
                for ib, (bx, by, bz) in enumerate(comps_b):
                    out[ia, ib] += (
                        pref * Ex[ax, bx, 0] * Ey[ay, by, 0] * Ez[az, bz, 0]
                    )
    return out
