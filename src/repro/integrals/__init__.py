"""Gaussian integral engine (McMurchie-Davidson scheme).

All integrals the Hartree-Fock method needs, implemented from scratch
over contracted Cartesian Gaussian shells:

* :mod:`repro.integrals.boys` — the Boys function :math:`F_m(x)`.
* :mod:`repro.integrals.hermite` — Hermite expansion coefficients
  :math:`E_t^{ij}` and Hermite Coulomb tensors :math:`R_{tuv}`.
* :mod:`repro.integrals.overlap` / ``kinetic`` / ``nuclear`` —
  one-electron shell-pair kernels.
* :mod:`repro.integrals.eri` — two-electron repulsion integrals over
  shell quartets (batched primitive evaluation), plus contracted-shell
  pair caching.
* :mod:`repro.integrals.cache` — memory-bounded LRU cache of quartet
  ERI blocks (semi-direct SCF).
* :mod:`repro.integrals.schwarz` — exact Cauchy-Schwarz bounds
  :math:`Q_{ij} = \\sqrt{(ij|ij)}` over composite shells.
* :mod:`repro.integrals.onee` — full S, T, V matrix drivers.
"""

from repro.integrals.boys import boys
from repro.integrals.cache import QuartetCache
from repro.integrals.eri import (
    ShellPair,
    eri_shell_quartet,
    eri_shell_quartet_scalar,
    make_shell_pairs,
)
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.integrals.schwarz import schwarz_matrix

__all__ = [
    "boys",
    "QuartetCache",
    "ShellPair",
    "eri_shell_quartet",
    "eri_shell_quartet_scalar",
    "make_shell_pairs",
    "overlap_matrix",
    "kinetic_matrix",
    "nuclear_matrix",
    "schwarz_matrix",
]
