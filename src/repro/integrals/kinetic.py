"""Kinetic-energy integrals over contracted Cartesian Gaussian shells.

Uses the 1-D decomposition

.. math::

   T = T_x S_y S_z + S_x T_y S_z + S_x S_y T_z,

with the per-axis kinetic factor expressed through overlaps of shifted
angular momenta:

.. math::

   T^{ij}_x = -2 b^2 s^{i,j+2} + b (2j + 1) s^{ij}
              - \\tfrac{1}{2} j (j - 1) s^{i,j-2}.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shell import Shell
from repro.integrals.hermite import e_coefficients_3d


def kinetic_shell_pair(sha: Shell, shb: Shell) -> np.ndarray:
    """Kinetic-energy block :math:`\\langle a | -\\nabla^2/2 | b \\rangle`.

    Returns
    -------
    numpy.ndarray
        Shape ``(sha.nfunc, shb.nfunc)``.
    """
    A, B = sha.center, shb.center
    comps_a, comps_b = sha.components, shb.components
    out = np.zeros((sha.nfunc, shb.nfunc))

    for a, ca in zip(sha.exps, sha.coefs):
        for b, cb in zip(shb.exps, shb.coefs):
            p = a + b
            # E tensors with ket angular momentum raised by 2 so the
            # s^{i, j+2} terms are available.
            Es = e_coefficients_3d(sha.l, shb.l + 2, a, b, A, B)
            pref = ca * cb * (math.pi / p) ** 1.5

            def s1d(E: np.ndarray, i: int, j: int) -> float:
                if j < 0:
                    return 0.0
                return E[i, j, 0]

            def t1d(E: np.ndarray, i: int, j: int) -> float:
                val = -2.0 * b * b * s1d(E, i, j + 2)
                val += b * (2 * j + 1) * s1d(E, i, j)
                if j >= 2:
                    val -= 0.5 * j * (j - 1) * s1d(E, i, j - 2)
                return val

            for ia, (ax, ay, az) in enumerate(comps_a):
                for ib, (bx, by, bz) in enumerate(comps_b):
                    sx = s1d(Es[0], ax, bx)
                    sy = s1d(Es[1], ay, by)
                    sz = s1d(Es[2], az, bz)
                    tx = t1d(Es[0], ax, bx)
                    ty = t1d(Es[1], ay, by)
                    tz = t1d(Es[2], az, bz)
                    out[ia, ib] += pref * (tx * sy * sz + sx * ty * sz + sx * sy * tz)
    return out
