"""The Boys function :math:`F_m(x) = \\int_0^1 t^{2m} e^{-x t^2} dt`.

The fundamental special function of Gaussian molecular integrals.  The
highest required order is evaluated with Kummer's confluent
hypergeometric function (``scipy.special.hyp1f1``), and lower orders
follow from the numerically stable *downward* recursion

.. math:: F_{m}(x) = \\frac{2 x F_{m+1}(x) + e^{-x}}{2m + 1}.
"""

from __future__ import annotations

import numpy as np
from scipy.special import hyp1f1


def boys(m_max: int, x: np.ndarray | float) -> np.ndarray:
    """Evaluate :math:`F_m(x)` for all orders ``0..m_max``.

    Parameters
    ----------
    m_max:
        Highest Boys order required (inclusive).
    x:
        Argument(s); scalar or array, must be non-negative.

    Returns
    -------
    numpy.ndarray
        Shape ``(m_max + 1,) + np.shape(x)``; row ``m`` holds
        :math:`F_m` at every argument.
    """
    xs = np.asarray(x, dtype=np.float64)
    if np.any(xs < 0):
        raise ValueError("Boys function argument must be non-negative")
    shape = xs.shape
    xf = xs.ravel()

    out = np.empty((m_max + 1, xf.size), dtype=np.float64)
    # Top order via 1F1: F_m(x) = 1F1(m + 1/2; m + 3/2; -x) / (2m + 1).
    out[m_max] = hyp1f1(m_max + 0.5, m_max + 1.5, -xf) / (2.0 * m_max + 1.0)
    if m_max > 0:
        ex = np.exp(-xf)
        for m in range(m_max - 1, -1, -1):
            out[m] = (2.0 * xf * out[m + 1] + ex) / (2.0 * m + 1.0)
    return out.reshape((m_max + 1,) + shape)


def boys_single(m: int, x: float) -> float:
    """Scalar convenience wrapper: :math:`F_m(x)` for a single point."""
    return float(boys(m, np.float64(x))[m])
