"""Electron-repulsion integrals over shell quartets (McMurchie-Davidson).

The quartet kernel follows the factorized form

.. math::

   (ab|cd) = \\frac{2 \\pi^{5/2}}{p q \\sqrt{p+q}}
             \\sum_{tuv} E^{ab}_{tuv}
             \\sum_{\\tau\\nu\\phi} (-1)^{\\tau+\\nu+\\phi}
             E^{cd}_{\\tau\\nu\\phi}
             R^0_{t+\\tau,\\,u+\\nu,\\,v+\\phi}(\\alpha, P - Q),

with :math:`\\alpha = pq/(p+q)`.  Per contracted shell *pair* the bra
E-product matrices are precomputed once (:class:`ShellPair`), so a
quartet evaluation reduces to one Hermite Coulomb tensor plus two small
matrix products per primitive pair combination — the same
pair-precomputation strategy production integral codes use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem.basis.shell import Shell
from repro.integrals.hermite import e_coefficients_3d, hermite_coulomb

#: Cache of Hermite (t,u,v) cube index arrays keyed by cube edge length.
_TUV_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _tuv_indices(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (t, u, v) index arrays for an ``n``-cube, cached."""
    try:
        return _TUV_CACHE[n]
    except KeyError:
        t, u, v = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
        entry = (t.ravel(), u.ravel(), v.ravel())
        _TUV_CACHE[n] = entry
        return entry


@dataclass(frozen=True)
class _PrimitivePairData:
    """Precomputed data for one primitive pair of a shell pair."""

    p: float          # total exponent a + b
    P: np.ndarray     # Gaussian product center
    coef: float       # product of contraction coefficients
    ebra: np.ndarray  # (nfa * nfb, ncube) Hermite E-product matrix


class ShellPair:
    """Precomputed Hermite expansion data for a contracted shell pair.

    Parameters
    ----------
    sha, shb:
        The two pure shells.  The pair stores, for every primitive
        combination, the Gaussian-product data and the dense E-product
        matrix mapping Hermite (t,u,v) components to Cartesian function
        pairs.
    """

    def __init__(self, sha: Shell, shb: Shell) -> None:
        self.sha = sha
        self.shb = shb
        la, lb = sha.l, shb.l
        self.ltot = la + lb
        self.ncube = self.ltot + 1
        nfa, nfb = sha.nfunc, shb.nfunc
        self.nfunc_pair = nfa * nfb
        tt, uu, vv = _tuv_indices(self.ncube)

        comps_a, comps_b = sha.components, shb.components
        prims: list[_PrimitivePairData] = []
        A, B = sha.center, shb.center
        for a, ca in zip(sha.exps, sha.coefs):
            for b, cb in zip(shb.exps, shb.coefs):
                Ex, Ey, Ez = e_coefficients_3d(la, lb, a, b, A, B)
                ebra = np.empty((self.nfunc_pair, tt.size))
                row = 0
                for (ax, ay, az) in comps_a:
                    for (bx, by, bz) in comps_b:
                        ebra[row] = (
                            Ex[ax, bx, tt] * Ey[ay, by, uu] * Ez[az, bz, vv]
                        )
                        row += 1
                p = a + b
                prims.append(
                    _PrimitivePairData(p, (a * A + b * B) / p, ca * cb, ebra)
                )
        self.prims: tuple[_PrimitivePairData, ...] = tuple(prims)

        # Ket-side sign vector (-1)^(t+u+v) on the flattened cube.
        self._ket_signs = ((-1.0) ** (tt + uu + vv)).astype(np.float64)

    def ket_matrices(self) -> list[np.ndarray]:
        """E-product matrices with ket parity signs folded in."""
        return [pp.ebra * self._ket_signs[None, :] for pp in self.prims]


def make_shell_pairs(shells: tuple[Shell, ...] | list[Shell]) -> dict[tuple[int, int], ShellPair]:
    """Build the :class:`ShellPair` cache for all pairs ``i >= j``.

    Keys are (bra_index, ket_index) into ``shells``; only the lower
    triangle is stored since ``ShellPair(i, j)`` serves both orders via
    transposition at the quartet level.
    """
    pairs: dict[tuple[int, int], ShellPair] = {}
    for i, sa in enumerate(shells):
        for j, sb in enumerate(shells[: i + 1]):
            pairs[(i, j)] = ShellPair(sa, sb)
    return pairs


def eri_shell_quartet(
    bra: ShellPair, ket: ShellPair
) -> np.ndarray:
    """Contracted ERI block :math:`(ab|cd)` for one shell quartet.

    Parameters
    ----------
    bra:
        Precomputed pair for shells (a, b).
    ket:
        Precomputed pair for shells (c, d).

    Returns
    -------
    numpy.ndarray
        Shape ``(nfa, nfb, nfc, nfd)`` in canonical Cartesian order.
    """
    ltot = bra.ltot + ket.ltot
    nb, nk = bra.ncube, ket.ncube
    tb, ub, vb = _tuv_indices(nb)
    tk, uk, vk = _tuv_indices(nk)

    # Offset-sum fancy indices: M[tuv_bra, tuv_ket] = R[t+tau, u+nu, v+phi].
    ti = tb[:, None] + tk[None, :]
    ui = ub[:, None] + uk[None, :]
    vi = vb[:, None] + vk[None, :]

    out = np.zeros((bra.nfunc_pair, ket.nfunc_pair))
    ket_signs = ket._ket_signs
    for bp in bra.prims:
        p, P, cb_coef, ebra = bp.p, bp.P, bp.coef, bp.ebra
        for kp in ket.prims:
            q, Q, ck_coef = kp.p, kp.P, kp.coef
            alpha = p * q / (p + q)
            R = hermite_coulomb(ltot, alpha, P - Q)
            M = R[ti, ui, vi]
            pref = (
                cb_coef
                * ck_coef
                * 2.0
                * math.pi ** 2.5
                / (p * q * math.sqrt(p + q))
            )
            eket = kp.ebra * ket_signs[None, :]
            out += pref * (ebra @ M @ eket.T)

    return out.reshape(
        bra.sha.nfunc, bra.shb.nfunc, ket.sha.nfunc, ket.shb.nfunc
    )


def eri_quartet_shells(sa: Shell, sb: Shell, sc: Shell, sd: Shell) -> np.ndarray:
    """Convenience quartet evaluation without a pair cache (tests)."""
    return eri_shell_quartet(ShellPair(sa, sb), ShellPair(sc, sd))
