"""Electron-repulsion integrals over shell quartets (McMurchie-Davidson).

The quartet kernel follows the factorized form

.. math::

   (ab|cd) = \\frac{2 \\pi^{5/2}}{p q \\sqrt{p+q}}
             \\sum_{tuv} E^{ab}_{tuv}
             \\sum_{\\tau\\nu\\phi} (-1)^{\\tau+\\nu+\\phi}
             E^{cd}_{\\tau\\nu\\phi}
             R^0_{t+\\tau,\\,u+\\nu,\\,v+\\phi}(\\alpha, P - Q),

with :math:`\\alpha = pq/(p+q)`.  Per contracted shell *pair* the
E-product matrices are precomputed once (:class:`ShellPair`) — for the
bra role as-is, for the ket role with the :math:`(-1)^{\\tau+\\nu+\\phi}`
parity signs folded in — the same pair-precomputation strategy
production integral codes use.

The quartet evaluation itself is **batched**: all bra x ket primitive
pair combinations are stacked into one array of
``(reduced exponent, P - Q)`` points, the Hermite Coulomb tensors for
the whole batch come from one call to
:func:`~repro.integrals.hermite.hermite_coulomb_batch` (hence ONE
vectorized Boys evaluation per quartet), and the two E contractions
collapse into two BLAS-backed ``tensordot`` calls.  This is the Python
analogue of the paper's vectorized ``twoei`` kernel.
:func:`eri_shell_quartet_scalar` keeps the pre-batching primitive-loop
evaluation as the numerical reference.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shell import Shell
from repro.integrals.hermite import (
    e_coefficients_3d,
    hermite_coulomb,
    hermite_coulomb_batch,
)
from repro.obs.metrics import get_metrics

#: Cache of Hermite (t,u,v) cube index arrays keyed by cube edge length.
_TUV_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

_TWO_PI_POW = 2.0 * math.pi ** 2.5


def _tuv_indices(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flattened (t, u, v) index arrays for an ``n``-cube, cached."""
    try:
        return _TUV_CACHE[n]
    except KeyError:
        t, u, v = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
        entry = (t.ravel(), u.ravel(), v.ravel())
        _TUV_CACHE[n] = entry
        return entry


class ShellPair:
    """Precomputed Hermite expansion data for a contracted shell pair.

    Parameters
    ----------
    sha, shb:
        The two pure shells.  The pair stores the Gaussian-product data
        of every primitive combination as stacked arrays — exponents
        ``p``, product centers ``P``, coefficient products ``coef``, and
        the dense E-product tensor ``ebra`` mapping Hermite (t,u,v)
        components to Cartesian function pairs — plus ``eket``, the same
        tensor with the ket parity signs :math:`(-1)^{t+u+v}` folded in
        once (so no per-quartet sign multiply survives on the hot path).
    """

    def __init__(self, sha: Shell, shb: Shell) -> None:
        self.sha = sha
        self.shb = shb
        la, lb = sha.l, shb.l
        self.ltot = la + lb
        self.ncube = self.ltot + 1
        nfa, nfb = sha.nfunc, shb.nfunc
        self.nfunc_pair = nfa * nfb
        tt, uu, vv = _tuv_indices(self.ncube)

        comps_a, comps_b = sha.components, shb.components
        A, B = sha.center, shb.center
        nprim = sha.nprim * shb.nprim
        self.nprim = nprim
        self.p = np.empty(nprim)
        self.P = np.empty((nprim, 3))
        self.coef = np.empty(nprim)
        self.ebra = np.empty((nprim, self.nfunc_pair, tt.size))
        n = 0
        for a, ca in zip(sha.exps, sha.coefs):
            for b, cb in zip(shb.exps, shb.coefs):
                Ex, Ey, Ez = e_coefficients_3d(la, lb, a, b, A, B)
                row = 0
                for (ax, ay, az) in comps_a:
                    for (bx, by, bz) in comps_b:
                        self.ebra[n, row] = (
                            Ex[ax, bx, tt] * Ey[ay, by, uu] * Ez[az, bz, vv]
                        )
                        row += 1
                p = a + b
                self.p[n] = p
                self.P[n] = (a * A + b * B) / p
                self.coef[n] = ca * cb
                n += 1

        # Ket-side parity signs (-1)^(t+u+v), folded into the E tensor
        # once per pair instead of once per quartet x primitive pair.
        self._ket_signs = ((-1.0) ** (tt + uu + vv)).astype(np.float64)
        self.eket = self.ebra * self._ket_signs[None, None, :]


def make_shell_pairs(shells: tuple[Shell, ...] | list[Shell]) -> dict[tuple[int, int], ShellPair]:
    """Build the :class:`ShellPair` cache for all pairs ``i >= j``.

    Keys are (bra_index, ket_index) into ``shells``; only the lower
    triangle is stored since ``ShellPair(i, j)`` serves both orders via
    transposition at the quartet level.
    """
    pairs: dict[tuple[int, int], ShellPair] = {}
    for i, sa in enumerate(shells):
        for j, sb in enumerate(shells[: i + 1]):
            pairs[(i, j)] = ShellPair(sa, sb)
    return pairs


def eri_shell_quartet(
    bra: ShellPair, ket: ShellPair
) -> np.ndarray:
    """Contracted ERI block :math:`(ab|cd)` for one shell quartet.

    Batched evaluation: the ``nprim_bra * nprim_ket`` primitive-pair
    combinations are evaluated as ONE
    :func:`~repro.integrals.hermite.hermite_coulomb_batch` call (a
    single vectorized Boys evaluation), then contracted against the
    precomputed bra/ket E tensors with two ``tensordot`` calls.

    Parameters
    ----------
    bra:
        Precomputed pair for shells (a, b).
    ket:
        Precomputed pair for shells (c, d).

    Returns
    -------
    numpy.ndarray
        Shape ``(nfa, nfb, nfc, nfd)`` in canonical Cartesian order.
    """
    ltot = bra.ltot + ket.ltot
    nb, nk = bra.ncube, ket.ncube
    tb, ub, vb = _tuv_indices(nb)
    tk, uk, vk = _tuv_indices(nk)

    # Offset-sum fancy indices: M[tuv_bra, tuv_ket] = R[t+tau, u+nu, v+phi].
    ti = tb[:, None] + tk[None, :]
    ui = ub[:, None] + uk[None, :]
    vi = vb[:, None] + vk[None, :]

    # Stack every bra x ket primitive combination into one batch.
    p = bra.p[:, None]
    q = ket.p[None, :]
    psum = p + q
    alpha = (p * q / psum).ravel()
    PQ = (bra.P[:, None, :] - ket.P[None, :, :]).reshape(-1, 3)

    R = hermite_coulomb_batch(ltot, alpha, PQ)
    M = R[:, ti, ui, vi]  # (nprim_bra * nprim_ket, ncube_bra^3, ncube_ket^3)

    pref = (
        _TWO_PI_POW
        * bra.coef[:, None]
        * ket.coef[None, :]
        / (p * q * np.sqrt(psum))
    )
    M *= pref.reshape(-1, 1, 1)
    M = M.reshape(bra.nprim, ket.nprim, ti.shape[0], ti.shape[1])

    registry = get_metrics()
    if registry is not None:
        registry.counter("eri.quartets").inc()
        registry.counter("eri.boys_calls").inc()
        registry.histogram("eri.batch_size").observe(alpha.size)

    # out[a, b] = sum_{ij} ebra[i, a, c] M[i, j, c, d] eket[j, b, d]
    K = np.tensordot(M, ket.eket, axes=([1, 3], [0, 2]))  # (nprim_b, cb, nfk)
    out = np.tensordot(bra.ebra, K, axes=([0, 2], [0, 1]))  # (nfb_pair, nfk_pair)

    return out.reshape(
        bra.sha.nfunc, bra.shb.nfunc, ket.sha.nfunc, ket.shb.nfunc
    )


def eri_shell_quartet_scalar(bra: ShellPair, ket: ShellPair) -> np.ndarray:
    """Pre-batching reference: scalar primitive loops, one Boys call each.

    Numerically this is the seed implementation (same per-primitive
    arithmetic and accumulation order); it exists as the reference the
    property tests and the ERI micro-benchmark compare the batched path
    against.
    """
    ltot = bra.ltot + ket.ltot
    nb, nk = bra.ncube, ket.ncube
    tb, ub, vb = _tuv_indices(nb)
    tk, uk, vk = _tuv_indices(nk)
    ti = tb[:, None] + tk[None, :]
    ui = ub[:, None] + uk[None, :]
    vi = vb[:, None] + vk[None, :]

    out = np.zeros((bra.nfunc_pair, ket.nfunc_pair))
    for i in range(bra.nprim):
        p, P, cb_coef = bra.p[i], bra.P[i], bra.coef[i]
        ebra = bra.ebra[i]
        for j in range(ket.nprim):
            q, Q, ck_coef = ket.p[j], ket.P[j], ket.coef[j]
            alpha = p * q / (p + q)
            R = hermite_coulomb(ltot, alpha, P - Q)
            M = R[ti, ui, vi]
            pref = (
                cb_coef * ck_coef * _TWO_PI_POW / (p * q * math.sqrt(p + q))
            )
            out += pref * (ebra @ M @ ket.eket[j].T)

    return out.reshape(
        bra.sha.nfunc, bra.shb.nfunc, ket.sha.nfunc, ket.shb.nfunc
    )


def eri_quartet_shells(sa: Shell, sb: Shell, sc: Shell, sd: Shell) -> np.ndarray:
    """Convenience quartet evaluation without a pair cache (tests)."""
    return eri_shell_quartet(ShellPair(sa, sb), ShellPair(sc, sd))
