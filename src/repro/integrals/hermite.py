"""Hermite-Gaussian machinery of the McMurchie-Davidson scheme.

Two building blocks:

* :func:`e_coefficients_1d` — the expansion coefficients
  :math:`E_t^{ij}` that express a product of two 1-D Cartesian
  Gaussians as a sum of Hermite Gaussians.
* :func:`hermite_coulomb` — the Hermite Coulomb integral tensor
  :math:`R^0_{tuv}` built from Boys-function values by the standard
  three-term recursions.
* :func:`hermite_coulomb_batch` — the same recursion over a whole
  *batch* of ``(exponent, displacement)`` points at once, with ONE
  vectorized Boys evaluation for the entire batch.  This is the
  array-argument path the batched ERI kernel drives: per shell quartet
  every bra x ket primitive-pair combination becomes one batch point.

Both follow Helgaker, Jorgensen & Olsen, *Molecular Electronic-Structure
Theory*, chapter 9.
"""

from __future__ import annotations

import numpy as np

from repro.integrals.boys import boys


def e_coefficients_1d(
    la: int, lb: int, pa: float, pb: float, p: float, mu_xab2: float
) -> np.ndarray:
    """1-D Hermite expansion coefficients :math:`E_t^{ij}`.

    Parameters
    ----------
    la, lb:
        Maximum Cartesian exponents on centers A and B for this axis.
    pa, pb:
        :math:`P_x - A_x` and :math:`P_x - B_x` (Gaussian product center
        relative to each origin).
    p:
        Total exponent :math:`a + b`.
    mu_xab2:
        :math:`\\mu (A_x - B_x)^2` with :math:`\\mu = ab/p` — the 1-D
        Gaussian-product prefactor exponent.

    Returns
    -------
    numpy.ndarray
        ``E[i, j, t]`` of shape ``(la+1, lb+1, la+lb+1)``; entries with
        ``t > i + j`` are zero.
    """
    E = np.zeros((la + 1, lb + 1, la + lb + 1))
    E[0, 0, 0] = np.exp(-mu_xab2)
    one_over_2p = 0.5 / p

    # Build up in i with j = 0.
    for i in range(1, la + 1):
        tmax = i
        for t in range(tmax + 1):
            val = pa * E[i - 1, 0, t]
            if t > 0:
                val += one_over_2p * E[i - 1, 0, t - 1]
            if t + 1 <= i - 1:
                val += (t + 1) * E[i - 1, 0, t + 1]
            E[i, 0, t] = val

    # Then increment j for every i.
    for j in range(1, lb + 1):
        for i in range(la + 1):
            tmax = i + j
            for t in range(tmax + 1):
                val = pb * E[i, j - 1, t]
                if t > 0:
                    val += one_over_2p * E[i, j - 1, t - 1]
                if t + 1 <= i + j - 1:
                    val += (t + 1) * E[i, j - 1, t + 1]
                E[i, j, t] = val
    return E


def e_coefficients_3d(
    la: int, lb: int, a: float, b: float, A: np.ndarray, B: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-axis :math:`E_t^{ij}` tensors for a primitive pair.

    Returns ``(Ex, Ey, Ez)`` each shaped ``(la+1, lb+1, la+lb+1)``.
    The 3-D Gaussian-product prefactor :math:`e^{-\\mu |AB|^2}` is
    distributed across the three axes (one factor each), so products
    ``Ex * Ey * Ez`` carry it exactly once.
    """
    p = a + b
    mu = a * b / p
    P = (a * A + b * B) / p
    out = []
    for d in range(3):
        out.append(
            e_coefficients_1d(
                la, lb, P[d] - A[d], P[d] - B[d], p, mu * (A[d] - B[d]) ** 2
            )
        )
    return out[0], out[1], out[2]


def hermite_coulomb(lmax: int, p: float, PC: np.ndarray) -> np.ndarray:
    """Hermite Coulomb tensor :math:`R^0_{tuv}(p, \\mathbf{PC})`.

    Parameters
    ----------
    lmax:
        Maximum total Hermite order ``t + u + v`` required.
    p:
        Exponent of the Hermite Gaussian (total or reduced exponent,
        depending on the integral type).
    PC:
        3-vector from the Hermite center to the charge center.

    Returns
    -------
    numpy.ndarray
        ``R[t, u, v]`` of shape ``(lmax+1,)*3``; only entries with
        ``t + u + v <= lmax`` are populated.
    """
    # Explicit component sum: the exact same floating-point order as the
    # batched path, so scalar and batched R tensors agree bitwise.
    x2 = float(PC[0] * PC[0] + PC[1] * PC[1] + PC[2] * PC[2])
    F = boys(lmax, p * x2)  # F[n]

    # R^n_{000} = (-2p)^n F_n.
    Rn = np.zeros((lmax + 1, lmax + 1, lmax + 1, lmax + 1))
    minus_2p = -2.0 * p
    fac = 1.0
    for n in range(lmax + 1):
        Rn[n, 0, 0, 0] = fac * F[n]
        fac *= minus_2p

    X, Y, Z = float(PC[0]), float(PC[1]), float(PC[2])
    # Raise t, then u, then v, lowering the auxiliary order n each time.
    for total in range(1, lmax + 1):
        for t in range(total + 1):
            for u in range(total - t + 1):
                v = total - t - u
                for n in range(lmax + 1 - total):
                    if t > 0:
                        val = X * Rn[n + 1, t - 1, u, v]
                        if t > 1:
                            val += (t - 1) * Rn[n + 1, t - 2, u, v]
                    elif u > 0:
                        val = Y * Rn[n + 1, t, u - 1, v]
                        if u > 1:
                            val += (u - 1) * Rn[n + 1, t, u - 2, v]
                    else:
                        val = Z * Rn[n + 1, t, u, v - 1]
                        if v > 1:
                            val += (v - 1) * Rn[n + 1, t, u, v - 2]
                    Rn[n, t, u, v] = val
    return Rn[0]


def hermite_coulomb_batch(
    lmax: int, p: np.ndarray, PC: np.ndarray
) -> np.ndarray:
    """Batched :math:`R^0_{tuv}`: the recursion over many points at once.

    Parameters
    ----------
    lmax:
        Maximum total Hermite order ``t + u + v`` required (shared by
        the whole batch).
    p:
        Exponents, shape ``(n,)``.
    PC:
        Displacement vectors, shape ``(n, 3)``.

    Returns
    -------
    numpy.ndarray
        ``R[point, t, u, v]`` of shape ``(n, lmax+1, lmax+1, lmax+1)``.
        ``R[i]`` equals ``hermite_coulomb(lmax, p[i], PC[i])`` to
        floating-point roundoff.

    Notes
    -----
    The Boys function is evaluated exactly **once**, vectorized over all
    ``n`` arguments — the batching the paper's ``twoei`` kernel relies
    on to keep the special-function cost off the per-primitive path.
    The three-term recursions then run with the batch (and the auxiliary
    order ``n``) as vectorized trailing/leading axes; only the
    ``O(lmax^3)`` loop over (t, u, v) targets remains in Python.
    """
    p = np.ascontiguousarray(p, dtype=np.float64)
    PC = np.ascontiguousarray(PC, dtype=np.float64)
    if p.ndim != 1 or PC.shape != (p.size, 3):
        raise ValueError(
            f"expected p (n,) and PC (n, 3); got {p.shape} and {PC.shape}"
        )
    npts = p.size
    L = lmax + 1
    # Same floating-point order as the scalar path (see hermite_coulomb).
    x2 = PC[:, 0] * PC[:, 0] + PC[:, 1] * PC[:, 1] + PC[:, 2] * PC[:, 2]
    F = boys(lmax, p * x2)  # (L, n) — the single Boys call per batch.

    # R^n_{000} = (-2p)^n F_n, vectorized over the batch.
    Rn = np.zeros((npts, L, L, L, L))
    minus_2p = -2.0 * p
    fac = np.ones(npts)
    for n in range(L):
        Rn[:, n, 0, 0, 0] = fac * F[n]
        fac = fac * minus_2p

    X = PC[:, 0, None]
    Y = PC[:, 1, None]
    Z = PC[:, 2, None]
    for total in range(1, L):
        src = slice(1, L - total + 1)  # auxiliary orders n+1
        dst = slice(0, L - total)      # auxiliary orders n
        for t in range(total + 1):
            for u in range(total - t + 1):
                v = total - t - u
                if t > 0:
                    val = X * Rn[:, src, t - 1, u, v]
                    if t > 1:
                        val += (t - 1) * Rn[:, src, t - 2, u, v]
                elif u > 0:
                    val = Y * Rn[:, src, t, u - 1, v]
                    if u > 1:
                        val += (u - 1) * Rn[:, src, t, u - 2, v]
                else:
                    val = Z * Rn[:, src, t, u, v - 1]
                    if v > 1:
                        val += (v - 1) * Rn[:, src, t, u, v - 2]
                Rn[:, dst, t, u, v] = val
    return Rn[:, 0]
