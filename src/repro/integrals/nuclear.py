"""Nuclear-attraction integrals over contracted Cartesian Gaussian shells."""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shell import Shell
from repro.integrals.hermite import e_coefficients_3d, hermite_coulomb


def nuclear_shell_pair(
    sha: Shell, shb: Shell, charges: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Nuclear-attraction block :math:`\\langle a | \\sum_C -Z_C/r_C | b \\rangle`.

    Parameters
    ----------
    sha, shb:
        Bra and ket shells.
    charges:
        Nuclear charges, shape ``(natoms,)``.
    centers:
        Nuclear positions in Bohr, shape ``(natoms, 3)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(sha.nfunc, shb.nfunc)``.
    """
    A, B = sha.center, shb.center
    comps_a, comps_b = sha.components, shb.components
    lmax = sha.l + shb.l
    out = np.zeros((sha.nfunc, shb.nfunc))

    for a, ca in zip(sha.exps, sha.coefs):
        for b, cb in zip(shb.exps, shb.coefs):
            p = a + b
            P = (a * A + b * B) / p
            Ex, Ey, Ez = e_coefficients_3d(sha.l, shb.l, a, b, A, B)
            pref = ca * cb * 2.0 * math.pi / p

            # Sum the Hermite Coulomb tensors over all nuclei first; the
            # E-coefficient contraction is charge-independent.
            Rsum = np.zeros((lmax + 1,) * 3)
            for Z, C in zip(charges, centers):
                Rsum -= Z * hermite_coulomb(lmax, p, P - C)

            for ia, (ax, ay, az) in enumerate(comps_a):
                for ib, (bx, by, bz) in enumerate(comps_b):
                    acc = 0.0
                    for t in range(ax + bx + 1):
                        ext = Ex[ax, bx, t]
                        if ext == 0.0:
                            continue
                        for u in range(ay + by + 1):
                            eyu = Ey[ay, by, u]
                            if eyu == 0.0:
                                continue
                            for v in range(az + bz + 1):
                                ezv = Ez[az, bz, v]
                                if ezv != 0.0:
                                    acc += ext * eyu * ezv * Rsum[t, u, v]
                    out[ia, ib] += pref * acc
    return out
