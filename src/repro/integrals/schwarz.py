"""Exact Cauchy-Schwarz screening bounds over composite shells.

The bound used by GAMESS (and this reproduction) is

.. math:: |(ij|kl)| \\le Q_{ij} Q_{kl}, \\qquad
          Q_{ij} = \\max_{\\mu \\in i, \\nu \\in j} \\sqrt{(\\mu\\nu|\\mu\\nu)},

evaluated at *composite* (GAMESS) shell granularity — the same
granularity at which the parallel algorithms make their screening
decisions (Algorithm 1 line 7, Algorithm 3 lines 13/22).
"""

from __future__ import annotations

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shell import CompositeShell
from repro.integrals.eri import ShellPair, eri_shell_quartet


def schwarz_composite_pair(csa: CompositeShell, csb: CompositeShell) -> float:
    """Exact :math:`Q_{ij}` for one composite shell pair."""
    qmax = 0.0
    for sa in csa.subshells:
        for sb in csb.subshells:
            pair = ShellPair(sa, sb)
            block = eri_shell_quartet(pair, pair)
            # Diagonal elements (mu nu | mu nu).
            na, nb_ = sa.nfunc, sb.nfunc
            diag = block.reshape(na * nb_, na * nb_).diagonal()
            qmax = max(qmax, float(np.max(np.abs(diag))))
    return float(np.sqrt(qmax))


def schwarz_matrix(basis: BasisSet) -> np.ndarray:
    """Exact Schwarz bound matrix over composite shells.

    Returns
    -------
    numpy.ndarray
        Symmetric ``(nshells, nshells)`` matrix of :math:`Q_{ij}`.
    """
    comps = basis.composite_shells
    n = len(comps)
    Q = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1):
            q = schwarz_composite_pair(comps[i], comps[j])
            Q[i, j] = Q[j, i] = q
    return Q
