"""Multipole (dipole) integrals over contracted Cartesian Gaussian shells.

The Cartesian moment integrals :math:`\\langle a | (x - C_x)^e | b \\rangle`
follow from the same Hermite expansion as the overlap: a 1-D moment of
order *e* about point *C* is obtained by raising the ket angular
momentum, since :math:`x - C_x = (x - B_x) + (B_x - C_x)`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shell import Shell
from repro.integrals.hermite import e_coefficients_3d


def dipole_shell_pair(
    sha: Shell, shb: Shell, origin: np.ndarray
) -> np.ndarray:
    """Dipole-moment block :math:`\\langle a | r - C | b \\rangle`.

    Returns
    -------
    numpy.ndarray
        Shape ``(3, nfa, nfb)``: x, y, z components about ``origin``.
    """
    A, B = sha.center, shb.center
    origin = np.asarray(origin, dtype=np.float64)
    comps_a, comps_b = sha.components, shb.components
    out = np.zeros((3, sha.nfunc, shb.nfunc))

    for a, ca in zip(sha.exps, sha.coefs):
        for b, cb in zip(shb.exps, shb.coefs):
            p = a + b
            # Raise the ket by one so the first moment is reachable.
            Es = e_coefficients_3d(sha.l, shb.l + 1, a, b, A, B)
            pref = ca * cb * (math.pi / p) ** 1.5

            def s1d(E: np.ndarray, i: int, j: int) -> float:
                return E[i, j, 0] if j >= 0 else 0.0

            def m1d(E: np.ndarray, i: int, j: int, shift: float) -> float:
                # <i| x - C |j> = S^{i, j+1} + (B - C) S^{ij}.
                return E[i, j + 1, 0] + shift * E[i, j, 0]

            shifts = B - origin
            for ia, la in enumerate(comps_a):
                for ib, lb in enumerate(comps_b):
                    s = [s1d(Es[d], la[d], lb[d]) for d in range(3)]
                    for d in range(3):
                        m = m1d(Es[d], la[d], lb[d], shifts[d])
                        others = [s[e] for e in range(3) if e != d]
                        out[d, ia, ib] += pref * m * others[0] * others[1]
    return out


def dipole_matrices(
    basis: BasisSet, origin: np.ndarray | None = None
) -> np.ndarray:
    """Full dipole-integral matrices, shape ``(3, nbf, nbf)``.

    ``origin`` defaults to the coordinate origin; molecular dipole
    moments of neutral molecules are origin-independent.
    """
    if origin is None:
        origin = np.zeros(3)
    n = basis.nbf
    out = np.zeros((3, n, n))
    shells = basis.shells
    for i, sa in enumerate(shells):
        ia = sa.bf_offset
        for sb in shells[: i + 1]:
            ib = sb.bf_offset
            block = dipole_shell_pair(sa, sb, origin)
            out[:, ia : ia + sa.nfunc, ib : ib + sb.nfunc] = block
            if sa is not sb:
                out[:, ib : ib + sb.nfunc, ia : ia + sa.nfunc] = (
                    block.transpose(0, 2, 1)
                )
    return out
