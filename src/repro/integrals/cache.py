"""Memory-bounded LRU cache of evaluated ERI shell-quartet blocks.

Direct SCF re-evaluates every surviving shell quartet each cycle; with
this cache wired into :class:`~repro.core.quartets.QuartetEngine`, the
SCF becomes *semi-direct*: quartet blocks evaluated in cycle 1 are
served from memory in cycles 2..N (for as long as the byte budget
holds), so repeat cycles skip integral recomputation entirely for
cached blocks.  This compounds with incremental-Fock density screening,
which only ever *shrinks* the surviving quartet set on later cycles.

The cache is keyed on the composite-shell quartet ``(I, J, K, L)`` —
stable across cycles because the basis (and hence the quartet index
space) is fixed for a given SCF.  Eviction is least-recently-used under
a configurable byte budget; a block larger than the whole budget is
simply not cached.  Cached arrays are marked read-only so an accidental
in-place mutation by a consumer raises instead of corrupting every
later cycle.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

#: Default cache budget (bytes): enough for every quartet of the small
#: validation systems while staying irrelevant next to the O(nbf^2)
#: matrices of benchmark-scale runs.
DEFAULT_CACHE_BYTES: int = 64 * 1024 * 1024

QuartetKey = tuple[int, int, int, int]


class QuartetCache:
    """LRU store of quartet ERI blocks under a byte budget.

    Parameters
    ----------
    max_bytes:
        Byte budget over the summed ``nbytes`` of the stored blocks.
        Must be positive; use :meth:`from_mb` for the CLI's MB knob.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        max_bytes = int(max_bytes)
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self._store: OrderedDict[QuartetKey, np.ndarray] = OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @classmethod
    def from_mb(cls, megabytes: float) -> "QuartetCache":
        """Construct from a budget in MB (the ``--eri-cache-mb`` knob)."""
        return cls(int(megabytes * 1024 * 1024))

    def get(self, key: QuartetKey) -> np.ndarray | None:
        """The cached block, refreshed to most-recently-used, or None."""
        block = self._store.get(key)
        if block is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return block

    def put(self, key: QuartetKey, block: np.ndarray) -> None:
        """Insert a block, evicting least-recently-used entries to fit.

        The array is marked read-only; callers treat quartet blocks as
        immutable (contractions allocate their own outputs).
        """
        nbytes = block.nbytes
        if nbytes > self.max_bytes:
            return  # would evict everything and still not fit
        old = self._store.pop(key, None)
        if old is not None:
            self.bytes -= old.nbytes
        block.flags.writeable = False
        self._store[key] = block
        self.bytes += nbytes
        while self.bytes > self.max_bytes:
            _, evicted = self._store.popitem(last=False)
            self.bytes -= evicted.nbytes
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; they are lifetime totals)."""
        self._store.clear()
        self.bytes = 0

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses) over the cache lifetime; 0.0 if unused."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: QuartetKey) -> bool:
        return key in self._store

    def stats(self) -> dict[str, int | float]:
        """JSON-ready counter snapshot."""
        return {
            "entries": len(self._store),
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"QuartetCache(entries={len(self._store)}, "
            f"bytes={self.bytes}/{self.max_bytes}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
