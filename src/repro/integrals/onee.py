"""One-electron matrix drivers: overlap S, kinetic T, nuclear attraction V."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shell import Shell
from repro.integrals.kinetic import kinetic_shell_pair
from repro.integrals.nuclear import nuclear_shell_pair
from repro.integrals.overlap import overlap_shell_pair


def _assemble_symmetric(
    basis: BasisSet, kernel: Callable[[Shell, Shell], np.ndarray]
) -> np.ndarray:
    """Fill a symmetric one-electron matrix from a shell-pair kernel."""
    n = basis.nbf
    out = np.zeros((n, n))
    shells = basis.shells
    for i, sa in enumerate(shells):
        ia = sa.bf_offset
        for sb in shells[: i + 1]:
            ib = sb.bf_offset
            block = kernel(sa, sb)
            out[ia : ia + sa.nfunc, ib : ib + sb.nfunc] = block
            if sa is not sb:
                out[ib : ib + sb.nfunc, ia : ia + sa.nfunc] = block.T
    return out


def overlap_matrix(basis: BasisSet) -> np.ndarray:
    """Full overlap matrix ``S`` of shape ``(nbf, nbf)``."""
    return _assemble_symmetric(basis, overlap_shell_pair)


def kinetic_matrix(basis: BasisSet) -> np.ndarray:
    """Full kinetic-energy matrix ``T`` of shape ``(nbf, nbf)``."""
    return _assemble_symmetric(basis, kinetic_shell_pair)


def nuclear_matrix(basis: BasisSet) -> np.ndarray:
    """Full nuclear-attraction matrix ``V`` of shape ``(nbf, nbf)``."""
    charges = basis.molecule.charges
    centers = basis.molecule.coords
    return _assemble_symmetric(
        basis, lambda sa, sb: nuclear_shell_pair(sa, sb, charges, centers)
    )


def core_hamiltonian(basis: BasisSet) -> np.ndarray:
    """Core Hamiltonian ``H = T + V``."""
    return kinetic_matrix(basis) + nuclear_matrix(basis)
