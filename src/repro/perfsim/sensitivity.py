"""Sensitivity analysis: are the reproduced shapes artifacts of tuning?

The performance model's secondary constants (miss penalties, barrier
cost, fabric latencies, SMT curve) come from hardware documentation,
not from fitting the result curves — but a reproduction is only
credible if its qualitative conclusions *survive perturbation* of those
constants.  This module perturbs each constant by a given factor,
re-runs the calibration (so the anchor point stays anchored), and
re-evaluates the paper's structural claims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.machine.system import THETA
from repro.perfsim.cost_model import CostModel
from repro.perfsim.simulate import RunConfig, simulate_fock_build
from repro.perfsim.workload import Workload

#: The structural claims of Table 3 that must survive perturbation.
CLAIMS = (
    "shared_fock_wins_at_512",
    "speedup_4x_to_9x",
    "private_fock_fastest_at_4",
    "crossover_by_128",
)

#: Perturbable secondary constants of the cost model.
PERTURBABLE = (
    "bytes_per_unit",
    "miss_base",
    "miss_per_replica_doubling",
    "barrier_base_us",
    "dlb_occupancy_us",
    "flush_bw_fraction",
    "shared_write_ns",
)


@dataclass
class SensitivityRecord:
    """Outcome of one perturbed re-evaluation."""

    parameter: str
    factor: float
    claims_held: dict[str, bool]
    speedup_512: float

    @property
    def all_hold(self) -> bool:
        return all(self.claims_held.values())


def _recalibrate(model: CostModel, wl: Workload) -> CostModel:
    """Re-anchor seconds_per_unit after a perturbation (fixed point)."""
    cfg = RunConfig.mpi_only(system=THETA, nodes=4)
    for _ in range(8):
        sim = simulate_fock_build(wl, cfg, model)
        ratio = 2661.0 / sim.total_seconds
        if abs(ratio - 1.0) < 1e-6:
            break
        model = model.with_scale(model.seconds_per_unit * ratio)
    return model


def evaluate_claims(model: CostModel, wl: Workload) -> tuple[dict[str, bool], float]:
    """Check the Table-3 structural claims under a cost model."""
    def run(alg: str, nodes: int) -> float:
        if alg == "mpi-only":
            cfg = RunConfig.mpi_only(system=THETA, nodes=nodes)
        else:
            cfg = RunConfig.hybrid(alg, system=THETA, nodes=nodes)
        return simulate_fock_build(wl, cfg, model).total_seconds

    t4 = {a: run(a, 4) for a in ("mpi-only", "private-fock", "shared-fock")}
    t128 = {a: run(a, 128) for a in ("private-fock", "shared-fock")}
    t512 = {a: run(a, 512) for a in ("mpi-only", "shared-fock")}
    speedup = t512["mpi-only"] / t512["shared-fock"]
    claims = {
        "shared_fock_wins_at_512": t512["shared-fock"] < t512["mpi-only"],
        "speedup_4x_to_9x": 3.0 < speedup < 12.0,
        "private_fock_fastest_at_4": t4["private-fock"] == min(t4.values()),
        "crossover_by_128": t128["shared-fock"] < t128["private-fock"],
    }
    return claims, speedup


def sensitivity_sweep(
    base: CostModel,
    *,
    factors: tuple[float, ...] = (0.5, 2.0),
    dataset: str = "2.0nm",
) -> list[SensitivityRecord]:
    """Perturb each secondary constant and re-test the claims.

    Each perturbed model is re-calibrated to the anchor before the
    claims are evaluated, mirroring what an honest re-fit would do.
    """
    wl = Workload.for_dataset(dataset)
    records: list[SensitivityRecord] = []
    for name in PERTURBABLE:
        for f in factors:
            perturbed = replace(base, **{name: getattr(base, name) * f})
            perturbed = _recalibrate(perturbed, wl)
            claims, speedup = evaluate_claims(perturbed, wl)
            records.append(
                SensitivityRecord(
                    parameter=name, factor=f, claims_held=claims,
                    speedup_512=speedup,
                )
            )
    return records
