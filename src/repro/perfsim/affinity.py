"""Thread placement model (KMP_AFFINITY / I_MPI_PIN_DOMAIN).

Reproduces the placement effects of the paper's Figure 3.  Each MPI
rank owns a domain of ``ncores / ranks_per_node`` cores; the affinity
type decides how the rank's OpenMP threads map onto the domain's cores:

``scatter`` / ``balanced``
    One thread per core before doubling up — each thread enjoys a whole
    core until the domain saturates.  (On single-socket KNL domains the
    two types produce the same core occupancy; they are kept distinct
    with a tiny locality edge for ``balanced``, which keeps sibling
    threads on adjacent cores/tiles.)
``compact``
    Threads packed two per core from the start: half the cores idle
    while each busy core runs at the 2-thread SMT throughput.
``none``
    No pinning: the OS migrates threads, modelled as scatter placement
    degraded by a migration/imbalance penalty.
"""

from __future__ import annotations

import enum

from repro.machine.knl import KNLNodeSpec


class Affinity(str, enum.Enum):
    """KMP_AFFINITY placement types benchmarked in the paper."""

    COMPACT = "compact"
    SCATTER = "scatter"
    BALANCED = "balanced"
    NONE = "none"


#: Throughput penalty of unpinned threads (migration, cold caches).
_NONE_PENALTY = 0.82
#: Small locality edge of balanced over scatter (tile-adjacent siblings).
_BALANCED_EDGE = 1.02


def placement_throughput(
    node: KNLNodeSpec,
    ranks_per_node: int,
    threads_per_rank: int,
    affinity: Affinity | str = Affinity.BALANCED,
) -> float:
    """Aggregate node throughput for a placement, in 1-thread-core units.

    The value is the sum of per-core SMT throughputs over the cores the
    placement occupies; dividing work by it (times the core speed)
    yields ideal node compute time.
    """
    affinity = Affinity(affinity)
    if ranks_per_node < 1 or threads_per_rank < 1:
        raise ValueError("ranks and threads must be positive")

    if ranks_per_node >= node.ncores:
        # More ranks than cores (the stock code's regime): processes
        # share cores exactly like SMT threads do.
        total = node.node_throughput(
            ranks_per_node * threads_per_rank,
            spread=(affinity is not Affinity.COMPACT),
        )
    else:
        domain_cores = max(1, node.ncores // ranks_per_node)
        t = threads_per_rank
        if affinity is Affinity.COMPACT:
            per_domain = _domain_throughput_packed(node, domain_cores, t)
        else:
            per_domain = _domain_throughput_spread(node, domain_cores, t)
        total = per_domain * ranks_per_node
    if affinity is Affinity.NONE:
        total *= _NONE_PENALTY
    elif affinity is Affinity.BALANCED:
        total = min(total * _BALANCED_EDGE,
                    node.ncores * node.core_throughput(node.threads_per_core))
    return total


def _domain_throughput_spread(
    node: KNLNodeSpec, cores: int, threads: int
) -> float:
    """Spread placement: one per core first, then 2nd/3rd/4th layers."""
    threads = min(threads, cores * node.threads_per_core)
    base, extra = divmod(threads, cores)
    if base == 0:
        return extra * node.core_throughput(1)
    return extra * node.core_throughput(base + 1) + (cores - extra) * (
        node.core_throughput(base)
    )


def _domain_throughput_packed(
    node: KNLNodeSpec, cores: int, threads: int
) -> float:
    """Compact placement: fill each core to 4 threads before the next.

    KMP_AFFINITY=compact assigns consecutive thread ids to consecutive
    hardware-thread contexts, so cores saturate one at a time.
    """
    threads = min(threads, cores * node.threads_per_core)
    full_cores, rem = divmod(threads, node.threads_per_core)
    th = full_cores * node.core_throughput(node.threads_per_core)
    if rem:
        th += node.core_throughput(rem)
    return th


def threads_per_core(
    node: KNLNodeSpec, ranks_per_node: int, threads_per_rank: int
) -> float:
    """Average hardware-thread occupancy per active core (spread placement)."""
    domain_cores = max(1, node.ncores // ranks_per_node)
    t = min(threads_per_rank, domain_cores * node.threads_per_core)
    active = min(domain_cores, t)
    return t / active if active else 0.0
