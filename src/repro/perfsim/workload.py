"""Workload characterization: per-task work from real screening statistics.

A :class:`Workload` captures everything the performance simulator needs
to know about one benchmark system:

* the model Schwarz bound of every canonical shell pair (the *bra* /
  *ket* task space of all three algorithms),
* exact surviving-quartet counts per top-loop task, resolved by ket
  shell class so each task's work in flop-like units is exact under the
  class cost table (:func:`~repro.perfsim.cost_model.eri_quartet_units`),
* aggregations for each algorithm's MPI granularity: per-``(i,j)`` work
  (Algorithms 1 and 3) and per-``i`` work (Algorithm 2),
* the memory model of the dataset.

For the 5.0 nm dataset (3.3 * 10^7 pair tasks) the per-task statistics
are computed exactly on a deterministic stride sample of bra tasks
(every task still counts against the *full* ket space); the sample is
only used to shape the task-cost distribution, with totals rescaled by
the stride.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.graphene import PAPER_DATASETS, paper_dataset
from repro.core.indexing import npairs
from repro.core.memory_model import MemoryModel
from repro.core.screening import (
    DEFAULT_TAU,
    SchwarzModelParams,
    DEFAULT_SCHWARZ_PARAMS,
    prefix_survivor_counts,
)
from repro.perfsim.cost_model import eri_quartet_units

#: Bra-task sampling threshold: datasets with more canonical pairs than
#: this use stride sampling (only the 5.0 nm dataset exceeds it).
EXACT_PAIR_LIMIT: int = 4_000_000

#: Number of sampled bra tasks kept when the sampling path is used.
SAMPLE_TARGET: int = 400_000

#: In-process workload cache keyed by (label, tau).
_CACHE: dict[tuple[str, float], "Workload"] = {}


def _disk_cache_path(label: str, tau: float):
    """Location of the on-disk workload cache for a dataset."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[3] / ".cache" / "workloads"
    return root / f"{label}__tau{tau:.0e}.npz"


@dataclass(frozen=True)
class ShellClass:
    """One shell class: (type, primitives, functions, angular momentum)."""

    stype: str
    nprim: int
    nfunc: int
    l: int


@dataclass
class Workload:
    """Screening-derived work distribution of one benchmark system.

    ``task_*`` arrays are indexed by (possibly sampled) bra task; each
    sampled task represents ``stride`` consecutive combined indices.
    """

    label: str
    nbf: int
    nshells: int
    natoms: int
    tau: float
    stride: int
    npair_tasks: int                 # full combined-pair task count
    task_index: np.ndarray           # combined ij index of each task row
    task_work: np.ndarray            # work units per task (0 if prescreened)
    task_count: np.ndarray           # surviving quartets per task
    task_max_unit: np.ndarray        # largest quartet cost in the task
    task_significant: np.ndarray     # bool: passes bra prescreening
    work_per_i: np.ndarray           # Algorithm-2 task work (per i shell)
    total_work: float                # work units of one full Fock build
    total_quartets: float            # surviving quartets of one build
    memory: MemoryModel

    # -- constructors ------------------------------------------------------

    @classmethod
    def for_dataset(
        cls,
        label: str,
        *,
        tau: float = DEFAULT_TAU,
        schwarz_params: SchwarzModelParams | None = None,
        use_disk_cache: bool = True,
    ) -> "Workload":
        """Workload of one of the paper's graphene datasets.

        Results are cached in-process and (for the default Schwarz
        parameters) on disk under ``.cache/workloads`` next to the
        package, so the expensive 5.0 nm statistics are computed once
        per machine rather than once per process.
        """
        key = (label, tau)
        if key in _CACHE:
            return _CACHE[key]

        cache_path = _disk_cache_path(label, tau)
        if use_disk_cache and schwarz_params is None and cache_path.exists():
            try:
                wl = cls._load(cache_path)
                _CACHE[key] = wl
                return wl
            except Exception:
                cache_path.unlink(missing_ok=True)

        mol = paper_dataset(label)
        basis = BasisSet(mol, "6-31g(d)")
        wl = cls.from_basis(basis, label=label, tau=tau,
                            schwarz_params=schwarz_params)
        _CACHE[key] = wl
        if use_disk_cache and schwarz_params is None:
            try:
                wl._save(cache_path)
            except OSError:
                pass
        return wl

    # -- disk cache ----------------------------------------------------------

    def _save(self, path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            meta=np.array(
                [self.nbf, self.nshells, self.natoms, self.stride,
                 self.npair_tasks],
                dtype=np.int64,
            ),
            tau=np.float64(self.tau),
            task_index=self.task_index,
            task_work=self.task_work,
            task_count=self.task_count,
            task_max_unit=self.task_max_unit,
            task_significant=self.task_significant,
            work_per_i=self.work_per_i,
            totals=np.array([self.total_work, self.total_quartets]),
        )

    @classmethod
    def _load(cls, path) -> "Workload":
        data = np.load(path)
        nbf, nshells, natoms, stride, npt = (int(x) for x in data["meta"])
        label = path.stem.split("__")[0]
        return cls(
            label=label,
            nbf=nbf,
            nshells=nshells,
            natoms=natoms,
            tau=float(data["tau"]),
            stride=stride,
            npair_tasks=npt,
            task_index=data["task_index"],
            task_work=data["task_work"],
            task_count=data["task_count"],
            task_max_unit=data["task_max_unit"],
            task_significant=data["task_significant"],
            work_per_i=data["work_per_i"],
            total_work=float(data["totals"][0]),
            total_quartets=float(data["totals"][1]),
            memory=MemoryModel(nbf, nshells),
        )

    @classmethod
    def from_basis(
        cls,
        basis: BasisSet,
        *,
        label: str = "",
        tau: float = DEFAULT_TAU,
        schwarz_params: SchwarzModelParams | None = None,
        pair_q: np.ndarray | None = None,
    ) -> "Workload":
        """Build a workload from any basis (exact Q may be supplied)."""
        params = schwarz_params or DEFAULT_SCHWARZ_PARAMS
        comps = basis.composite_shells
        n = len(comps)
        P = npairs(n)

        # Shell classes and per-shell features.
        class_key = [(c.stype, sum(s.nprim for s in c.subshells) // len(c.subshells),
                      c.nfunc, c.max_l) for c in comps]
        classes: list[ShellClass] = []
        class_of: dict[tuple, int] = {}
        shell_class = np.empty(n, dtype=np.int16)
        for idx, key in enumerate(class_key):
            if key not in class_of:
                class_of[key] = len(classes)
                classes.append(ShellClass(*key))
            shell_class[idx] = class_of[key]
        ncls = len(classes)

        # Pair classes (unordered combinations of shell classes).
        pc_table = np.empty((ncls, ncls), dtype=np.int16)
        pair_classes: list[tuple[int, int]] = []
        pc_of: dict[tuple[int, int], int] = {}
        for a in range(ncls):
            for b in range(ncls):
                k = (min(a, b), max(a, b))
                if k not in pc_of:
                    pc_of[k] = len(pair_classes)
                    pair_classes.append(k)
                pc_table[a, b] = pc_of[k]
        npc = len(pair_classes)

        # Pair-class features for the quartet cost table.
        pfeat = []
        for (a, b) in pair_classes:
            ca, cb = classes[a], classes[b]
            pfeat.append(
                (ca.nfunc * cb.nfunc, ca.nprim * cb.nprim, ca.l + cb.l)
            )
        unit = np.empty((npc, npc))
        for x, (nfx, npx, lx) in enumerate(pfeat):
            for y, (nfy, npy, ly) in enumerate(pfeat):
                unit[x, y] = eri_quartet_units(nfx, npx, lx, nfy, npy, ly)

        # Canonical-pair arrays in combined-index order.
        iu, ju = np.tril_indices(n)
        pair_class = pc_table[shell_class[iu], shell_class[ju]]
        if pair_q is None:
            pair_q = _model_schwarz_pairs(basis, params, iu, ju)
        qmax = float(pair_q.max())
        significant = pair_q * qmax >= tau

        if P <= EXACT_PAIR_LIMIT:
            weights = np.zeros((P, npc))
            weights[np.arange(P), pair_class] = 1.0
            counts = prefix_survivor_counts(pair_q, tau, weights)
            task_index = np.arange(P, dtype=np.int64)
            stride = 1
        else:
            stride = max(2, int(np.ceil(P / SAMPLE_TARGET)))
            task_index = np.arange(0, P, stride, dtype=np.int64)
            counts = _sampled_prefix_counts(
                pair_q, tau, pair_class, npc, task_index
            )

        unit_rows = unit[pair_class[task_index]]          # (T, npc)
        task_work = np.einsum("tc,tc->t", counts, unit_rows)
        task_count = counts.sum(axis=1)
        task_max_unit = np.where(counts > 0, unit_rows, 0.0).max(axis=1)
        task_significant = significant[task_index]
        task_work[~task_significant] = 0.0
        task_count[~task_significant] = 0.0

        # Per-i aggregation for Algorithm 2 (segment sums over j <= i).
        i_of_task = (
            (np.sqrt(8.0 * task_index.astype(np.float64) + 1.0) - 1.0) / 2.0
        ).astype(np.int64)
        base = i_of_task * (i_of_task + 1) // 2
        i_of_task += (task_index - base) > i_of_task  # boundary fix
        work_per_i = np.zeros(n)
        np.add.at(work_per_i, i_of_task, task_work * stride)

        total_work = float(task_work.sum() * stride)
        total_quartets = float(task_count.sum() * stride)

        wl = cls(
            label=label or basis.molecule.name,
            nbf=basis.nbf,
            nshells=n,
            natoms=basis.molecule.natoms,
            tau=tau,
            stride=stride,
            npair_tasks=P,
            task_index=task_index,
            task_work=task_work,
            task_count=task_count,
            task_max_unit=task_max_unit,
            task_significant=task_significant,
            work_per_i=work_per_i,
            total_work=total_work,
            total_quartets=total_quartets,
            memory=MemoryModel(basis.nbf, n),
        )
        return wl

    # -- derived ----------------------------------------------------------

    @property
    def n_significant_tasks(self) -> int:
        """Bra tasks passing prescreening (full-space estimate)."""
        return int(self.task_significant.sum() * self.stride)

    def screening_fraction(self) -> float:
        """Fraction of the unique quartet space removed by screening."""
        full = float(self.npair_tasks) * (self.npair_tasks + 1) / 2.0
        return 1.0 - self.total_quartets / full if full else 0.0


def _model_schwarz_pairs(
    basis: BasisSet,
    params: SchwarzModelParams,
    iu: np.ndarray,
    ju: np.ndarray,
) -> np.ndarray:
    """Model Schwarz bounds for canonical pairs, without the square matrix."""
    comps = basis.composite_shells
    centers = np.array([c.center for c in comps])
    types = [c.stype for c in comps]
    zetas = np.array([c.min_exponent() for c in comps])
    amp = np.array([params.amplitudes[t] for t in types])

    out = np.empty(iu.size)
    block = 4_000_000
    for s in range(0, iu.size, block):
        e = min(s + block, iu.size)
        a, b = iu[s:e], ju[s:e]
        r2 = np.einsum("ij,ij->i", centers[a] - centers[b], centers[a] - centers[b])
        mu = zetas[a] * zetas[b] / (zetas[a] + zetas[b])
        out[s:e] = np.exp(amp[a] + amp[b] - mu * r2)
    return out


def _sampled_prefix_counts(
    pair_q: np.ndarray,
    tau: float,
    pair_class: np.ndarray,
    ncls: int,
    sample_idx: np.ndarray,
) -> np.ndarray:
    """Exact per-class prefix survivor counts at sampled bra positions.

    Block decomposition: pair positions are cut into fixed blocks; for
    each sampled bra, survivors in *complete* preceding blocks come from
    per-block per-class sorted-Q prefix tables (one batched
    ``searchsorted`` per block and class), and the bra's own partial
    block is counted directly.
    """
    P = pair_q.size
    T = sample_idx.size
    out = np.zeros((T, ncls))
    B = 65536
    nblocks = (P + B - 1) // B
    with np.errstate(divide="ignore", over="ignore"):
        th = np.where(pair_q[sample_idx] > 0, tau / pair_q[sample_idx], np.inf)

    # Which block each sample sits in.
    sample_block = sample_idx // B

    for blk in range(nblocks):
        lo, hi = blk * B, min((blk + 1) * B, P)
        qb = pair_q[lo:hi]
        cb = pair_class[lo:hi]
        # Samples strictly after this block count the whole block.
        after = np.nonzero(sample_block > blk)[0]
        if after.size:
            for c in range(ncls):
                qc = np.sort(qb[cb == c])
                if qc.size:
                    pos = np.searchsorted(qc, th[after], side="left")
                    out[after, c] += qc.size - pos
        # Samples inside this block count their partial prefix directly.
        inside = np.nonzero(sample_block == blk)[0]
        for t in inside:
            end = sample_idx[t] - lo + 1
            qual = qb[:end] >= th[t]
            if qual.any():
                out[t] += np.bincount(cb[:end][qual], minlength=ncls)
    return out
