"""Dynamic task assignment: the timing core of the simulator.

``assign_dynamic`` reproduces what a DDI-style dynamic load balancer
does in time: tasks are drawn in index order, each grabbed by the rank
that becomes free first.  For moderate task counts the simulation is
exact (a heap of rank-free times); beyond a threshold the asymptotic
makespan model ``total/R + tail + overheads`` is used — in that regime
(tasks >> ranks) the exact simulation converges to it anyway.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

#: Above this many tasks the closed-form makespan model is used.
EXACT_SIM_LIMIT: int = 400_000

#: Distribution strategies the grant model understands.
SCHEDULE_NAMES: tuple[str, ...] = ("dlb", "static", "guided", "steal")


@dataclass
class AssignmentResult:
    """Outcome of a dynamic assignment.

    Attributes
    ----------
    makespan:
        Wall time until the last rank finishes (seconds).
    mean_load:
        Average per-rank busy time.
    imbalance:
        ``makespan / mean_load`` (>= 1; 1 is perfect balance).
    tasks_assigned:
        Number of tasks (or task groups) placed.
    exact:
        Whether the exact event simulation was used.
    """

    makespan: float
    mean_load: float
    imbalance: float
    tasks_assigned: int
    exact: bool


def assign_dynamic(
    costs: np.ndarray,
    nranks: int,
    *,
    per_task_overhead: float = 0.0,
    multiplicity: int = 1,
) -> AssignmentResult:
    """Simulate dynamic (earliest-free) assignment of ordered tasks.

    Parameters
    ----------
    costs:
        Per-task wall seconds, in draw order.
    nranks:
        Number of workers drawing tasks.
    per_task_overhead:
        Seconds added to every draw (DLB fetch latency as seen by the
        drawing rank).
    multiplicity:
        Each cost row represents this many consecutive identical tasks
        (stride-sampled workloads).

    Returns
    -------
    AssignmentResult
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if nranks < 1:
        raise ValueError("need at least one rank")
    with get_tracer().span(
        "perfsim/assign_dynamic", nranks=nranks, ntasks=int(n)
    ):
        result = _assign_dynamic(
            costs, nranks,
            per_task_overhead=per_task_overhead,
            multiplicity=multiplicity,
        )
    registry = get_metrics()
    if registry is not None:
        registry.counter("perfsim.assignments").inc()
        registry.counter("perfsim.tasks_assigned").inc(result.tasks_assigned)
        registry.histogram("perfsim.imbalance").observe(result.imbalance)
        registry.gauge("perfsim.last_makespan_s").set(result.makespan)
    return result


def _assign_dynamic(
    costs: np.ndarray,
    nranks: int,
    *,
    per_task_overhead: float,
    multiplicity: int,
) -> AssignmentResult:
    n = costs.size
    if n == 0:
        return AssignmentResult(0.0, 0.0, 1.0, 0, True)

    eff = costs + per_task_overhead
    total = float(eff.sum()) * multiplicity

    if n * multiplicity > EXACT_SIM_LIMIT or multiplicity > 1:
        # Asymptotic regime: mean + tail-task correction.  The tail term
        # is the largest single task a rank can be left holding.
        mean = total / nranks
        tail = float(eff.max())
        makespan = mean + tail * (1.0 - 1.0 / nranks)
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=False,
        )

    if nranks >= n:
        # Every task gets its own rank immediately.
        makespan = float(eff.max())
        mean = total / nranks
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=True,
        )

    free = [0.0] * nranks
    heapq.heapify(free)
    for c in eff:
        t = heapq.heappop(free)
        heapq.heappush(free, t + float(c))
    makespan = max(free)
    mean = total / nranks
    return AssignmentResult(
        makespan=float(makespan),
        mean_load=mean,
        imbalance=float(makespan) / mean if mean > 0 else 1.0,
        tasks_assigned=n,
        exact=True,
    )


def assign_schedule(
    costs: np.ndarray,
    nranks: int,
    schedule: str = "dlb",
    *,
    per_task_overhead: float = 0.0,
    multiplicity: int = 1,
    min_chunk: int = 1,
) -> AssignmentResult:
    """Makespan of one task distribution under a named strategy.

    ``dlb`` is the paper's shared-counter dynamic balancer (one counter
    fetch per draw, charged as ``per_task_overhead``); ``static`` is a
    cost-weighted pre-partition with zero counter traffic; ``guided``
    draws shrinking chunks and pays the fetch once per chunk; ``steal``
    balances like the dynamic assignment but moves tasks rank-to-rank,
    so the global-counter fetch latency disappears from the draw path.
    """
    if schedule not in SCHEDULE_NAMES:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from {SCHEDULE_NAMES}"
        )
    if schedule == "dlb":
        return assign_dynamic(
            costs, nranks,
            per_task_overhead=per_task_overhead,
            multiplicity=multiplicity,
        )
    if schedule == "steal":
        # Rank-to-rank transfers: same earliest-free balance, no
        # per-draw counter round-trip.
        return assign_dynamic(
            costs, nranks, per_task_overhead=0.0, multiplicity=multiplicity,
        )
    costs = np.asarray(costs, dtype=np.float64)
    if nranks < 1:
        raise ValueError("need at least one rank")
    with get_tracer().span(
        f"perfsim/assign_{schedule}", nranks=nranks, ntasks=int(costs.size)
    ):
        if schedule == "static":
            result = _assign_static(costs, nranks, multiplicity=multiplicity)
        else:
            result = _assign_guided(
                costs, nranks,
                per_chunk_overhead=per_task_overhead,
                multiplicity=multiplicity,
                min_chunk=min_chunk,
            )
    registry = get_metrics()
    if registry is not None:
        registry.counter("perfsim.assignments").inc()
        registry.counter("perfsim.tasks_assigned").inc(result.tasks_assigned)
        registry.histogram("perfsim.imbalance").observe(result.imbalance)
        registry.gauge("perfsim.last_makespan_s").set(result.makespan)
    return result


def _assign_static(
    costs: np.ndarray, nranks: int, *, multiplicity: int
) -> AssignmentResult:
    """Cost-weighted static pre-partition (LPT greedy), no draw cost."""
    n = costs.size
    if n == 0:
        return AssignmentResult(0.0, 0.0, 1.0, 0, True)
    total = float(costs.sum()) * multiplicity
    mean = total / nranks
    if n * multiplicity > EXACT_SIM_LIMIT or multiplicity > 1:
        # LPT on many tasks lands within one task of perfect balance.
        makespan = max(mean, float(costs.max()))
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=False,
        )
    loads = [(0.0, r) for r in range(nranks)]
    heapq.heapify(loads)
    for c in np.sort(costs)[::-1]:
        t, r = heapq.heappop(loads)
        heapq.heappush(loads, (t + float(c), r))
    makespan = max(t for t, _ in loads)
    return AssignmentResult(
        makespan=float(makespan),
        mean_load=mean,
        imbalance=float(makespan) / mean if mean > 0 else 1.0,
        tasks_assigned=n,
        exact=True,
    )


def _assign_guided(
    costs: np.ndarray,
    nranks: int,
    *,
    per_chunk_overhead: float,
    multiplicity: int,
    min_chunk: int,
) -> AssignmentResult:
    """Earliest-free assignment of shrinking guided chunks."""
    n = costs.size
    if n == 0:
        return AssignmentResult(0.0, 0.0, 1.0, 0, True)
    total = float(costs.sum()) * multiplicity
    mean = total / nranks
    if n * multiplicity > EXACT_SIM_LIMIT or multiplicity > 1:
        # Chunk count grows ~R*log(n/R); each pays one fetch.
        nchunks = nranks * max(
            1, int(np.ceil(np.log2(max(n / max(nranks, 1), 2.0))))
        )
        tail = float(costs.max())
        makespan = (
            mean + tail * (1.0 - 1.0 / nranks)
            + nchunks * per_chunk_overhead / nranks
        )
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=False,
        )
    free = [0.0] * nranks
    heapq.heapify(free)
    pos = 0
    nchunks = 0
    while pos < n:
        remaining = n - pos
        size = min(remaining, max(min_chunk, -(-remaining // nranks)))
        chunk_cost = float(costs[pos:pos + size].sum()) + per_chunk_overhead
        t = heapq.heappop(free)
        heapq.heappush(free, t + chunk_cost)
        pos += size
        nchunks += 1
    makespan = max(free)
    return AssignmentResult(
        makespan=float(makespan),
        mean_load=mean,
        imbalance=float(makespan) / mean if mean > 0 else 1.0,
        tasks_assigned=nchunks,
        exact=True,
    )


def thread_loop_makespan(
    total_cost: float,
    max_task_cost: float,
    nthreads: int,
) -> float:
    """Makespan of an OpenMP ``schedule(dynamic, 1)`` inner loop.

    The classic greedy list-scheduling bound, tight for many small
    tasks: ``total / T + max_task * (1 - 1/T)``.
    """
    if nthreads <= 1:
        return total_cost
    return total_cost / nthreads + max_task_cost * (1.0 - 1.0 / nthreads)
