"""Dynamic task assignment: the timing core of the simulator.

``assign_dynamic`` reproduces what a DDI-style dynamic load balancer
does in time: tasks are drawn in index order, each grabbed by the rank
that becomes free first.  For moderate task counts the simulation is
exact (a heap of rank-free times); beyond a threshold the asymptotic
makespan model ``total/R + tail + overheads`` is used — in that regime
(tasks >> ranks) the exact simulation converges to it anyway.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

#: Above this many tasks the closed-form makespan model is used.
EXACT_SIM_LIMIT: int = 400_000


@dataclass
class AssignmentResult:
    """Outcome of a dynamic assignment.

    Attributes
    ----------
    makespan:
        Wall time until the last rank finishes (seconds).
    mean_load:
        Average per-rank busy time.
    imbalance:
        ``makespan / mean_load`` (>= 1; 1 is perfect balance).
    tasks_assigned:
        Number of tasks (or task groups) placed.
    exact:
        Whether the exact event simulation was used.
    """

    makespan: float
    mean_load: float
    imbalance: float
    tasks_assigned: int
    exact: bool


def assign_dynamic(
    costs: np.ndarray,
    nranks: int,
    *,
    per_task_overhead: float = 0.0,
    multiplicity: int = 1,
) -> AssignmentResult:
    """Simulate dynamic (earliest-free) assignment of ordered tasks.

    Parameters
    ----------
    costs:
        Per-task wall seconds, in draw order.
    nranks:
        Number of workers drawing tasks.
    per_task_overhead:
        Seconds added to every draw (DLB fetch latency as seen by the
        drawing rank).
    multiplicity:
        Each cost row represents this many consecutive identical tasks
        (stride-sampled workloads).

    Returns
    -------
    AssignmentResult
    """
    costs = np.asarray(costs, dtype=np.float64)
    n = costs.size
    if nranks < 1:
        raise ValueError("need at least one rank")
    with get_tracer().span(
        "perfsim/assign_dynamic", nranks=nranks, ntasks=int(n)
    ):
        result = _assign_dynamic(
            costs, nranks,
            per_task_overhead=per_task_overhead,
            multiplicity=multiplicity,
        )
    registry = get_metrics()
    if registry is not None:
        registry.counter("perfsim.assignments").inc()
        registry.counter("perfsim.tasks_assigned").inc(result.tasks_assigned)
        registry.histogram("perfsim.imbalance").observe(result.imbalance)
        registry.gauge("perfsim.last_makespan_s").set(result.makespan)
    return result


def _assign_dynamic(
    costs: np.ndarray,
    nranks: int,
    *,
    per_task_overhead: float,
    multiplicity: int,
) -> AssignmentResult:
    n = costs.size
    if n == 0:
        return AssignmentResult(0.0, 0.0, 1.0, 0, True)

    eff = costs + per_task_overhead
    total = float(eff.sum()) * multiplicity

    if n * multiplicity > EXACT_SIM_LIMIT or multiplicity > 1:
        # Asymptotic regime: mean + tail-task correction.  The tail term
        # is the largest single task a rank can be left holding.
        mean = total / nranks
        tail = float(eff.max())
        makespan = mean + tail * (1.0 - 1.0 / nranks)
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=False,
        )

    if nranks >= n:
        # Every task gets its own rank immediately.
        makespan = float(eff.max())
        mean = total / nranks
        return AssignmentResult(
            makespan=makespan,
            mean_load=mean,
            imbalance=makespan / mean if mean > 0 else 1.0,
            tasks_assigned=n,
            exact=True,
        )

    free = [0.0] * nranks
    heapq.heapify(free)
    for c in eff:
        t = heapq.heappop(free)
        heapq.heappush(free, t + float(c))
    makespan = max(free)
    mean = total / nranks
    return AssignmentResult(
        makespan=float(makespan),
        mean_load=mean,
        imbalance=float(makespan) / mean if mean > 0 else 1.0,
        tasks_assigned=n,
        exact=True,
    )


def thread_loop_makespan(
    total_cost: float,
    max_task_cost: float,
    nthreads: int,
) -> float:
    """Makespan of an OpenMP ``schedule(dynamic, 1)`` inner loop.

    The classic greedy list-scheduling bound, tight for many small
    tasks: ``total / T + max_task * (1 - 1/T)``.
    """
    if nthreads <= 1:
        return total_cost
    return total_cost / nthreads + max_task_cost * (1.0 - 1.0 / nthreads)
