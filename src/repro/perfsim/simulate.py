"""End-to-end simulated Fock-build time for one run configuration.

``simulate_fock_build(workload, config, cost_model)`` composes the
machine model, the screening-derived workload, and the algorithm
structure into a wall-time prediction with a cost breakdown.  The
quantity simulated matches what the paper reports: the accumulated
"TIME TO FORM FOCK" over the SCF run (the artifact appendix extracts
exactly that timer), with the replicated diagonalization time reported
separately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.constants import GB
from repro.core.memory_model import AlgorithmKind, MemoryModel, NodeConfig
from repro.machine.cluster_modes import ClusterMode, cluster_penalties
from repro.machine.memory_modes import MemoryMode, effective_bandwidth_gbs
from repro.machine.system import SystemSpec, THETA
from repro.perfsim.affinity import Affinity, placement_throughput
from repro.perfsim.cost_model import CostModel
from repro.perfsim.engine import (
    SCHEDULE_NAMES,
    assign_schedule,
    thread_loop_makespan,
)
from repro.perfsim.workload import Workload


@dataclass(frozen=True)
class RunConfig:
    """One benchmark run: machine geometry, algorithm, node modes.

    ``ranks_per_node=None`` selects the largest memory-feasible rank
    count (power of two, capped at 256) — the choice the paper's
    MPI-only runs are forced into.
    """

    algorithm: AlgorithmKind
    system: SystemSpec = THETA
    nodes: int = 1
    ranks_per_node: int | None = 4
    threads_per_rank: int = 64
    cluster_mode: ClusterMode = ClusterMode.QUADRANT
    memory_mode: MemoryMode = MemoryMode.CACHE
    affinity: Affinity = Affinity.BALANCED
    base_per_rank_gb: float = 1.0
    schedule: str = "dlb"

    def __post_init__(self) -> None:
        # Accept plain strings for every enum field (CLI, config files).
        object.__setattr__(self, "algorithm", AlgorithmKind(self.algorithm))
        object.__setattr__(self, "cluster_mode", ClusterMode(self.cluster_mode))
        object.__setattr__(self, "memory_mode", MemoryMode(self.memory_mode))
        object.__setattr__(self, "affinity", Affinity(self.affinity))
        if self.schedule not in SCHEDULE_NAMES:
            raise ValueError(
                f"unknown schedule {self.schedule!r}; "
                f"choose from {SCHEDULE_NAMES}"
            )

    @classmethod
    def mpi_only(
        cls, *, system: SystemSpec = THETA, nodes: int = 1,
        ranks_per_node: int | None = None, **kw,
    ) -> "RunConfig":
        """Stock-code configuration (one thread per rank)."""
        return cls(
            algorithm=AlgorithmKind.MPI_ONLY, system=system, nodes=nodes,
            ranks_per_node=ranks_per_node, threads_per_rank=1, **kw,
        )

    @classmethod
    def hybrid(
        cls, algorithm: AlgorithmKind | str, *, system: SystemSpec = THETA,
        nodes: int = 1, ranks_per_node: int = 4, threads_per_rank: int = 64,
        **kw,
    ) -> "RunConfig":
        """Hybrid configuration (paper default: 4 ranks x 64 threads)."""
        return cls(
            algorithm=AlgorithmKind(algorithm), system=system, nodes=nodes,
            ranks_per_node=ranks_per_node, threads_per_rank=threads_per_rank,
            **kw,
        )


@dataclass
class SimResult:
    """Simulated timing of one run."""

    config: RunConfig
    workload_label: str
    feasible: bool
    infeasible_reason: str = ""
    total_seconds: float = math.inf
    per_iteration_seconds: float = math.inf
    diag_seconds: float = 0.0
    ranks_per_node: int = 0
    total_ranks: int = 0
    hardware_threads_per_node: int = 0
    breakdown: dict[str, float] = field(default_factory=dict)
    node_memory_gb: float = 0.0
    effective_bandwidth_gbs: float = 0.0
    imbalance: float = 1.0


def _resolve_ranks_per_node(
    wl: Workload, cfg: RunConfig, cost: CostModel
) -> int:
    """Auto rank count for the stock code: memory-feasible power of two."""
    if cfg.ranks_per_node is not None:
        return cfg.ranks_per_node
    node = cfg.system.node
    mm = MemoryModel(wl.nbf, wl.nshells, legacy_ddi=True)
    per_rank_gb = (
        mm.per_rank_words(AlgorithmKind.MPI_ONLY) * 8 / GB
        + cfg.base_per_rank_gb
    )
    cap = min(node.max_hw_threads, 256)
    fit = int(node.ddr_gb // per_rank_gb) if per_rank_gb > 0 else cap
    fit = max(1, min(cap, fit))
    # Round down to a power of two, as job scripts do.
    return 1 << (fit.bit_length() - 1)


def simulate_fock_build(
    wl: Workload, cfg: RunConfig, cost: CostModel
) -> SimResult:
    """Predict the accumulated Fock-construction wall time of one run."""
    kind = AlgorithmKind(cfg.algorithm)
    system = cfg.system
    system.validate_nodes(cfg.nodes)
    node = system.node
    fabric = system.interconnect
    clp = cluster_penalties(cfg.cluster_mode)

    rpn = _resolve_ranks_per_node(wl, cfg, cost)
    tpr = 1 if kind is AlgorithmKind.MPI_ONLY else cfg.threads_per_rank
    R = cfg.nodes * rpn
    threads_on_node = rpn * tpr
    result = SimResult(
        config=cfg, workload_label=wl.label, feasible=True,
        ranks_per_node=rpn, total_ranks=R,
        hardware_threads_per_node=threads_on_node,
    )

    if threads_on_node > node.max_hw_threads:
        result.feasible = False
        result.infeasible_reason = (
            f"{threads_on_node} threads exceed the node's "
            f"{node.max_hw_threads} hardware threads"
        )
        return result

    # -- memory feasibility and effective bandwidth ----------------------
    legacy = kind is AlgorithmKind.MPI_ONLY
    mm = MemoryModel(wl.nbf, wl.nshells, legacy_ddi=legacy)
    ws_gb = mm.per_node_bytes(kind, NodeConfig(rpn, tpr)) / GB
    node_gb = ws_gb + rpn * cfg.base_per_rank_gb
    result.node_memory_gb = node_gb

    capacity = (
        node.mcdram_gb
        if cfg.memory_mode is MemoryMode.FLAT_MCDRAM
        else node.ddr_gb
    )
    if node_gb > capacity:
        result.feasible = False
        result.infeasible_reason = (
            f"needs {node_gb:.0f} GB/node; {cfg.memory_mode.value} "
            f"capacity is {capacity:.0f} GB"
        )
        return result

    # Bandwidth is governed by the *reused* read set: the per-rank
    # replicas of the density / core-Hamiltonian / overlap matrices that
    # every quartet rereads.  Thread-private Fock replicas are
    # accumulate-streams with per-block locality and do not join the
    # reuse set.
    read_set_gb = 1.5 * wl.nbf * wl.nbf * 8.0 * rpn / GB
    try:
        bw = effective_bandwidth_gbs(cfg.memory_mode, read_set_gb, node)
    except ValueError as exc:
        result.feasible = False
        result.infeasible_reason = str(exc)
        return result
    result.effective_bandwidth_gbs = bw

    # Cache-miss stall factor: the "cache capacity and cache line
    # conflict effects" of replicated matrices the paper names as the
    # reason large footprints hurt (section 6.1).  Each doubling of the
    # per-node replica count beyond the hybrid baseline (4 ranks) adds
    # conflict misses in the direct-mapped MCDRAM cache; the price of a
    # miss scales with how slow the backing path is relative to an
    # unloaded MCDRAM cache, and with the cluster mode's coherency-path
    # length.
    bw_ref = node.mcdram_bw_gbs * 0.85
    replicas = rpn
    miss_rate = cost.miss_base + cost.miss_per_replica_doubling * max(
        0.0, math.log2(max(replicas, 1) / 4.0)
    )
    stall = 1.0 + miss_rate * (bw_ref / bw) * clp.memory

    # -- node compute rate plus a bandwidth-roofline safety net ------------
    tp = placement_throughput(node, rpn, tpr, cfg.affinity)
    unit_rate_node = tp / (cost.seconds_per_unit * stall)
    byte_demand = unit_rate_node * cost.bytes_per_unit
    s_mem = min(1.0, bw * 1e9 / byte_demand) if byte_demand > 0 else 1.0
    thread_rate = (
        (tp / max(threads_on_node, 1)) * s_mem / (cost.seconds_per_unit * stall)
    )

    spu_thread = 1.0 / thread_rate  # seconds per unit on one thread

    dlb_fetch = fabric.dlb_fetch_seconds(same_node=(cfg.nodes == 1))
    barrier = cost.barrier_seconds(tpr, clp.coherency)

    sig = wl.task_significant
    nsig = int(sig.sum())
    n_insig = wl.task_index.size - nsig

    breakdown: dict[str, float] = {}

    if kind in (AlgorithmKind.MPI_ONLY, AlgorithmKind.SHARED_FOCK):
        work = wl.task_work[sig] * spu_thread
        max_unit = wl.task_max_unit[sig] * spu_thread
        if kind is AlgorithmKind.SHARED_FOCK:
            # Per-task thread makespan + two barriers + the FJ flush,
            # plus tag-directory serialization of the shared F(k,l)
            # writes in coherency-hostile cluster modes.
            fj_bytes = (tpr + 1) * wl.nbf * 6 * 8.0
            flush_bw = cost.flush_bw_fraction * bw * 1e9 / rpn
            fj_flush = fj_bytes / flush_bw * clp.coherency
            shared_write = (
                wl.task_count[sig]
                * cost.shared_write_ns
                * 1e-9
                * max(0.0, clp.coherency - 1.0)
            )
            task_times = (
                thread_loop_makespan_vec(work, max_unit, tpr)
                + 2.0 * barrier
                + fj_flush
                + shared_write
            )
            breakdown["flush"] = fj_flush * nsig / max(R, 1)
            breakdown["barrier"] = 2.0 * barrier * nsig / max(R, 1)
        else:
            task_times = work

        asg = assign_schedule(
            task_times, R, cfg.schedule, per_task_overhead=dlb_fetch,
            multiplicity=wl.stride,
        )
        makespan = asg.makespan
        if cfg.schedule == "dlb":
            # Insignificant draws: pure fetch cost, spread over ranks.
            makespan += n_insig * wl.stride / R * dlb_fetch
            # Global DLB counter occupancy floor.  Pre-partitioned and
            # chunked strategies never serialize on a shared counter.
            occupancy = wl.npair_tasks * cost.dlb_occupancy_us * 1e-6
            makespan = max(makespan, occupancy)
        result.imbalance = asg.imbalance

        if kind is AlgorithmKind.SHARED_FOCK:
            # FI flushes on i-change (amortized) + remainder.
            n_i_changes = min(
                max(nsig * wl.stride // max(R, 1), 1), wl.nshells
            )
            fi_bytes = (tpr + 1) * wl.nbf * 6 * 8.0
            flush_bw = cost.flush_bw_fraction * bw * 1e9 / rpn
            makespan += n_i_changes * (
                fi_bytes / flush_bw * clp.coherency + barrier
            )
    else:  # PRIVATE_FOCK
        i_idx = np.arange(wl.nshells)
        work_i = wl.work_per_i * spu_thread
        # Collapsed (j, k) sub-task tail: each of the (i+1)^2 inner
        # tasks is small; a heavy-tail factor bounds the worst chunk.
        denom = np.maximum((i_idx + 1.0) ** 2, 1.0)
        max_sub = work_i * np.minimum(1.0, 10.0 / denom)
        task_times = (
            thread_loop_makespan_vec(work_i, max_sub, tpr) + 2.0 * barrier
        )
        asg = assign_schedule(
            task_times, R, cfg.schedule, per_task_overhead=dlb_fetch,
        )
        makespan = asg.makespan
        result.imbalance = asg.imbalance
        breakdown["barrier"] = 2.0 * barrier * wl.nshells / max(R, 1)
        # End-of-build OpenMP reduction of thread-private Focks.
        red_bytes = tpr * wl.nbf * wl.nbf * 8.0
        makespan += red_bytes / (cost.flush_bw_fraction * bw * 1e9 / rpn)

    # -- Fock allreduce over MPI ranks -------------------------------------
    fock_bytes = wl.nbf * wl.nbf * 8.0
    if cfg.nodes > 1:
        reduce_t = fabric.allreduce_seconds(fock_bytes, R)
    else:
        reduce_t = (rpn - 1) / max(rpn, 1) * 2.0 * fock_bytes / (bw * 1e9)
    per_iter = makespan + reduce_t

    breakdown["compute"] = wl.total_work * spu_thread / max(
        R * (tpr if kind is not AlgorithmKind.MPI_ONLY else 1), 1
    )
    breakdown["imbalance"] = max(0.0, makespan - breakdown["compute"]
                                 - breakdown.get("barrier", 0.0)
                                 - breakdown.get("flush", 0.0))
    breakdown["reduction"] = reduce_t
    result.breakdown = {k: v * cost.scf_iterations for k, v in breakdown.items()}

    result.per_iteration_seconds = per_iter
    result.total_seconds = per_iter * cost.scf_iterations
    result.diag_seconds = (
        cost.diag_units_per_n3 * wl.nbf ** 3 * cost.seconds_per_unit
        * cost.scf_iterations
    )
    return result


def thread_loop_makespan_vec(
    total: np.ndarray, max_task: np.ndarray, nthreads: int
) -> np.ndarray:
    """Vectorized :func:`~repro.perfsim.engine.thread_loop_makespan`."""
    if nthreads <= 1:
        return np.asarray(total, dtype=np.float64)
    return total / nthreads + max_task * (1.0 - 1.0 / nthreads)
