"""Cost model: how long every primitive operation takes.

Everything is expressed in *work units* (roughly double-precision
floating-point operations of the integral kernel); a single global
``seconds_per_unit`` converts to wall time for a thread running alone
on one KNL core.  That constant is the model's only free parameter and
is calibrated once against one paper data point (Table 3: MPI-only,
2.0 nm, 4 Theta nodes = 2661 s); every other prediction is then fixed.

Secondary constants (bandwidths, latencies, barrier costs) come from
the paper's hardware description and public KNL/Aries characteristics,
not from fitting result curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

#: Composite-shell classes for 6-31G(d) carbon systems, with
#: (functions, primitives) per class.
SHELL_CLASSES: dict[str, tuple[int, int]] = {
    "S": (1, 6),   # inner 6-primitive s
    "L": (4, 3),   # valence sp (outer L has 1 primitive; 3 is the
                   # work-weighted representative used for pair classes)
    "D": (6, 1),
}


def eri_quartet_units(
    nf_bra: int, np_bra: int, l_bra: int,
    nf_ket: int, np_ket: int, l_ket: int,
) -> float:
    """Work units to evaluate and scatter one shell-quartet ERI block.

    ``npp * (a * (Ltot+1)^3 + b * nf_bra * nf_ket)`` models the Hermite
    R-tensor recursion plus the E-matrix contractions per primitive
    quartet; ``c * nf_bra * nf_ket`` the density/Fock update traffic.
    """
    npp = np_bra * np_ket
    ltot = l_bra + l_ket
    return npp * (55.0 * (ltot + 1.0) ** 3 + 6.0 * nf_bra * nf_ket) + (
        24.0 * nf_bra * nf_ket
    )


@dataclass(frozen=True)
class CostModel:
    """All timing constants of the performance simulator.

    Attributes
    ----------
    seconds_per_unit:
        Wall seconds per work unit for one un-shared KNL core thread.
        The calibrated global scale.
    bytes_per_unit:
        Memory traffic per work unit (a bandwidth-roofline safety net
        for extreme configurations).
    miss_base:
        Baseline cache-miss stall fraction of the integral kernel.
    miss_per_replica_doubling:
        Additional stall fraction per doubling of the per-node matrix
        replica count beyond the 4-rank hybrid baseline — the
        direct-mapped MCDRAM conflict pressure of the replicated
        density/Fock matrices (the paper's stated cache effect).
    shared_write_ns:
        Per-quartet serialization occupancy of the shared-Fock direct
        update at the mesh tag directories, paid only by the excess of
        the cluster mode's coherency penalty over quadrant — this is
        what lets the stock MPI code catch the shared-Fock code in
        all-to-all mode (paper Figure 5).
    barrier_base_us:
        Cost of an OpenMP barrier for 2 threads; scales with
        ``log2(nthreads)`` and the cluster-mode coherency penalty.
    dlb_occupancy_us:
        Serialization occupancy of one DDI counter fetch-and-add at the
        counter's home node (a global throughput floor on top-loop
        iterations).
    flush_bw_fraction:
        Fraction of node memory bandwidth one rank's buffer flush
        achieves.
    diag_units_per_n3:
        Work units per ``nbf^3`` for the (replicated) Fock
        diagonalization — reported separately; the paper's timings are
        Fock-build only ("TIME TO FORM FOCK").
    scf_iterations:
        SCF cycles in a time-to-solution figure (graphene/6-31G(d) runs
        converge in ~18 cycles).
    """

    seconds_per_unit: float = 1.0e-9
    bytes_per_unit: float = 0.05
    miss_base: float = 0.05
    miss_per_replica_doubling: float = 0.11
    shared_write_ns: float = 500.0
    barrier_base_us: float = 0.6
    dlb_occupancy_us: float = 0.12
    flush_bw_fraction: float = 0.25
    diag_units_per_n3: float = 2.0
    scf_iterations: int = 18

    def with_scale(self, seconds_per_unit: float) -> "CostModel":
        """Copy with a new global time scale (used by calibration)."""
        return replace(self, seconds_per_unit=seconds_per_unit)

    def barrier_seconds(self, nthreads: int, coherency: float = 1.0) -> float:
        """One barrier across ``nthreads`` threads."""
        if nthreads <= 1:
            return 0.0
        return self.barrier_base_us * 1e-6 * np.log2(nthreads) * coherency


#: Cache of calibrated models keyed by the calibration-run fingerprint.
_CALIBRATION_CACHE: dict[str, CostModel] = {}


def calibrated_cost_model(*, force: bool = False) -> CostModel:
    """The cost model with ``seconds_per_unit`` anchored to the paper.

    Calibration target: Table 3, MPI-only algorithm, 2.0 nm dataset, 4
    Theta nodes = 2661 seconds.  The calibration run uses the same
    simulation path as every prediction, so the anchor point is exact
    by construction and all other points are genuine predictions.
    """
    key = "table3-mpi-4nodes"
    if not force and key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]

    # Import here to avoid a circular import at package load.
    from repro.machine.system import THETA
    from repro.perfsim.simulate import RunConfig, simulate_fock_build
    from repro.perfsim.workload import Workload

    model = CostModel()
    wl = Workload.for_dataset("2.0nm")
    cfg = RunConfig.mpi_only(system=THETA, nodes=4)
    # The bandwidth roofline couples time to the scale, so the anchor is
    # solved by fixed-point iteration (converges in a few steps).
    for _ in range(8):
        sim = simulate_fock_build(wl, cfg, model)
        ratio = 2661.0 / sim.total_seconds
        if abs(ratio - 1.0) < 1.0e-6:
            break
        model = model.with_scale(model.seconds_per_unit * ratio)
    _CALIBRATION_CACHE[key] = model
    return model
