"""Scaling sweeps: the direct generators of the paper's plots.

* :func:`node_scaling` — Figure 6 / Table 3 / Figure 7 (time vs nodes,
  parallel efficiency).
* :func:`single_node_thread_scaling` — Figure 4 (time vs hardware
  threads on one node for all three codes) and Figure 3 (affinity
  sweep, shared Fock).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.memory_model import AlgorithmKind
from repro.machine.system import JLSE, THETA, SystemSpec
from repro.perfsim.affinity import Affinity
from repro.perfsim.cost_model import CostModel
from repro.perfsim.simulate import RunConfig, SimResult, simulate_fock_build
from repro.perfsim.workload import Workload


@dataclass
class ScalingPoint:
    """One point on a scaling curve."""

    x: int                # nodes or hardware threads
    seconds: float
    efficiency: float     # parallel efficiency relative to the base point
    feasible: bool
    sim: SimResult


def parallel_efficiency(
    base_x: int, base_seconds: float, x: int, seconds: float
) -> float:
    """Standard parallel efficiency: ``(t0 * x0) / (t * x)``."""
    if seconds <= 0 or x <= 0:
        return 0.0
    return (base_seconds * base_x) / (seconds * x)


def node_scaling(
    workload: Workload,
    algorithm: AlgorithmKind | str,
    node_counts: list[int],
    cost: CostModel,
    *,
    system: SystemSpec = THETA,
    ranks_per_node: int | None = None,
    threads_per_rank: int = 64,
    **config_kw,
) -> list[ScalingPoint]:
    """Time-to-solution and efficiency across node counts.

    For the MPI-only algorithm ``ranks_per_node=None`` auto-sizes the
    per-node rank count to the memory limit (as the paper's runs must).
    """
    kind = AlgorithmKind(algorithm)
    points: list[ScalingPoint] = []
    base: tuple[int, float] | None = None
    for nodes in node_counts:
        if kind is AlgorithmKind.MPI_ONLY:
            cfg = RunConfig.mpi_only(
                system=system, nodes=nodes, ranks_per_node=ranks_per_node,
                **config_kw,
            )
        else:
            cfg = RunConfig.hybrid(
                kind, system=system, nodes=nodes,
                ranks_per_node=ranks_per_node or 4,
                threads_per_rank=threads_per_rank, **config_kw,
            )
        sim = simulate_fock_build(workload, cfg, cost)
        if sim.feasible and base is None:
            base = (nodes, sim.total_seconds)
        eff = (
            parallel_efficiency(base[0], base[1], nodes, sim.total_seconds)
            if (base is not None and sim.feasible)
            else 0.0
        )
        points.append(
            ScalingPoint(
                x=nodes, seconds=sim.total_seconds, efficiency=eff,
                feasible=sim.feasible, sim=sim,
            )
        )
    return points


def crossover_nodes(
    workload: Workload,
    cost: CostModel,
    *,
    system: SystemSpec = THETA,
    node_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512),
) -> int | None:
    """Smallest node count where shared Fock beats private Fock.

    The paper's Table 3 shows this crossover at 128 nodes for the
    2.0 nm dataset; its position shifts with the dataset's iteration-
    space sizes, which is what this helper lets callers map out.
    """
    for nodes in node_counts:
        shf = simulate_fock_build(
            workload, RunConfig.hybrid("shared-fock", system=system,
                                       nodes=nodes), cost,
        )
        prf = simulate_fock_build(
            workload, RunConfig.hybrid("private-fock", system=system,
                                       nodes=nodes), cost,
        )
        if shf.feasible and prf.feasible and (
            shf.total_seconds < prf.total_seconds
        ):
            return nodes
    return None


def single_node_thread_scaling(
    workload: Workload,
    algorithm: AlgorithmKind | str,
    hw_thread_counts: list[int],
    cost: CostModel,
    *,
    system: SystemSpec = JLSE,
    affinity: Affinity = Affinity.BALANCED,
    hybrid_ranks: int = 4,
    **config_kw,
) -> list[ScalingPoint]:
    """Figure-4-style sweep: time vs occupied hardware threads, 1 node.

    The hybrid codes hold 4 MPI ranks and scale threads per rank; the
    stock code scales MPI ranks directly.  Points whose memory footprint
    does not fit the node are reported infeasible — this is how the
    stock code's 128-thread ceiling appears.
    """
    kind = AlgorithmKind(algorithm)
    points: list[ScalingPoint] = []
    base: tuple[int, float] | None = None
    for hw in hw_thread_counts:
        if kind is AlgorithmKind.MPI_ONLY:
            cfg = RunConfig.mpi_only(
                system=system, nodes=1, ranks_per_node=hw,
                affinity=affinity, **config_kw,
            )
        else:
            tpr = max(1, hw // hybrid_ranks)
            cfg = RunConfig.hybrid(
                kind, system=system, nodes=1, ranks_per_node=hybrid_ranks,
                threads_per_rank=tpr, affinity=affinity, **config_kw,
            )
        sim = simulate_fock_build(workload, cfg, cost)
        if sim.feasible and base is None:
            base = (hw, sim.total_seconds)
        eff = (
            parallel_efficiency(base[0], base[1], hw, sim.total_seconds)
            if (base is not None and sim.feasible)
            else 0.0
        )
        points.append(
            ScalingPoint(
                x=hw, seconds=sim.total_seconds, efficiency=eff,
                feasible=sim.feasible, sim=sim,
            )
        )
    return points
