"""Discrete-event / analytic performance simulator.

Regenerates the paper's timing results (Figures 3-7, Table 3) from
mechanistic inputs:

* :mod:`~repro.perfsim.workload` — per-task work distributions derived
  from the real screening statistics of the benchmark systems (exact
  surviving-quartet counts per top-loop task; no curve fitting).
* :mod:`~repro.perfsim.cost_model` — ERI/update flop model, buffer
  flush, barrier, DLB-fetch and allreduce costs; one global time-scale
  constant calibrated to a single paper data point.
* :mod:`~repro.perfsim.affinity` — KMP_AFFINITY placement model.
* :mod:`~repro.perfsim.engine` — dynamic task-to-rank assignment
  (exact earliest-free simulation, closed-form for huge task counts).
* :mod:`~repro.perfsim.simulate` — end-to-end simulated Fock-build
  time for a (dataset, algorithm, machine configuration).
* :mod:`~repro.perfsim.scaling` — node/thread sweeps and parallel
  efficiency, the direct generators of the paper's plots.
"""

from repro.perfsim.cost_model import CostModel, calibrated_cost_model
from repro.perfsim.workload import Workload
from repro.perfsim.affinity import Affinity, placement_throughput
from repro.perfsim.engine import assign_dynamic, AssignmentResult
from repro.perfsim.simulate import RunConfig, SimResult, simulate_fock_build
from repro.perfsim.scaling import (
    node_scaling,
    parallel_efficiency,
    single_node_thread_scaling,
)

__all__ = [
    "CostModel",
    "calibrated_cost_model",
    "Workload",
    "Affinity",
    "placement_throughput",
    "assign_dynamic",
    "AssignmentResult",
    "RunConfig",
    "SimResult",
    "simulate_fock_build",
    "node_scaling",
    "parallel_efficiency",
    "single_node_thread_scaling",
]
