"""Reproduce Figure 7: shared-Fock scaling of the 5.0 nm system."""

from repro.analysis.figures import figure7_5nm_scaling
from repro.analysis.report import render_series
from repro.core.memory_model import AlgorithmKind, MemoryModel, NodeConfig


def test_figure7_5nm(benchmark, emit, cost_model):
    series = benchmark.pedantic(
        lambda: figure7_5nm_scaling(cost_model), rounds=1, iterations=1
    )
    emit(
        "fig7_5nm_scaling",
        render_series(
            [series],
            "Shared-Fock, 5.0 nm (30,240 BFs), Theta, 4 ranks x 64 "
            "threads per node; x = nodes, cells = seconds",
        ),
    )
    # Paper: the 5.0 nm dataset is the largest that fits, ~208 GB/node
    # at 4 ranks, and scales to 3,000 nodes (192,000 cores).
    mm = MemoryModel(30240, 8064)
    gb = mm.per_node_bytes(AlgorithmKind.SHARED_FOCK, NodeConfig(4, 64)) / 1e9
    assert 80 < gb + 4 < 220  # matrices + ~1 GB/rank base near the limit
    assert all(series.feasible)
    # Monotone decreasing time up to 3,000 nodes = good scaling.
    assert all(
        a > b for a, b in zip(series.seconds[:-1], series.seconds[1:])
    )
    speedup = series.seconds[0] / series.seconds[-1]
    nodes_ratio = series.x[-1] / series.x[0]
    assert speedup > 0.5 * nodes_ratio  # >50% efficiency across the sweep
