"""Micro-benchmarks of the computational kernels (real timings).

These exercise the actual Python/NumPy kernels — integral evaluation,
Fock construction, screening statistics — under pytest-benchmark, so
performance regressions in the substrate are visible.
"""

import numpy as np
import pytest

from repro.chem.basis import BasisSet
from repro.chem.molecule import water
from repro.core.fock_shared import SharedFockBuilder
from repro.core.quartets import QuartetEngine
from repro.core.screening import prefix_survivor_counts
from repro.integrals.boys import boys
from repro.integrals.eri import ShellPair, eri_shell_quartet
from repro.integrals.onee import kinetic_matrix, nuclear_matrix, overlap_matrix
from repro.scf.fock_dense import eri_tensor, fock_from_eri


@pytest.fixture(scope="module")
def basis():
    return BasisSet(water(), "sto-3g")


@pytest.fixture(scope="module")
def basis_d():
    return BasisSet(water(), "6-31g(d)")


def test_boys_function(benchmark):
    xs = np.linspace(0.0, 50.0, 10_000)
    out = benchmark(lambda: boys(8, xs))
    assert out.shape == (9, 10_000)


def test_overlap_matrix(benchmark, basis_d):
    s = benchmark(lambda: overlap_matrix(basis_d))
    assert s.shape == (19, 19)


def test_eri_shell_quartet_dddd(benchmark, basis_d):
    d_shell = next(s for s in basis_d.shells if s.l == 2)
    pair = ShellPair(d_shell, d_shell)
    block = benchmark(lambda: eri_shell_quartet(pair, pair))
    assert block.shape == (6, 6, 6, 6)


def test_dense_eri_tensor(benchmark, basis):
    eri = benchmark.pedantic(lambda: eri_tensor(basis), rounds=1, iterations=1)
    assert eri.shape == (7, 7, 7, 7)


def test_dense_fock_build(benchmark, basis):
    eri = eri_tensor(basis)
    h = kinetic_matrix(basis) + nuclear_matrix(basis)
    rng = np.random.default_rng(0)
    d = rng.standard_normal((7, 7))
    d = d + d.T
    f = benchmark(lambda: fock_from_eri(h, eri, d))
    assert f.shape == (7, 7)


def test_shared_fock_algorithm_build(benchmark, basis):
    h = kinetic_matrix(basis) + nuclear_matrix(basis)
    builder = SharedFockBuilder(basis, h, nranks=2, nthreads=4)
    rng = np.random.default_rng(0)
    d = rng.standard_normal((7, 7))
    d = d + d.T
    f, stats = benchmark.pedantic(
        lambda: builder(d), rounds=1, iterations=2
    )
    assert stats.quartets_computed > 0


def test_quartet_engine_block(benchmark, basis_d):
    eng = QuartetEngine(basis_d)
    eng.composite_block(3, 1, 2, 0)  # warm the pair cache
    block = benchmark(lambda: eng.composite_block(3, 1, 2, 0))
    assert block.ndim == 4


def test_prefix_survivor_counts_100k(benchmark):
    rng = np.random.default_rng(1)
    q = np.abs(rng.lognormal(-6, 4, 100_000))
    out = benchmark.pedantic(
        lambda: prefix_survivor_counts(q, 1e-10), rounds=1, iterations=1
    )
    assert out.size == 100_000
