"""Ablation studies of the design choices DESIGN.md calls out.

1. OpenMP schedule (paper: "no significant difference between the
   various OpenMP load balancer modes") — functional + simulated.
2. The ``iold`` flush optimization of Algorithm 3 (flush FI on i-change
   only) vs flushing every top iteration.
3. Schwarz screening on/off — work reduction per dataset.
4. DLB grant policy vs imbalance at scale.
5. Bra prescreening (the combined-index top-loop skip) payoff.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.chem.basis import BasisSet
from repro.chem.molecule import water
from repro.core.fock_shared import SharedFockBuilder
from repro.core.screening import Screening
from repro.integrals.onee import kinetic_matrix, nuclear_matrix
from repro.integrals.schwarz import schwarz_matrix
from repro.machine.system import THETA
from repro.perfsim.engine import assign_dynamic
from repro.perfsim.simulate import RunConfig, simulate_fock_build
from repro.perfsim.workload import Workload


@pytest.fixture(scope="module")
def water_setup():
    basis = BasisSet(water(), "sto-3g")
    h = kinetic_matrix(basis) + nuclear_matrix(basis)
    rng = np.random.default_rng(0)
    d = rng.standard_normal((basis.nbf, basis.nbf))
    d = d + d.T
    return basis, h, d


def test_ablation_openmp_schedule(benchmark, emit, bench_meta, water_setup):
    """Static vs dynamic thread schedule: same Fock, similar balance."""
    basis, h, d = water_setup

    def run():
        out = {}
        for schedule in ("static", "dynamic"):
            builder = SharedFockBuilder(
                basis, h, nranks=2, nthreads=4, thread_schedule=schedule
            )
            f, stats = builder(d)
            out[schedule] = (f, stats)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    f_s, st_s = out["static"]
    f_d, st_d = out["dynamic"]
    np.testing.assert_allclose(f_s, f_d, atol=1e-10)
    bench_meta(quartets=st_s.quartets_computed + st_d.quartets_computed)
    rows = [
        [sched, str(st.quartets_computed), str(st.per_thread_quartets)]
        for sched, (_f, st) in out.items()
    ]
    emit(
        "ablation_openmp_schedule",
        render_table(["schedule", "quartets", "per-thread split"], rows)
        + "\npaper: 'No significant difference between the various "
        "OpenMP load balancer modes was observed.'",
    )


def test_ablation_iold_flush(benchmark, emit, water_setup):
    """The flush-on-i-change optimization cuts FI flushes dramatically."""
    basis, h, d = water_setup

    def run():
        out = {}
        for every in (False, True):
            builder = SharedFockBuilder(
                basis, h, nranks=1, nthreads=4,
                flush_fi_every_iteration=every,
            )
            f, stats = builder(d)
            out[every] = (f, stats)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    f_opt, st_opt = out[False]
    f_all, st_all = out[True]
    np.testing.assert_allclose(f_opt, f_all, atol=1e-10)
    assert st_opt.fi_flushes < st_all.fi_flushes
    emit(
        "ablation_iold_flush",
        render_table(
            ["FI flush policy", "FI flushes", "FJ flushes"],
            [
                ["on i-change (paper)", str(st_opt.fi_flushes),
                 str(st_opt.fj_flushes)],
                ["every iteration", str(st_all.fi_flushes),
                 str(st_all.fj_flushes)],
            ],
        ),
    )


def test_ablation_schwarz_screening(benchmark, emit):
    """Screening removes 77-99% of the quartet space (dataset-dependent)."""

    def run():
        rows = []
        for label in ("0.5nm", "1.0nm", "1.5nm", "2.0nm"):
            wl = Workload.for_dataset(label)
            full = wl.npair_tasks * (wl.npair_tasks + 1) / 2
            rows.append(
                [label, f"{full:.3e}", f"{wl.total_quartets:.3e}",
                 f"{100 * wl.screening_fraction():.2f}%"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_schwarz_screening",
        render_table(
            ["dataset", "all quartets", "surviving", "screened out"], rows
        ),
    )
    fracs = [float(r[3].rstrip("%")) for r in rows]
    assert fracs == sorted(fracs)  # sparsity grows with system size


def test_ablation_functional_screening_consistency(benchmark):
    """Loose vs tight tau: quartet count drops, Fock error stays small.

    Uses a small graphene patch — water is too compact for any quartet
    to fall below a meaningful threshold.
    """
    from repro.chem.graphene import bilayer_graphene
    from repro.integrals.onee import kinetic_matrix, nuclear_matrix

    basis = BasisSet(bilayer_graphene(2), "sto-3g")
    h = kinetic_matrix(basis) + nuclear_matrix(basis)
    rng = np.random.default_rng(5)
    d = rng.standard_normal((basis.nbf, basis.nbf))
    d = d + d.T
    q = schwarz_matrix(basis)

    def run():
        tight, _ = SharedFockBuilder(
            basis, h, nthreads=2, screening=Screening(q, 1e-12)
        )(d)
        loose, stats = SharedFockBuilder(
            basis, h, nthreads=2, screening=Screening(q, 1e-5)
        )(d)
        return tight, loose, stats

    tight, loose, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.quartets_screened > 0
    assert np.max(np.abs(loose - tight)) < 1e-3


def test_ablation_dlb_policy_imbalance(benchmark, emit, cost_model):
    """Dynamic (cost-aware) vs static block assignment at 256 nodes."""
    wl = Workload.for_dataset("2.0nm")

    def run():
        sig = wl.task_significant
        times = wl.task_work[sig] * cost_model.seconds_per_unit
        R = 256 * 4
        dynamic = assign_dynamic(times, R)
        # Static block partition: contiguous slabs of the task list.
        bounds = np.linspace(0, times.size, R + 1).astype(int)
        loads = np.array(
            [times[a:b].sum() for a, b in zip(bounds[:-1], bounds[1:])]
        )
        return dynamic, loads

    dynamic, static_loads = benchmark.pedantic(run, rounds=1, iterations=1)
    static_imbalance = static_loads.max() / static_loads.mean()
    emit(
        "ablation_dlb_policy",
        render_table(
            ["assignment", "imbalance (makespan/mean)"],
            [
                ["dynamic (DDI DLB)", f"{dynamic.imbalance:.2f}"],
                ["static block", f"{static_imbalance:.2f}"],
            ],
        ),
    )
    assert dynamic.imbalance < static_imbalance


def test_ablation_bra_prescreening(benchmark, emit, cost_model):
    """Skipping insignificant top-loop iterations is nearly free work.

    The paper: partitioning "allows the user to completely skip the
    most costly top-loop iterations" for sparse systems.
    """

    def run():
        rows = []
        for label in ("0.5nm", "2.0nm"):
            wl = Workload.for_dataset(label)
            sig = int(wl.task_significant.sum() * wl.stride)
            rows.append(
                [label, str(wl.npair_tasks), str(sig),
                 f"{100 * (1 - sig / wl.npair_tasks):.1f}%"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_bra_prescreening",
        render_table(
            ["dataset", "ij iterations", "significant", "skipped"], rows
        ),
    )
    # The larger system skips a larger fraction of bra iterations.
    assert float(rows[1][3].rstrip("%")) > float(rows[0][3].rstrip("%"))
