"""Robustness bench: the reproduced shapes must survive constant
perturbation (x0.5 and x2 on every secondary model constant)."""

from repro.analysis.tables import render_table
from repro.perfsim.cost_model import CostModel
from repro.perfsim.sensitivity import CLAIMS, sensitivity_sweep


def test_sensitivity_of_table3_claims(benchmark, emit):
    records = benchmark.pedantic(
        lambda: sensitivity_sweep(CostModel()), rounds=1, iterations=1
    )
    rows = [
        [
            r.parameter,
            f"x{r.factor:g}",
            f"{r.speedup_512:.1f}x",
            "all hold" if r.all_hold else ", ".join(
                c for c, ok in r.claims_held.items() if not ok
            ),
        ]
        for r in records
    ]
    emit(
        "sensitivity_table3_claims",
        render_table(
            ["perturbed constant", "factor", "512-node speedup", "claims"],
            rows,
        ),
    )
    held = sum(r.all_hold for r in records)
    # The qualitative reproduction must not hinge on fine tuning: at
    # least ~85% of the 2x perturbations leave every claim intact.
    assert held >= int(0.85 * len(records)), f"only {held}/{len(records)}"
