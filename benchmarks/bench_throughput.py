"""Batch-throughput benchmark: FIFO vs size-binned on a skewed manifest.

The scenario the workload layer exists for: a manifest whose jobs cycle
through more distinct systems than a worker's warm caches can hold.
Here that is ``--systems`` distinct geometries (scaled water variants
plus light H2 variants — a *skewed* size mix) interleaved ``--repeats``
times, so manifest (FIFO) order revisits each system only after all the
others have evicted it from the worker's setup cache and ERI pool
(capacity 8 of each).  The size-binned policy reorders the same jobs so
each system's repeats run back-to-back: one cold setup per system, warm
``setup_cache`` and preloaded ERI quartets for every repeat after the
first.

Both policies run the identical job set through an identical in-process
single-worker daemon (fresh service dir each, so no cross-policy cache
leakage) and the record holds their two
:class:`~repro.workload.manager.ThroughputReport` summaries plus the
headline ratios::

    {
      "fifo":   {"metrics": {...}, "energies": [...]},
      "binned": {"metrics": {...}, "energies": [...]},
      "binned_speedup": ...,          # binned jobs/s over fifo jobs/s
      "amortization_gain": ...,       # binned ratio over fifo ratio
      ...
    }

``--check`` enforces the contract: size-binned beats FIFO on jobs/s,
its cache-amortization ratio is > 1 (FIFO's is 1.0 by construction),
and — the correctness half — every job's energy is bitwise identical
under both policies (batching reorders and reuses read-only caches; it
must never change numbers).

Deterministic keys (job counts, batch counts, warm/cold splits,
amortization, energies) are gated in CI against
``benchmarks/baselines/BENCH_throughput.json``; wall-clock keys
(``*_s``, ``*_per_s``, ``*speedup*``) are machine-dependent and
excluded there.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
from pathlib import Path


def water_variant(scale: float) -> str:
    """A water geometry uniformly scaled by ``scale`` (distinct system)."""
    from repro.chem.molecule import water

    lines = water().to_xyz().strip().split("\n")
    out = []
    for line in lines:
        parts = line.split()
        if len(parts) >= 4:
            try:
                x, y, z = (float(p) for p in parts[1:4])
            except ValueError:
                out.append(line)
                continue
            out.append(f"{parts[0]} {x * scale:.8f} {y * scale:.8f} "
                       f"{z * scale:.8f}")
        else:
            out.append(line)
    return "\n".join(out) + "\n"


def h2_variant(scale: float) -> str:
    """An H2 geometry with a scaled bond length (distinct system)."""
    from repro.chem.molecule import hydrogen_molecule

    return hydrogen_molecule(r_bohr=1.4 * scale).to_xyz()


def build_specs(n_systems: int, repeats: int):
    """The skewed, interleaved manifest: heavy waters + light H2s.

    Interleaving is the worst case for FIFO: with ``n_systems`` > the
    worker cache capacity (8), every FIFO job is a cold start, while
    binning gets ``repeats - 1`` warm jobs per system.
    """
    from dataclasses import replace

    from repro.service.jobs import JobSpec

    n_h2 = max(1, n_systems // 5)  # the skew: a few cheap systems
    systems = []
    for k in range(n_systems - n_h2):
        systems.append(JobSpec(xyz=water_variant(1.0 + 0.02 * k),
                               tag=f"water-{k}"))
    for k in range(n_h2):
        systems.append(JobSpec(xyz=h2_variant(1.0 + 0.05 * k),
                               tag=f"h2-{k}"))
    specs = []
    for r in range(repeats):
        for s, spec in enumerate(systems):
            specs.append(replace(spec, tag=f"{spec.tag}-r{r}"))
    return specs


def run_policy(policy: str, specs, *, root: Path, fleet: int,
               tick_s: float, seed: int, timeout_s: float):
    """One full batch run on a fresh in-process daemon."""
    from repro.service import JobClient, ServiceConfig, ServiceDaemon
    from repro.workload import WorkloadManager

    service_dir = root / f"svc-{policy}"
    config = ServiceConfig(
        service_dir=str(service_dir), fleet=fleet, tick_s=tick_s,
        runs_dir=str(root / f"runs-{policy}"),
        backoff_base_s=0.05, backoff_cap_s=0.5,
    )
    daemon = ServiceDaemon(config).start()
    thread = threading.Thread(target=daemon.run_forever, daemon=True)
    thread.start()
    try:
        manager = WorkloadManager(JobClient(service_dir),
                                  policy=policy, seed=seed)
        return manager.run(specs, timeout_s=timeout_s)
    finally:
        daemon._stop.set()
        thread.join(timeout=10.0)
        daemon.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--systems", type=int, default=10,
                        help="distinct geometries (> 8 defeats FIFO's "
                             "caches; default: 10)")
    parser.add_argument("--repeats", type=int, default=4,
                        help="jobs per system, interleaved (default: 4)")
    parser.add_argument("--fleet", type=int, default=1,
                        help="worker processes (default: 1, so cache "
                             "placement is deterministic)")
    parser.add_argument("--tick-s", type=float, default=0.005,
                        help="daemon dispatch tick; tight so queue "
                             "latency does not drown the signal")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON record here")
    parser.add_argument("--check", action="store_true",
                        help="enforce the throughput + parity contract")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

    specs = build_specs(args.systems, args.repeats)
    print(f"manifest: {len(specs)} jobs "
          f"({args.systems} systems x {args.repeats} repeats, interleaved)")

    reports = {}
    with tempfile.TemporaryDirectory(prefix="bench-throughput-") as tmp:
        for policy in ("fifo", "binned"):
            print(f"running policy {policy} ...")
            reports[policy] = run_policy(
                policy, specs, root=Path(tmp), fleet=args.fleet,
                tick_s=args.tick_s, seed=args.seed,
                timeout_s=args.timeout,
            )

    def energies(report):
        by_index = {j["manifest_index"]: j["energy"] for j in report.jobs}
        return [by_index[i] for i in range(len(specs))]

    record = {
        "kind": "batch-throughput-bench",
        "n_jobs": len(specs),
        "n_systems": args.systems,
        "repeats": args.repeats,
        "fleet": args.fleet,
        "seed": args.seed,
        "energies": energies(reports["binned"]),
    }
    for policy, report in reports.items():
        record[policy] = {
            "metrics": report.metrics,
            "n_batches": len(report.plan.batches),
        }
    fifo_m = reports["fifo"].metrics
    binned_m = reports["binned"].metrics
    record["binned_speedup"] = (binned_m["jobs_per_s"]
                                / max(fifo_m["jobs_per_s"], 1e-12))
    record["amortization_gain"] = (
        binned_m["cache_amortization_ratio"]
        / max(fifo_m["cache_amortization_ratio"], 1e-12)
    )

    print(f"fifo   : {fifo_m['jobs_per_s']:.2f} jobs/s, "
          f"amortization {fifo_m['cache_amortization_ratio']:.2f} "
          f"({fifo_m['warm_setups']} warm / {fifo_m['cold_setups']} cold)")
    print(f"binned : {binned_m['jobs_per_s']:.2f} jobs/s, "
          f"amortization {binned_m['cache_amortization_ratio']:.2f} "
          f"({binned_m['warm_setups']} warm / {binned_m['cold_setups']} "
          f"cold)")
    print(f"binned speedup: {record['binned_speedup']:.2f}x")

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        print(f"record: {args.output}")

    if args.check:
        failures = []
        if not (binned_m["jobs_per_s"] > fifo_m["jobs_per_s"]):
            failures.append(
                f"size-binned did not beat FIFO: "
                f"{binned_m['jobs_per_s']:.2f} <= "
                f"{fifo_m['jobs_per_s']:.2f} jobs/s"
            )
        if not binned_m["cache_amortization_ratio"] > 1.0:
            failures.append(
                "binned cache_amortization_ratio "
                f"{binned_m['cache_amortization_ratio']:.2f} is not > 1"
            )
        if fifo_m["jobs_done"] != len(specs):
            failures.append(f"fifo completed {fifo_m['jobs_done']}"
                            f"/{len(specs)} jobs")
        if binned_m["jobs_done"] != len(specs):
            failures.append(f"binned completed {binned_m['jobs_done']}"
                            f"/{len(specs)} jobs")
        if energies(reports["fifo"]) != energies(reports["binned"]):
            failures.append(
                "energies differ between fifo and binned runs — "
                "batching changed the numbers"
            )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("checks passed: binned > fifo jobs/s, amortization > 1, "
              "energies bitwise identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
