"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered output to ``benchmarks/results/<name>.txt`` (and to
stdout).  The pytest-benchmark timer wraps the regeneration so the
harness also reports how long each reproduction takes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cost_model():
    """The calibrated cost model, built once per benchmark session."""
    from repro.perfsim.cost_model import calibrated_cost_model

    return calibrated_cost_model()


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a rendered table/figure to the results dir and stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n", flush=True)

    return _emit
