"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
writes the rendered output to ``benchmarks/results/<name>.txt`` (and to
stdout).  The pytest-benchmark timer wraps the regeneration so the
harness also reports how long each reproduction takes.

In addition, every passing benchmark test writes a machine-readable
``benchmarks/results/BENCH_<test>.json`` record (test name, wall
seconds, plus any extra metrics the test attached via the
``bench_meta`` fixture, e.g. quartet counts → quartets/s) so the
performance trajectory of the repository is diffable across PRs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Extra machine-readable metrics attached by tests, keyed by nodeid.
_BENCH_EXTRA: dict[str, dict] = {}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def cost_model():
    """The calibrated cost model, built once per benchmark session."""
    from repro.perfsim.cost_model import calibrated_cost_model

    return calibrated_cost_model()


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a rendered table/figure to the results dir and stdout."""

    def _emit(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n", flush=True)

    return _emit


@pytest.fixture()
def bench_meta(request):
    """Attach extra metrics to this test's ``BENCH_*.json`` record.

    ``bench_meta(quartets=12345)`` additionally derives
    ``quartets_per_s`` from the measured wall time when the record is
    written.
    """

    def _set(**metrics) -> None:
        _BENCH_EXTRA.setdefault(request.node.nodeid, {}).update(metrics)

    return _set


def _safe_name(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.passed:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {
        "name": item.name,
        "nodeid": item.nodeid,
        "wall_s": report.duration,
    }
    record.update(_BENCH_EXTRA.pop(item.nodeid, {}))
    if "quartets" in record and report.duration > 0:
        record["quartets_per_s"] = record["quartets"] / report.duration
    path = RESULTS_DIR / f"BENCH_{_safe_name(item.name)}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
