"""Reproduce Table 2 (memory footprints) and artifact Table 4 (sizes)."""

from repro.analysis.tables import (
    render_table,
    table2_memory_footprints,
    table4_system_sizes,
)


def test_table4_system_sizes(benchmark, emit):
    rows = benchmark(table4_system_sizes)
    text = render_table(
        ["dataset", "atoms", "shells", "BFs",
         "paper atoms", "paper shells", "paper BFs"],
        [
            [r.dataset, str(r.natoms), str(r.nshells), str(r.nbf),
             str(r.paper_natoms), str(r.paper_nshells), str(r.paper_nbf)]
            for r in rows
        ],
    )
    emit("table4_system_sizes", text)
    for r in rows:
        assert (r.natoms, r.nshells, r.nbf) == (
            r.paper_natoms, r.paper_nshells, r.paper_nbf
        )


def test_table2_memory_footprints(benchmark, emit):
    rows = benchmark(table2_memory_footprints)
    text = render_table(
        ["dataset", "BFs",
         "MPI GB", "Pr.F GB", "Sh.F GB",
         "paper MPI", "paper Pr.F", "paper Sh.F",
         "red. Pr.F", "red. Sh.F"],
        [
            [
                r.dataset, str(r.nbf),
                f"{r.mpi_gb:.2f}", f"{r.private_gb:.2f}", f"{r.shared_gb:.3f}",
                f"{r.paper_mpi_gb:.2f}", f"{r.paper_private_gb:.2f}",
                f"{r.paper_shared_gb:.2f}",
                f"{r.reduction_private:.0f}x", f"{r.reduction_shared:.0f}x",
            ]
            for r in rows
        ],
    )
    emit("table2_memory_footprints", text)
    # Shape assertions: ordering + the ~order-100x shared reduction.
    for r in rows:
        assert r.mpi_gb > r.private_gb > r.shared_gb
    assert rows[-1].reduction_shared > 80
