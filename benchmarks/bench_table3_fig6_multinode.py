"""Reproduce Table 3 and Figure 6: multi-node scaling, 2.0 nm, Theta."""

from repro.analysis.tables import render_table, table3_multinode


def test_table3_and_figure6(benchmark, emit, cost_model):
    rows = benchmark.pedantic(
        lambda: table3_multinode(cost_model), rounds=1, iterations=1
    )
    algs = ("mpi-only", "private-fock", "shared-fock")
    text = render_table(
        ["nodes",
         "MPI s", "Pr.F s", "Sh.F s",
         "paper MPI", "paper Pr.F", "paper Sh.F",
         "MPI eff%", "Pr.F eff%", "Sh.F eff%",
         "paper eff (M/P/S)"],
        [
            [
                str(r.nodes),
                *(f"{r.times[a]:.0f}" for a in algs),
                *(f"{p:.0f}" for p in r.paper_times),
                *(f"{r.efficiencies[a]:.0f}" for a in algs),
                "/".join(f"{p:.0f}" for p in r.paper_eff),
            ]
            for r in rows
        ],
    )
    emit("table3_fig6_multinode", text)

    by_nodes = {r.nodes: r for r in rows}
    # Who wins and by what factor (the paper's headline claims):
    # 1) shared Fock ~6x faster than stock at 512 nodes;
    r512 = by_nodes[512]
    assert 4.0 < r512.times["mpi-only"] / r512.times["shared-fock"] < 9.0
    # 2) private Fock fastest at small node counts;
    r4 = by_nodes[4]
    assert r4.times["private-fock"] < r4.times["shared-fock"]
    assert r4.times["private-fock"] < r4.times["mpi-only"]
    # 3) shared Fock crosses private Fock by 128 nodes;
    assert by_nodes[128].times["shared-fock"] < by_nodes[128].times["private-fock"]
    # 4) every point within 2x of the paper's published value.
    for r in rows:
        for a, p in zip(algs, r.paper_times):
            assert p / 2 < r.times[a] < p * 2, (r.nodes, a)
