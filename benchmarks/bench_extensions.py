"""Extension benches: Xeon portability and the crossover map.

Both address paper claims that have no figure of their own:

* the conclusion's portability claim ("expected to be ... beneficial on
  the Intel Xeon multicore platform");
* the implicit claim that the shared-Fock code's advantage is a
  granularity effect, which predicts the private/shared crossover moves
  with the dataset's shell count.
"""

from repro.analysis.tables import render_table
from repro.machine.system import THETA, XEON_CLUSTER
from repro.perfsim.scaling import crossover_nodes
from repro.perfsim.simulate import RunConfig, simulate_fock_build
from repro.perfsim.workload import Workload


def test_xeon_portability(benchmark, emit, cost_model):
    """Hybrid vs stock on a Broadwell-Xeon cluster (1.0 nm, 8 nodes)."""

    def run():
        wl = Workload.for_dataset("1.0nm")
        rows = []
        for system, rpn, tpr in (
            (THETA, 4, 64),
            (XEON_CLUSTER, 2, 36),
        ):
            stock = simulate_fock_build(
                wl, RunConfig.mpi_only(system=system, nodes=8), cost_model
            )
            hybrid = simulate_fock_build(
                wl,
                RunConfig.hybrid("shared-fock", system=system, nodes=8,
                                 ranks_per_node=rpn, threads_per_rank=tpr),
                cost_model,
            )
            rows.append(
                [system.node.model,
                 f"{stock.total_seconds:.0f}",
                 f"{hybrid.total_seconds:.0f}",
                 f"{stock.total_seconds / hybrid.total_seconds:.2f}x"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_xeon_portability",
        render_table(
            ["node type", "stock s", "shared-fock s", "hybrid gain"], rows
        )
        + "\npaper: optimizations 'expected to be ... beneficial on the "
        "Intel Xeon multicore platform' (with the larger gain on Phi).",
    )
    knl_gain = float(rows[0][3].rstrip("x"))
    xeon_gain = float(rows[1][3].rstrip("x"))
    assert xeon_gain > 1.0          # hybrids help on Xeon too
    assert knl_gain > xeon_gain     # ...and help more on the many-core Phi


def test_crossover_map(benchmark, emit, cost_model):
    """Node count where shared Fock overtakes private Fock, per dataset."""

    def run():
        rows = []
        for label in ("0.5nm", "1.0nm", "1.5nm", "2.0nm"):
            wl = Workload.for_dataset(label)
            x = crossover_nodes(wl, cost_model)
            rows.append([label, str(wl.nshells), str(x)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_crossover_map",
        render_table(
            ["dataset", "shells (Alg-2 task count)", "crossover nodes"],
            rows,
        )
        + "\npaper Table 3 places the 2.0 nm crossover by 128 nodes.",
    )
    xs = [int(r[2]) for r in rows]
    # More shells -> private Fock survives to larger node counts.
    assert xs == sorted(xs)
    assert xs[-1] <= 128
