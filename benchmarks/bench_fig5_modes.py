"""Reproduce Figure 5: cluster-mode x memory-mode sweep (0.5 & 2.0 nm)."""

from repro.analysis.figures import figure5_modes
from repro.analysis.tables import render_table


def test_figure5_modes(benchmark, emit, cost_model):
    out = benchmark.pedantic(
        lambda: figure5_modes(cost_model), rounds=1, iterations=1
    )
    for label, recs in out.items():
        rows = []
        for r in recs:
            rows.append(
                [
                    r["cluster"], r["memory"], r["algorithm"],
                    f"{r['seconds']:.0f}" if r["feasible"] else "(mem)",
                ]
            )
        emit(
            f"fig5_modes_{label.replace('.', '_')}",
            render_table(["cluster", "memory", "algorithm", "seconds"], rows),
        )

    def t(label, cluster, memory, alg):
        for r in out[label]:
            if (
                r["cluster"] == cluster
                and r["memory"] == memory
                and r["algorithm"] == alg
            ):
                return r["seconds"] if r["feasible"] else None
        raise KeyError((label, cluster, memory, alg))

    # Paper's Figure-5 findings:
    # 1) private Fock best in every cluster/memory mode;
    for label in ("0.5nm", "2.0nm"):
        for cl in ("quadrant", "snc-4", "all-to-all"):
            for mm in ("cache", "flat-ddr"):
                pf = t(label, cl, mm, "private-fock")
                for other in ("mpi-only", "shared-fock"):
                    v = t(label, cl, mm, other)
                    if v is not None:
                        assert pf <= v * 1.001, (label, cl, mm, other)
    # 2) outside all-to-all, shared Fock clearly beats the stock code;
    for label in ("0.5nm", "2.0nm"):
        for cl in ("quadrant", "snc-4"):
            assert t(label, cl, "cache", "shared-fock") < t(
                label, cl, "cache", "mpi-only"
            )
    # 3) in all-to-all the stock code overtakes shared Fock for the
    #    small dataset and sits near parity for the large one.
    assert t("0.5nm", "all-to-all", "cache", "mpi-only") <= t(
        "0.5nm", "all-to-all", "cache", "shared-fock"
    )
    big_ratio = t("2.0nm", "all-to-all", "cache", "shared-fock") / t(
        "2.0nm", "all-to-all", "cache", "mpi-only"
    )
    assert 0.6 < big_ratio < 1.7
    # 4) the large stock-MPI footprint cannot run flat-from-MCDRAM.
    assert t("2.0nm", "quadrant", "flat-mcdram", "mpi-only") is None
